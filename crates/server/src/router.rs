//! Hash-range shard routing.
//!
//! Every key is hashed with a fixed FNV-1a function and the 64-bit hash
//! space is split into `n` contiguous equal ranges — shard `i` owns
//! hashes in `[i * 2^64/n, (i+1) * 2^64/n)`. The mapping is a pure
//! function of the key bytes and the shard count: stable across runs,
//! processes, and platforms, which is what makes same-seed benchmark
//! reruns byte-identical and lets tests enumerate a shard's keys.
//!
//! Cross-shard reads: shards own *hash* ranges, so a key-ordered scan
//! touches every shard; [`merge_scan_parts`] merges the per-shard sorted
//! results back into one key-ordered list. Shards hold disjoint key
//! sets, so the merge never sees duplicates.

/// Fixed 64-bit FNV-1a with an avalanche finalizer. Not DoS-resistant —
/// this is a benchmark harness, and stability across runs is worth more
/// than keyed hashing. The finalizer (MurmurHash3's fmix64) matters:
/// raw FNV disperses short, similar keys poorly in the *high* bits, and
/// the range partition below consumes exactly those bits.
pub fn stable_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Maps keys to one of `n` shards by contiguous hash range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`. Multiplicative range split: the hash is
    /// scaled into `[0, shards)` without modulo bias.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        ((u128::from(stable_hash(key)) * self.shards as u128) >> 64) as usize
    }

    /// The half-open hash range `[start, end)` shard `i` owns; the last
    /// shard's `end` is reported as `u64::MAX` inclusive via saturation.
    pub fn range_of(&self, shard: usize) -> (u64, u64) {
        let width = (1u128 << 64) / self.shards as u128;
        let start = (width * shard as u128) as u64;
        let end = if shard + 1 == self.shards {
            u64::MAX
        } else {
            (width * (shard + 1) as u128) as u64
        };
        (start, end)
    }

    /// Splits `keys` into per-shard `(original_index, key)` groups so a
    /// batched read can dispatch one sub-request per shard and write
    /// results back into request order.
    pub fn group_keys(&self, keys: &[Vec<u8>]) -> Vec<Vec<(usize, Vec<u8>)>> {
        let mut groups: Vec<Vec<(usize, Vec<u8>)>> = vec![Vec::new(); self.shards];
        for (i, key) in keys.iter().enumerate() {
            groups[self.shard_of(key)].push((i, key.clone()));
        }
        groups
    }
}

/// Merges per-shard sorted scan results into one key-ordered list of at
/// most `limit` entries. Inputs must each be sorted by key (which the
/// engine guarantees); key sets are disjoint across shards, so equal
/// keys never collide.
pub fn merge_scan_parts(
    mut parts: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
    limit: usize,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut cursors = vec![0usize; parts.len()];
    let mut out = Vec::new();
    while out.len() < limit {
        let mut best: Option<usize> = None;
        for (i, part) in parts.iter().enumerate() {
            let Some((key, _)) = part.get(cursors[i]) else {
                continue;
            };
            match best {
                None => best = Some(i),
                Some(b) => {
                    if key < &parts[b][cursors[b]].0 {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(b) = best else { break };
        let idx = cursors[b];
        cursors[b] += 1;
        out.push(std::mem::take(&mut parts[b][idx]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let router = ShardRouter::new(4);
        for i in 0..2000u64 {
            let key = format!("user{i:08}").into_bytes();
            let s = router.shard_of(&key);
            assert!(s < 4);
            assert_eq!(s, router.shard_of(&key), "unstable routing for {i}");
        }
    }

    #[test]
    fn known_hashes_are_pinned() {
        // Anchors the hash function: changing it silently would re-shard
        // every deployed key space.
        assert_eq!(stable_hash(b""), 0xefd0_1f60_ba99_2926);
        assert_eq!(stable_hash(b"a"), 0x82a2_a958_a9be_ce5b);
        assert_eq!(stable_hash(b"key"), 0xcf8c_7983_8f3b_3030);
    }

    #[test]
    fn ranges_are_contiguous_and_agree_with_shard_of() {
        for n in [1usize, 2, 3, 4, 7, 16] {
            let router = ShardRouter::new(n);
            // Ranges tile the hash space with no gaps.
            let mut prev_end = 0u64;
            for s in 0..n {
                let (start, end) = router.range_of(s);
                assert_eq!(start, prev_end, "gap before shard {s} of {n}");
                assert!(end > start);
                prev_end = end;
            }
            assert_eq!(prev_end, u64::MAX);
            // shard_of agrees with the ranges.
            for i in 0..500u64 {
                let key = i.to_le_bytes().to_vec();
                let h = stable_hash(&key);
                let s = router.shard_of(&key);
                let (start, end) = router.range_of(s);
                assert!(
                    h >= start && (h < end || (s + 1 == n && h <= end)),
                    "hash {h:#x} outside shard {s} range [{start:#x},{end:#x})"
                );
            }
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let router = ShardRouter::new(8);
        let mut counts = [0usize; 8];
        for i in 0..8000u64 {
            counts[router.shard_of(format!("k{i}").as_bytes())] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            // 1000 expected per shard; allow a generous band.
            assert!((600..=1400).contains(&c), "shard {s} got {c} of 8000");
        }
    }

    #[test]
    fn group_keys_preserves_indices() {
        let router = ShardRouter::new(4);
        let keys: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i, i ^ 7]).collect();
        let groups = router.group_keys(&keys);
        assert_eq!(groups.len(), 4);
        let mut seen = vec![false; keys.len()];
        for (shard, group) in groups.iter().enumerate() {
            for (idx, key) in group {
                assert_eq!(router.shard_of(key), shard);
                assert_eq!(&keys[*idx], key);
                assert!(!seen[*idx], "index {idx} appeared twice");
                seen[*idx] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn merge_scan_parts_interleaves_and_truncates() {
        let parts = vec![
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"d".to_vec(), b"4".to_vec()),
            ],
            vec![
                (b"b".to_vec(), b"2".to_vec()),
                (b"e".to_vec(), b"5".to_vec()),
            ],
            vec![],
            vec![(b"c".to_vec(), b"3".to_vec())],
        ];
        let merged = merge_scan_parts(parts.clone(), 10);
        let keys: Vec<&[u8]> = merged.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c", b"d", b"e"]);
        assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
        let truncated = merge_scan_parts(parts, 3);
        assert_eq!(truncated.len(), 3);
        assert_eq!(truncated[2].0, b"c".to_vec());
    }

    #[test]
    fn single_shard_router_routes_everything_to_zero() {
        let router = ShardRouter::new(1);
        for i in 0..100u64 {
            assert_eq!(router.shard_of(&i.to_le_bytes()), 0);
        }
        assert_eq!(router.range_of(0), (0, u64::MAX));
    }
}
