//! Size-tiered compaction: the *lazy* baseline (paper §V, Cassandra's
//! strategy [20]).
//!
//! All runs live in Level 0 (overlap allowed). Files are grouped into
//! buckets of similar size; once a bucket holds `min_merge` files they are
//! combined into one bigger run. Entries are rewritten only
//! `O(log_{min_merge} n)` times — less write amplification than leveled
//! compaction — but each merge is as large as the tier, so occasional
//! merges touch a large fraction of the store. That is precisely the
//! tail-latency pathology the LDC paper's introduction calls out in lazy
//! schemes ("the worst case is that all the stored data are involved into
//! one round of compaction").

use crate::compaction::{CompactionPolicy, CompactionTask, PickContext};

/// Cassandra-style size-tiered compaction policy.
#[derive(Debug, Clone)]
pub struct SizeTieredPolicy {
    /// Minimum files of similar size that trigger a merge (Cassandra: 4).
    pub min_merge: usize,
    /// Maximum files combined in one merge.
    pub max_merge: usize,
    /// Files within `[size/ratio, size*ratio]` of each other share a bucket.
    pub bucket_ratio: f64,
}

impl Default for SizeTieredPolicy {
    fn default() -> Self {
        Self {
            min_merge: 4,
            max_merge: 32,
            bucket_ratio: 1.8,
        }
    }
}

impl SizeTieredPolicy {
    /// Policy with Cassandra's defaults.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CompactionPolicy for SizeTieredPolicy {
    fn name(&self) -> &str {
        "size-tiered"
    }

    fn pick(&mut self, ctx: &PickContext<'_>) -> Option<CompactionTask> {
        // Bucket L0 files by size (sorted, greedy ranges).
        let mut files: Vec<(u64, u64)> = ctx.version.levels[0]
            .iter()
            .map(|f| (f.size, f.number))
            .collect();
        if files.len() < self.min_merge {
            return None;
        }
        files.sort_unstable();
        let mut bucket: Vec<u64> = Vec::new();
        let mut bucket_floor = 0u64;
        for &(size, number) in &files {
            let fits =
                !bucket.is_empty() && (size as f64) <= bucket_floor as f64 * self.bucket_ratio;
            if fits {
                bucket.push(number);
            } else {
                if bucket.len() >= self.min_merge {
                    break;
                }
                bucket.clear();
                bucket.push(number);
                bucket_floor = size.max(1);
            }
            if bucket.len() >= self.max_merge {
                break;
            }
        }
        if bucket.len() >= self.min_merge {
            return Some(CompactionTask::TieredMerge { files: bucket });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Options;
    use crate::types::{encode_internal_key, ValueType};
    use crate::version::{FileMeta, Version};

    fn meta(number: u64, size: u64) -> FileMeta {
        FileMeta {
            number,
            size,
            smallest: encode_internal_key(b"a", 1, ValueType::Value),
            largest: encode_internal_key(b"z", 1, ValueType::Value),
            slices: Vec::new(),
        }
    }

    fn pick(policy: &mut SizeTieredPolicy, v: &Version) -> Option<CompactionTask> {
        let options = Options::default();
        let pointers = vec![Vec::new(); v.num_levels()];
        policy.pick(&PickContext {
            version: v,
            options: &options,
            compact_pointers: &pointers,
        })
    }

    #[test]
    fn too_few_files_is_idle() {
        let mut v = Version::new(2);
        for i in 1..=3 {
            v.levels[0].push(meta(i, 1000));
        }
        assert!(pick(&mut SizeTieredPolicy::new(), &v).is_none());
    }

    #[test]
    fn similar_sizes_form_a_bucket() {
        let mut v = Version::new(2);
        for i in 1..=4 {
            v.levels[0].push(meta(i, 1000 + i * 10));
        }
        let task = pick(&mut SizeTieredPolicy::new(), &v).unwrap();
        match task {
            CompactionTask::TieredMerge { files } => {
                assert_eq!(files.len(), 4);
            }
            other => panic!("unexpected task {other:?}"),
        }
    }

    #[test]
    fn dissimilar_sizes_do_not_merge() {
        let mut v = Version::new(2);
        // Exponentially spaced sizes: each its own bucket.
        for (i, size) in [(1u64, 1_000u64), (2, 10_000), (3, 100_000), (4, 1_000_000)] {
            v.levels[0].push(meta(i, size));
        }
        assert!(pick(&mut SizeTieredPolicy::new(), &v).is_none());
    }

    #[test]
    fn picks_the_smallest_eligible_tier() {
        let mut v = Version::new(2);
        // 4 small files and 4 big files; the small tier merges first.
        for i in 1..=4 {
            v.levels[0].push(meta(i, 1_000));
        }
        for i in 5..=8 {
            v.levels[0].push(meta(i, 1_000_000));
        }
        let task = pick(&mut SizeTieredPolicy::new(), &v).unwrap();
        match task {
            CompactionTask::TieredMerge { files } => {
                assert_eq!(files, vec![1, 2, 3, 4]);
            }
            other => panic!("unexpected task {other:?}"),
        }
    }

    #[test]
    fn max_merge_caps_the_batch() {
        let mut policy = SizeTieredPolicy {
            max_merge: 6,
            ..SizeTieredPolicy::new()
        };
        let mut v = Version::new(2);
        for i in 1..=10 {
            v.levels[0].push(meta(i, 1_000));
        }
        match pick(&mut policy, &v).unwrap() {
            CompactionTask::TieredMerge { files } => assert_eq!(files.len(), 6),
            other => panic!("unexpected task {other:?}"),
        }
    }
}
