//! Ablation — the paper's *motivation* claim (§I): lazy compaction schemes
//! (size-tiered, RocksDB universal, dCompaction) can raise throughput over
//! UDC by merging bigger batches, but the enlarged compaction granularity
//! makes the tail latency *worse*, not better. LDC is the only point in
//! this design space improving both.
//!
//! We run the same write-heavy workload against UDC, size-tiered, and LDC
//! and report throughput, write amplification, and the write-path tail.

use ldc_bench::prelude::*;
use ldc_core::CompactionMode;
use ldc_workload::{run_measured, Histogram, KvInterface, WorkloadSpec};

struct Outcome {
    label: &'static str,
    throughput: f64,
    write_amp: f64,
    writes: Histogram,
    worst_stall_ms: f64,
}

fn run(mode: &CompactionMode, spec: &WorkloadSpec, options: &Options) -> Outcome {
    let mut builder = LdcDb::builder().options(options.clone());
    builder = match mode {
        CompactionMode::Udc => builder.udc_baseline(),
        CompactionMode::SizeTiered => builder.size_tiered(),
        CompactionMode::Ldc(_) => builder,
    };
    let db = builder.build().unwrap();
    let clock = db.device().clock().clone();
    let mut adapter = DbAdapter::new(db);
    ldc_workload::preload_workload(spec, &mut adapter).unwrap();
    adapter.db_mut().drain_background();
    let t0 = clock.now();
    let report = run_measured(spec, &mut adapter, &clock).unwrap();
    let _drain = adapter.db_mut().drain_background();
    let _ = adapter.scan(b"", 1); // sanity: store still serves reads
    let io = adapter.db().device().io_stats();
    let ingested = io.write_bytes_for(IoClass::WalWrite).max(1);
    let stats = adapter.db().stats();
    Outcome {
        label: match mode {
            CompactionMode::Udc => "UDC (leveled)",
            CompactionMode::SizeTiered => "size-tiered (lazy)",
            CompactionMode::Ldc(_) => "LDC",
        },
        throughput: report.ops as f64 * 1e9 / (clock.now() - t0) as f64,
        write_amp: io.total_write_bytes() as f64 / ingested as f64,
        writes: report.writes,
        worst_stall_ms: stats.stall_nanos as f64 / 1e6 / stats.stalls.max(1) as f64,
    }
}

fn main() {
    let args = CommonArgs::parse(50_000);
    let spec = WorkloadSpec::write_heavy(args.ops)
        .with_codec(args.codec())
        .with_seed(args.seed);
    let options = paper_scaled_options();
    let modes = [
        CompactionMode::Udc,
        CompactionMode::SizeTiered,
        CompactionMode::Ldc(ldc_core::LdcConfig::default()),
    ];
    let mut rows = Vec::new();
    for mode in &modes {
        let o = run(mode, &spec, &options);
        rows.push(vec![
            o.label.to_string(),
            format!("{:.0}", o.throughput),
            format!("{:.2}", o.write_amp),
            format!("{:.1}", o.writes.percentile(99.0) as f64 / 1e3),
            format!("{:.1}", o.writes.percentile(99.9) as f64 / 1e3),
            format!("{:.1}", o.writes.max() as f64 / 1e3),
            format!("{:.1}", o.worst_stall_ms),
        ]);
    }
    print_table(
        args.csv,
        &format!(
            "Motivation ablation: lazy vs leveled vs LDC (WH, {} ops)",
            args.ops
        ),
        &[
            "system",
            "throughput (ops/s)",
            "write amp",
            "write P99 (us)",
            "write P99.9 (us)",
            "write max (us)",
            "mean stall (ms)",
        ],
        &rows,
    );
    println!(
        "\nExpectation (paper §I): size-tiered beats UDC on write amp and \
         throughput but its giant tier merges inflate the write tail; LDC \
         gets the throughput *and* the small tail."
    );
}
