//! Block cache.
//!
//! An LRU cache of decoded data blocks keyed by `(file number, offset)`,
//! bounded by a byte budget. The paper assumes "the cached indexes and Bloom
//! filters of active SSTables" avoid most slice-read I/O (§III-B3); in this
//! engine, index and filter blocks are pinned per open table while data
//! blocks flow through this cache. Hit/miss counters feed Fig 13.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::block::Block;
use crate::error::Result;

/// Cache key: file number + block offset within the file.
pub type BlockKey = (u64, u64);

struct CacheEntry {
    block: Block,
    tick: u64,
}

struct CacheInner {
    map: HashMap<BlockKey, CacheEntry>,
    lru: BTreeMap<u64, BlockKey>,
    used_bytes: usize,
    next_tick: u64,
}

/// Byte-bounded LRU cache of data blocks.
pub struct BlockCache {
    capacity_bytes: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Point-in-time block-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to read the block from the device (Fig 13's
    /// y-axis).
    pub misses: u64,
    /// Blocks dropped under capacity pressure (`evict_file` drops are not
    /// counted — those blocks were deleted, not squeezed out).
    pub evictions: u64,
}

impl CacheCounters {
    /// Hits as a fraction of all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl BlockCache {
    /// Creates a cache holding at most `capacity_bytes` of block data.
    /// A capacity of 0 disables caching (every lookup is a miss).
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                used_bytes: 0,
                next_tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetches the block, calling `load` on a miss and caching the result.
    pub fn get_or_load(
        &self,
        key: BlockKey,
        load: impl FnOnce() -> Result<Block>,
    ) -> Result<Block> {
        if self.capacity_bytes > 0 {
            let mut inner = self.inner.lock();
            let tick = inner.next_tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                let old_tick = entry.tick;
                entry.tick = tick;
                let block = entry.block.clone();
                inner.next_tick += 1;
                inner.lru.remove(&old_tick);
                inner.lru.insert(tick, key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(block);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let block = load()?;
        if self.capacity_bytes > 0 {
            let mut inner = self.inner.lock();
            let tick = inner.next_tick;
            inner.next_tick += 1;
            inner.used_bytes += block.size();
            inner.map.insert(
                key,
                CacheEntry {
                    block: block.clone(),
                    tick,
                },
            );
            inner.lru.insert(tick, key);
            while inner.used_bytes > self.capacity_bytes && inner.map.len() > 1 {
                let Some((&oldest_tick, &oldest_key)) = inner.lru.iter().next() else {
                    break;
                };
                inner.lru.remove(&oldest_tick);
                if let Some(evicted) = inner.map.remove(&oldest_key) {
                    inner.used_bytes -= evicted.block.size();
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(block)
    }

    /// Drops all blocks belonging to `file_number` (called on file delete).
    pub fn evict_file(&self, file_number: u64) {
        let mut inner = self.inner.lock();
        let mut doomed: Vec<(u64, BlockKey)> = inner
            .map
            .iter()
            .filter(|((f, _), _)| *f == file_number)
            .map(|(k, e)| (e.tick, *k))
            .collect();
        doomed.sort_unstable();
        for (tick, key) in doomed {
            inner.lru.remove(&tick);
            if let Some(e) = inner.map.remove(&key) {
                inner.used_bytes -= e.block.size();
            }
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far — each miss is one data-block read from the
    /// device (Fig 13's y-axis).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Blocks evicted under capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// All counters as one snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use crate::types::{encode_internal_key, ValueType};
    use bytes::Bytes;

    fn make_block(tag: u8, bytes: usize) -> Block {
        let mut b = BlockBuilder::new(16);
        let key = encode_internal_key(&[tag], 1, ValueType::Value);
        b.add(&key, &vec![tag; bytes]);
        Block::new(Bytes::from(b.finish())).unwrap()
    }

    #[test]
    fn caches_loaded_blocks() {
        let cache = BlockCache::new(1 << 20);
        let mut loads = 0;
        for _ in 0..3 {
            cache
                .get_or_load((1, 0), || {
                    loads += 1;
                    Ok(make_block(1, 100))
                })
                .unwrap();
        }
        assert_eq!(loads, 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert!(cache.used_bytes() > 0);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let cache = BlockCache::new(0);
        for _ in 0..3 {
            cache.get_or_load((1, 0), || Ok(make_block(1, 10))).unwrap();
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn evicts_least_recently_used_under_pressure() {
        // Each block ~1000 bytes; capacity for ~3.
        let cache = BlockCache::new(3200);
        for i in 0..3u8 {
            cache
                .get_or_load((i as u64, 0), || Ok(make_block(i, 1000)))
                .unwrap();
        }
        // Touch block 0 so block 1 is the LRU.
        cache.get_or_load((0, 0), || panic!("should hit")).unwrap();
        // Insert block 3, evicting block 1.
        cache
            .get_or_load((3, 0), || Ok(make_block(3, 1000)))
            .unwrap();
        let miss_before = cache.misses();
        cache.get_or_load((0, 0), || panic!("0 evicted")).unwrap();
        assert_eq!(cache.misses(), miss_before);
        cache
            .get_or_load((1, 0), || Ok(make_block(1, 1000)))
            .unwrap();
        assert_eq!(
            cache.misses(),
            miss_before + 1,
            "1 should have been evicted"
        );
        let counters = cache.counters();
        assert!(
            counters.evictions >= 1,
            "capacity evictions must be counted"
        );
        assert_eq!(counters.hits, cache.hits());
        assert_eq!(counters.misses, cache.misses());
        assert!(counters.hit_rate() > 0.0 && counters.hit_rate() < 1.0);
    }

    #[test]
    fn evict_file_is_not_a_capacity_eviction() {
        let cache = BlockCache::new(1 << 20);
        cache.get_or_load((7, 0), || Ok(make_block(1, 10))).unwrap();
        cache.evict_file(7);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }

    #[test]
    fn evict_file_drops_all_its_blocks() {
        let cache = BlockCache::new(1 << 20);
        cache.get_or_load((7, 0), || Ok(make_block(1, 10))).unwrap();
        cache
            .get_or_load((7, 100), || Ok(make_block(2, 10)))
            .unwrap();
        cache.get_or_load((8, 0), || Ok(make_block(3, 10))).unwrap();
        cache.evict_file(7);
        let misses = cache.misses();
        cache.get_or_load((8, 0), || panic!("should hit")).unwrap();
        cache.get_or_load((7, 0), || Ok(make_block(1, 10))).unwrap();
        assert_eq!(cache.misses(), misses + 1);
    }
}
