//! Table I — the most time-consuming modules in LevelDB under a pure
//! insertion load.
//!
//! The paper profiles 10 M inserts with `perf` and reports that
//! `DoCompactionWork` consumes 61.4% of the time, kernel file-system code
//! 20.9%, `DoWrite` 8.04%, and everything else 9.66%. We regenerate the
//! breakdown from the engine's virtual-time ledger under the same
//! write-only workload.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(100_000);
    let spec = WorkloadSpec::write_only(args.ops)
        .with_codec(args.codec())
        .with_seed(args.seed);
    let config = StoreConfig::new(System::Udc);

    let result = run_experiment(&config, &spec);

    let paper: &[(&str, f64)] = &[
        ("DoCompactionWork", 0.614),
        ("file system", 0.209),
        ("DoWrite", 0.0804),
        ("DoRead", 0.0),
        ("Others", 0.0966),
    ];
    let rows: Vec<Vec<String>> = result
        .time_breakdown
        .iter()
        .map(|(label, fraction)| {
            let paper_value = paper
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| format!("{:.1}%", v * 100.0))
                .unwrap_or_else(|| "-".into());
            vec![
                label.to_string(),
                format!("{:.1}%", fraction * 100.0),
                paper_value,
            ]
        })
        .collect();
    print_table(
        args.csv,
        &format!("Table I: time breakdown, {} inserts (UDC)", args.ops),
        &["module", "measured", "paper"],
        &rows,
    );
    println!(
        "\nExpectation: compaction dominates by a wide margin; the write \
         path itself is a small slice."
    );
}
