//! Real-filesystem storage backend.
//!
//! [`DiskStorage`] persists files under a root directory on the host file
//! system while still charging transfer time and traffic counters to the
//! simulated device (so experiments stay comparable). The FTL page model is
//! not exercised — the host's own storage stack owns physical placement —
//! which makes this backend suitable for durability testing and for using
//! the store as an actual embedded database, not for wear studies.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;

use crate::device::SsdDevice;
use crate::error::{SsdError, SsdResult};
use crate::stats::IoClass;
use crate::storage::StorageBackend;

/// Storage backend over a host directory.
pub struct DiskStorage {
    device: Arc<SsdDevice>,
    root: PathBuf,
}

impl std::fmt::Debug for DiskStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStorage")
            .field("root", &self.root)
            .finish_non_exhaustive()
    }
}

impl DiskStorage {
    /// Opens (creating if needed) a backend rooted at `root`.
    pub fn open(root: impl Into<PathBuf>, device: Arc<SsdDevice>) -> SsdResult<Arc<Self>> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| SsdError::InvalidArgument(format!("create root: {e}")))?;
        Ok(Arc::new(Self { device, root }))
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> SsdResult<PathBuf> {
        // Flat namespace: reject separators so callers cannot escape root.
        if name.is_empty() || name.contains('/') || name.contains('\\') || name.contains("..") {
            return Err(SsdError::InvalidArgument(format!("bad file name {name:?}")));
        }
        Ok(self.root.join(name))
    }

    fn io_err(name: &str, e: std::io::Error) -> SsdError {
        if e.kind() == std::io::ErrorKind::NotFound {
            SsdError::NotFound(name.to_string())
        } else {
            SsdError::InvalidArgument(format!("{name}: {e}"))
        }
    }
}

impl StorageBackend for DiskStorage {
    fn write_file(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
        let path = self.path(name)?;
        self.device.fs_op();
        self.device.charge_write(data.len() as u64, class);
        // Write-then-rename for atomic replacement.
        let tmp = self.root.join(format!(".tmp.{name}"));
        fs::write(&tmp, data).map_err(|e| Self::io_err(name, e))?;
        fs::rename(&tmp, &path).map_err(|e| Self::io_err(name, e))?;
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
        let path = self.path(name)?;
        if !path.exists() {
            self.device.fs_op();
        }
        self.device.charge_write(data.len() as u64, class);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Self::io_err(name, e))?;
        file.write_all(data).map_err(|e| Self::io_err(name, e))?;
        Ok(())
    }

    fn read(&self, name: &str, offset: u64, len: u64, class: IoClass) -> SsdResult<Bytes> {
        let path = self.path(name)?;
        let mut file = fs::File::open(&path).map_err(|e| Self::io_err(name, e))?;
        let size = file.metadata().map_err(|e| Self::io_err(name, e))?.len();
        if offset.checked_add(len).is_none_or(|end| end > size) {
            return Err(SsdError::OutOfRange {
                file: name.to_string(),
                offset,
                len,
                size,
            });
        }
        self.device.charge_read(len, class);
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| Self::io_err(name, e))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)
            .map_err(|e| Self::io_err(name, e))?;
        Ok(Bytes::from(buf))
    }

    fn size(&self, name: &str) -> SsdResult<u64> {
        let path = self.path(name)?;
        fs::metadata(&path)
            .map(|m| m.len())
            .map_err(|e| Self::io_err(name, e))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).map(|p| p.exists()).unwrap_or(false)
    }

    fn delete(&self, name: &str) -> SsdResult<()> {
        let path = self.path(name)?;
        self.device.fs_op();
        fs::remove_file(&path).map_err(|e| Self::io_err(name, e))
    }

    fn rename(&self, from: &str, to: &str) -> SsdResult<()> {
        let from_path = self.path(from)?;
        let to_path = self.path(to)?;
        if !from_path.exists() {
            return Err(SsdError::NotFound(from.to_string()));
        }
        self.device.fs_op();
        fs::rename(&from_path, &to_path).map_err(|e| Self::io_err(from, e))
    }

    fn sync(&self, name: &str) -> SsdResult<()> {
        let path = self.path(name)?;
        self.device.fs_op();
        let file = fs::File::open(&path).map_err(|e| Self::io_err(name, e))?;
        file.sync_all().map_err(|e| Self::io_err(name, e))
    }

    // `synced_len` keeps the default (= full size): the host file system
    // does not expose which bytes have reached stable media.

    fn truncate(&self, name: &str, len: u64) -> SsdResult<()> {
        let path = self.path(name)?;
        let size = fs::metadata(&path)
            .map(|m| m.len())
            .map_err(|e| Self::io_err(name, e))?;
        if len >= size {
            return Ok(());
        }
        self.device.fs_op();
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| Self::io_err(name, e))?;
        file.set_len(len).map_err(|e| Self::io_err(name, e))
    }

    fn link_file(&self, from: &str, to: &str, class: IoClass) -> SsdResult<()> {
        let from_path = self.path(from)?;
        let to_path = self.path(to)?;
        if to_path.exists() {
            return Err(SsdError::InvalidArgument(format!(
                "link_file: destination {to:?} already exists"
            )));
        }
        if !from_path.exists() {
            return Err(SsdError::NotFound(from.to_string()));
        }
        self.device.fs_op();
        // Hard links make checkpoints O(1) in bytes; fall back to a full
        // copy on file systems without link support. The copy is charged
        // as real traffic, the link only as a metadata op.
        if fs::hard_link(&from_path, &to_path).is_err() {
            let size = fs::metadata(&from_path)
                .map(|m| m.len())
                .map_err(|e| Self::io_err(from, e))?;
            self.device.charge_read(size, class);
            self.device.charge_write(size, class);
            fs::copy(&from_path, &to_path).map_err(|e| Self::io_err(from, e))?;
        }
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(&self.root)
            .map(|dir| {
                dir.filter_map(|entry| {
                    let entry = entry.ok()?;
                    let name = entry.file_name().into_string().ok()?;
                    (!name.starts_with(".tmp.")).then_some(name)
                })
                .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }

    fn device(&self) -> Arc<SsdDevice> {
        Arc::clone(&self.device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    struct TempRoot(PathBuf);

    impl TempRoot {
        fn new() -> Self {
            let dir = std::env::temp_dir().join(format!(
                "ldc-disk-test-{}-{}",
                std::process::id(),
                DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            TempRoot(dir)
        }
    }

    impl Drop for TempRoot {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn storage(root: &TempRoot) -> Arc<DiskStorage> {
        DiskStorage::open(root.0.clone(), SsdDevice::with_defaults()).unwrap()
    }

    #[test]
    fn write_read_roundtrip_on_disk() {
        let root = TempRoot::new();
        let s = storage(&root);
        s.write_file("a.sst", b"hello disk", IoClass::FlushWrite)
            .unwrap();
        assert!(s.exists("a.sst"));
        assert_eq!(s.size("a.sst").unwrap(), 10);
        assert_eq!(
            s.read("a.sst", 6, 4, IoClass::UserRead).unwrap().as_ref(),
            b"disk"
        );
        assert!(matches!(
            s.read("a.sst", 8, 10, IoClass::UserRead),
            Err(SsdError::OutOfRange { .. })
        ));
    }

    #[test]
    fn append_sync_delete_rename() {
        let root = TempRoot::new();
        let s = storage(&root);
        s.append("wal", b"one", IoClass::WalWrite).unwrap();
        s.append("wal", b"two", IoClass::WalWrite).unwrap();
        s.sync("wal").unwrap();
        assert_eq!(
            s.read_all("wal", IoClass::Other).unwrap().as_ref(),
            b"onetwo"
        );
        s.rename("wal", "wal2").unwrap();
        assert!(!s.exists("wal"));
        s.delete("wal2").unwrap();
        assert!(s.delete("wal2").is_err());
    }

    #[test]
    fn list_skips_temp_files_and_sorts() {
        let root = TempRoot::new();
        let s = storage(&root);
        for name in ["c", "a", "b"] {
            s.write_file(name, b"x", IoClass::Other).unwrap();
        }
        assert_eq!(s.list(), vec!["a", "b", "c"]);
    }

    #[test]
    fn contents_survive_backend_reopen() {
        let root = TempRoot::new();
        {
            let s = storage(&root);
            s.write_file("persist", b"data", IoClass::Other).unwrap();
        }
        let s = storage(&root);
        assert_eq!(
            s.read_all("persist", IoClass::Other).unwrap().as_ref(),
            b"data"
        );
    }

    #[test]
    fn truncate_cuts_tail_on_disk() {
        let root = TempRoot::new();
        let s = storage(&root);
        s.append("wal", b"keep-this-drop-that", IoClass::WalWrite)
            .unwrap();
        s.truncate("wal", 9).unwrap();
        assert_eq!(
            s.read_all("wal", IoClass::Other).unwrap().as_ref(),
            b"keep-this"
        );
        // Disk backend cannot distinguish synced bytes: reports full size.
        assert_eq!(s.synced_len("wal").unwrap(), 9);
        s.truncate("wal", 100).unwrap();
        assert_eq!(s.size("wal").unwrap(), 9);
        assert!(s.truncate("missing", 0).is_err());
    }

    #[test]
    fn link_file_survives_source_delete() {
        let root = TempRoot::new();
        let s = storage(&root);
        s.write_file("000003.sst", b"frozen bytes", IoClass::FlushWrite)
            .unwrap();
        s.link_file("000003.sst", "ckpt-a@000003.sst", IoClass::Other)
            .unwrap();
        s.delete("000003.sst").unwrap();
        assert_eq!(
            s.read_all("ckpt-a@000003.sst", IoClass::Other)
                .unwrap()
                .as_ref(),
            b"frozen bytes"
        );
        assert!(s.link_file("missing", "ckpt-a@x", IoClass::Other).is_err());
        s.write_file("other", b"y", IoClass::Other).unwrap();
        assert!(s
            .link_file("other", "ckpt-a@000003.sst", IoClass::Other)
            .is_err());
        assert_eq!(s.list_dir("ckpt-a@"), vec!["ckpt-a@000003.sst"]);
    }

    #[test]
    fn rejects_path_escapes() {
        let root = TempRoot::new();
        let s = storage(&root);
        assert!(s.write_file("../evil", b"x", IoClass::Other).is_err());
        assert!(s.write_file("a/b", b"x", IoClass::Other).is_err());
        assert!(s.write_file("", b"x", IoClass::Other).is_err());
    }

    #[test]
    fn traffic_is_still_charged_to_the_device() {
        let root = TempRoot::new();
        let s = storage(&root);
        let t0 = s.device().clock().now();
        s.write_file("f", &vec![0u8; 100_000], IoClass::FlushWrite)
            .unwrap();
        s.read_all("f", IoClass::UserRead).unwrap();
        assert!(s.device().clock().now() > t0);
        let io = s.device().io_stats();
        assert_eq!(io.write_bytes_for(IoClass::FlushWrite), 100_000);
        assert_eq!(io.read_bytes_for(IoClass::UserRead), 100_000);
    }
}
