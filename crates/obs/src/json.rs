//! A tiny flat-JSON-object parser, just enough for the event format.
//!
//! Handles `{"key": "string", "key2": 123, ...}` — no nesting, no
//! arrays, no floats, no escapes beyond `\"` and `\\`. The encoder in
//! [`crate::Event::to_json`] only ever produces this shape, and keeping
//! the parser here means the crate stays dependency-free.

use std::collections::BTreeMap;

/// A parsed scalar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A non-negative integer.
    Num(u64),
}

/// Parses a single flat JSON object. Returns `None` on any syntax the
/// event format does not produce.
pub fn parse_flat_object(text: &str) -> Option<BTreeMap<String, Value>> {
    let mut chars = text.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut map = BTreeMap::new();
    let mut after_comma = false;
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' if !after_comma => {
                chars.next();
                break;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => Value::Str(parse_string(&mut chars)?),
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(c) = chars.peek() {
                    if c.is_ascii_digit() {
                        n.push(*c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                Value::Num(n.parse().ok()?)
            }
            _ => return None,
        };
        map.insert(key, value);
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => {
                after_comma = true;
                continue;
            }
            '}' => break,
            _ => return None,
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None;
    }
    Some(map)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_object() {
        let m = parse_flat_object(r#"{"kind": "flush", "n": 42}"#).unwrap();
        assert_eq!(m.get("kind"), Some(&Value::Str("flush".into())));
        assert_eq!(m.get("n"), Some(&Value::Num(42)));
    }

    #[test]
    fn parses_empty_object() {
        assert!(parse_flat_object("{}").unwrap().is_empty());
        assert!(parse_flat_object("  { }  ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1} x",
            "[1]",
            "{'a':1}",
        ] {
            assert!(parse_flat_object(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn handles_escapes() {
        let m = parse_flat_object(r#"{"k":"a\"b\\c"}"#).unwrap();
        assert_eq!(m.get("k"), Some(&Value::Str("a\"b\\c".into())));
    }
}
