//! The database engine.
//!
//! `Db` ties everything together: memtable + WAL in front, leveled SSTables
//! behind, a pluggable [`CompactionPolicy`] deciding what to compact, and
//! the engine executing tasks (all I/O charged to the simulated SSD).
//!
//! ## Execution model
//!
//! The core runs in virtual time with a modelled background thread.
//! Flushes and compaction tasks execute *logically* immediately (reads see
//! their results like an installed version), but their device time is
//! booked on a background lane; the foreground feels them only through
//! LevelDB's classic write gates — the 1 ms Level-0 slowdown, the Level-0
//! stop, and the wait for an immutable-memtable slot at rotation — plus
//! bandwidth contention on reads. Those gates are exactly the paper's
//! tail-latency model (Eq. 3): a write's latency is the memtable insert
//! plus however much compaction work it had to wait for. Throughput is
//! `ops / virtual seconds`.
//!
//! ## Concurrency model
//!
//! Every public operation takes `&self`. Mutable engine state lives in one
//! a rank-witnessed [`ldc_obs::lockcheck::Mutex`]`<DbCore>`; readers never touch it. Instead they
//! clone the published [`ReadView`] — `Arc`s to the current [`Version`],
//! the live memtable, and the immutable memtable, plus the last published
//! sequence number — and serve the whole operation from that pinned,
//! immutable snapshot. Writers funnel through a leader/follower
//! [`CommitQueue`]: the leader drains *all* queued batches, commits them
//! as one WAL append under the core lock, republishes the view, and hands
//! each follower its result. Virtual-clock determinism is preserved
//! because a single-threaded caller always leads a group of exactly one
//! batch, producing byte- and time-identical traces to the non-grouped
//! path. Multithreaded runs promise linearizable correctness, not timing
//! reproducibility. See DESIGN.md §10 for the full model and lock order.
//!
//! ## LDC-specific read semantics
//!
//! Frozen files (removed from their level by a *link*) are reachable only
//! through the slice links attached to lower-level files. Within a level,
//! lookups gather every candidate version — the file's own entry plus any
//! covering slices — and keep the one with the highest sequence number;
//! across levels, search stops at the first level that produced a result
//! (upper levels always hold newer data). For this to hold at Level 0,
//! policies must freeze the *oldest* Level-0 file first; see
//! `CompactionTask::Link`.
//!
//! ## Responsible ranges
//!
//! When linking a file down to level `L+1`, the target files partition the
//! whole key space by "responsible ranges": file `j` owns
//! `(prev.largest, largest_j]`, the first file's range extends to -inf and
//! the last file's to +inf (paper Example 3.2). Because every slice is
//! scoped to a responsible range and LDC-merge outputs stay within it, slice
//! ranges on distinct files never overlap — which keeps both point reads
//! and range scans single-candidate per level.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use ldc_obs::lockcheck::{Mutex, MutexGuard, RwLock};
use ldc_obs::{
    Blame, Event, EventKind, LevelGauge, MetricsRegistry, NoopSink, OpType, SharedSink, Trace,
    TraceCtx, TraceReservoir,
};
use ldc_ssd::{IoClass, Nanos, SsdDevice, StorageBackend, TimeCategory};

use crate::backup::{self, CheckpointReport};
use crate::batch::{BatchOp, WriteBatch};
use crate::cache::{BlockCache, CacheCounters, TableCache};
use crate::commit::{CommitQueue, Role, Ticket};
use crate::compaction::{CompactionPolicy, CompactionTask, PickContext};
use crate::error::{CorruptionInfo, Error, Result};
use crate::iterator::{InternalIterator, MergingIterator};
use crate::memtable::{LookupResult, MemTable};
use crate::options::{CorruptionPolicy, Options};
use crate::retry::RetryStorage;
use crate::scheduler::{CompactionScheduler, MergeUnitSpec, SubBatch, SubUnit, UnitOutput};
use crate::table::{Table, TableBuilder};
use crate::types::{
    encode_internal_key, parse_trailer, user_key, KeyRange, SequenceNumber, ValueType,
    MAX_SEQUENCE, TYPE_FOR_SEEK,
};
use crate::version::{
    log_file_name, table_file_name, FileMeta, Shipper, SliceLink, Version, VersionEdit, VersionSet,
    STREAM_FILE,
};
use crate::wal::{LogReader, LogWriter};

/// Engine counters (beyond the device's I/O stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Point lookups served.
    pub gets: u64,
    /// Write operations applied (batch entries).
    pub writes: u64,
    /// Range scans served.
    pub scans: u64,
    /// Key+value payload bytes written by the user.
    pub user_bytes_written: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Classic (upper-level driven) merges executed.
    pub merges: u64,
    /// Metadata-only moves.
    pub trivial_moves: u64,
    /// LDC link operations executed.
    pub links: u64,
    /// LDC merge operations executed.
    pub ldc_merges: u64,
    /// Writes that hit the L0 slowdown band.
    pub slowdowns: u64,
    /// Writes that stalled waiting for the background lane to drain.
    pub stalls: u64,
    /// Total virtual nanoseconds spent in those stalls.
    pub stall_nanos: u64,
    /// Bloom-filter negatives that skipped a table probe.
    pub bloom_skips: u64,
    /// Leader commits that coalesced more than one writer's batch.
    pub write_groups: u64,
    /// Batches committed inside those multi-batch groups (sizes summed).
    pub grouped_batches: u64,
    /// Online checkpoints created (including backup base images).
    pub checkpoints: u64,
    /// Replicated version edits applied (follower side).
    pub edits_applied: u64,
}

/// What one [`Db::open`] recovery did: replay volume, torn tails cut, and
/// logs set aside as unreadable. Surfaced by [`Db::recovery_summary`], the
/// stats report, and (as a [`EventKind::Recovery`] event) the event sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// WAL files replayed into the memtable.
    pub wals_replayed: u32,
    /// Batch entries (puts/deletes) replayed from those WALs.
    pub records_replayed: u64,
    /// Torn-tail bytes discarded across WALs and the manifest.
    pub bytes_truncated: u64,
    /// Log files renamed aside because of mid-log corruption — the corrupt
    /// log and everything after it (point-in-time recovery).
    pub files_quarantined: u32,
}

/// Record of one SSTable set aside by the [`CorruptionPolicy::Quarantine`]
/// policy: the file was renamed to `<file>.quarantined` and dropped from
/// the live version, and keys inside `[smallest, largest]` may read as
/// missing or stale until `repair_db` runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedFile {
    /// On-device file name (pre-rename, e.g. `000012.sst`).
    pub file: String,
    /// Level the file was serving at.
    pub level: usize,
    /// File size in bytes.
    pub size: u64,
    /// Smallest user key the file covered (keys at risk).
    pub smallest: Vec<u8>,
    /// Largest user key the file covered (keys at risk).
    pub largest: Vec<u8>,
}

/// A value returned by the pinned get path without copying it out of the
/// block cache. `Block` keeps the decoded SSTable block alive for as long
/// as the handle exists; `Inline` carries a memtable hit (the skiplist
/// arena cannot be pinned across the lock, so those bytes are copied
/// once). Copy to an owned `Vec` only at the API boundary that needs one.
#[derive(Debug, Clone)]
pub enum PinnedValue {
    /// A value copied out of the (im)mutable memtable.
    Inline(Vec<u8>),
    /// A zero-copy slice of a cached, immutable SSTable block.
    Block(Bytes),
}

impl PinnedValue {
    /// The value bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            PinnedValue::Inline(v) => v,
            PinnedValue::Block(b) => b,
        }
    }

    /// Copies (or moves, for `Inline`) the value into an owned vector.
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            PinnedValue::Inline(v) => v,
            PinnedValue::Block(b) => b.to_vec(),
        }
    }

    /// Value length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl AsRef<[u8]> for PinnedValue {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Pre-dispatch description of a compaction task, captured while its
/// input files still exist in the current version.
#[derive(Debug, Clone, Copy)]
struct TaskDescriptor {
    kind: EventKind,
    level: u32,
    output_level: u32,
    input_files: u32,
    input_bytes: u64,
}

/// Scratch the merge/write helpers fill while one flush or compaction
/// task runs, so [`Db::execute`] can attribute output size and phase
/// time to the event it emits. Reset at the start of every task.
#[derive(Debug, Clone, Copy, Default)]
struct ExecTrace {
    output_files: u32,
    output_bytes: u64,
    /// Virtual time spent writing output tables (Table 1's write phase).
    write_nanos: Nanos,
}

/// The state a read operation pins at entry: `Arc`s to the version and
/// memtables current at some commit boundary, plus the sequence number
/// published with them. Cloning is a few refcount bumps; everything
/// reachable from a view is immutable except the live memtable, whose
/// entries newer than `seq` are invisible to the read (MVCC by sequence).
#[derive(Clone)]
struct ReadView {
    version: Arc<Version>,
    mem: Arc<MemTable>,
    imm: Option<Arc<MemTable>>,
    seq: SequenceNumber,
}

/// All mutable engine state, guarded by one mutex. Writers (and the
/// background work they pump) hold it for the duration of a commit;
/// readers never take it — they go through the published [`ReadView`].
struct DbCore {
    versions: VersionSet,
    mem: Arc<MemTable>,
    /// Immutable memtable awaiting its background flush.
    imm: Option<Arc<MemTable>>,
    /// WAL file to delete once `imm` is flushed.
    imm_wal_to_delete: Option<String>,
    wal: LogWriter,
    /// Engine counters; `gets`/`scans`/`bloom_skips` live in atomics on
    /// `Db` (the read path does not lock the core) and are folded in by
    /// [`Db::stats`].
    stats: DbStats,
    /// Live snapshots: sequence -> handle count. Compaction never drops a
    /// version the oldest live snapshot could observe.
    snapshots: std::collections::BTreeMap<SequenceNumber, usize>,
    /// Per-task scratch for event phase attribution.
    trace: ExecTrace,
    /// First background/storage failure. Once set, further writes are
    /// refused: a failed WAL or manifest append leaves the log's record
    /// framing in an unknown state, and writing past it would corrupt it.
    bg_error: Option<Error>,
    /// SSTables set aside by the quarantine corruption policy, in the
    /// order they were quarantined.
    quarantined: Vec<QuarantinedFile>,
    /// Table files dropped from the version but not yet physically
    /// deleted: a concurrent reader's pinned view may still reference
    /// them. Reaped at commit/drain boundaries once no read is in flight.
    pending_deletes: Vec<u64>,
}

/// Decrements the in-flight read counter on drop, so pending physical
/// file deletes know when no pinned view can reference them.
pub(crate) struct ReadPin<'a>(&'a AtomicU64);

impl<'a> ReadPin<'a> {
    fn new(counter: &'a AtomicU64) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        ReadPin(counter)
    }
}

impl Drop for ReadPin<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// An LSM-tree database over a simulated SSD. All operations take `&self`
/// and the handle is `Send + Sync`: share it across threads behind an
/// `Arc` (see the module docs for the concurrency model).
pub struct Db {
    options: Options,
    storage: Arc<dyn StorageBackend>,
    device: Arc<SsdDevice>,
    policy: Mutex<Box<dyn CompactionPolicy>>,
    /// Open-table handles (pinned index + Bloom filter each), LRU-bounded
    /// by `options.table_cache_entries`; pinned bytes are charged to the
    /// block cache so table metadata and data blocks share one budget.
    tables: TableCache,
    block_cache: Arc<BlockCache>,
    /// Where structured events go; [`NoopSink`] by default, in which case
    /// no event is ever built (`sink.enabled()` gates construction).
    sink: SharedSink,
    /// Per-level gauges and per-op latency histograms.
    metrics: Arc<MetricsRegistry>,
    /// Worst-K trace reservoir; `None` (the default) disables per-op
    /// tracing entirely — the op paths then never construct a
    /// [`TraceCtx`], so the disabled engine is byte- and time-identical
    /// to one built before tracing existed. Tracing only *reads* the
    /// virtual clock, so even enabled runs charge identical time.
    tracer: Option<Arc<TraceReservoir>>,
    core: Mutex<DbCore>,
    /// Background worker pool; dormant unless `options.background_workers`
    /// is at least 1 and the owner called [`Db::start_workers`]. While
    /// active, the write path signals it instead of pumping inline.
    scheduler: CompactionScheduler,
    /// The state readers pin; republished at every commit boundary.
    view: RwLock<ReadView>,
    /// Leader/follower write grouping.
    commit: CommitQueue,
    /// Virtual time until which the background lane (flush + compaction)
    /// is busy. Background work executes eagerly for correctness, but its
    /// device time is re-booked here; foreground requests pay for it only
    /// through rotation stalls and bandwidth contention — which is where
    /// the paper's tail latency comes from.
    bg_until: AtomicU64,
    /// High-water mark (virtual ns) through which foreground reads have
    /// already been charged for background contention. Concurrent readers
    /// claim disjoint `[cursor, window_end)` slices via CAS so the same
    /// overlap is never double-charged — without this, each reader's
    /// contention `advance` inflates the next reader's window and the
    /// clock runs away exponentially under multi-threaded load.
    contended_until: AtomicU64,
    /// Point lookups served (read path is lock-free w.r.t. the core).
    gets: AtomicU64,
    /// Range scans served.
    scans: AtomicU64,
    /// Bloom-filter negatives that skipped a table probe.
    bloom_skips: AtomicU64,
    /// Reads currently in flight (holding a pinned view).
    read_pins: AtomicU64,
    /// Checkpoint creations currently in flight. While nonzero, physical
    /// deletion of dropped tables is deferred: the checkpoint's phase 2
    /// links files from a pinned version without holding the core lock.
    ckpt_pins: AtomicU64,
    /// What the opening recovery replayed/discarded.
    recovery: RecoverySummary,
}

/// `Db` is shared across reader/writer threads behind an `Arc`.
#[allow(dead_code)]
fn assert_send_sync<T: Send + Sync>() {}
const _: fn() = assert_send_sync::<Db>;

impl Db {
    /// Opens (creating or recovering) a database on `storage` with the given
    /// compaction policy.
    pub fn open(
        storage: Arc<dyn StorageBackend>,
        options: Options,
        policy: Box<dyn CompactionPolicy>,
    ) -> Result<Db> {
        Self::open_with_sink(storage, options, policy, Arc::new(NoopSink))
    }

    /// Like [`Db::open`], but routes events — including the recovery event
    /// emitted during this open — to `sink` from the start.
    pub fn open_with_sink(
        storage: Arc<dyn StorageBackend>,
        options: Options,
        policy: Box<dyn CompactionPolicy>,
        sink: SharedSink,
    ) -> Result<Db> {
        options.validate()?;
        let metrics = Arc::new(MetricsRegistry::new());
        // Transient-read retry wraps the backend before anything reads
        // through it, so manifest recovery and WAL replay get the same
        // bounded-retry protection as steady-state reads.
        let storage: Arc<dyn StorageBackend> = if options.read_retry_attempts > 1 {
            RetryStorage::new(
                storage,
                options.read_retry_attempts,
                options.read_retry_backoff_ns,
                options.seed,
                Arc::clone(&sink),
                Arc::clone(&metrics),
            )
        } else {
            storage
        };
        let device = storage.device();
        let open_start = device.clock().now();
        let block_cache = Arc::new(BlockCache::with_shards(
            options.block_cache_bytes,
            options.block_cache_shards,
        ));
        let tables = TableCache::new(options.table_cache_entries, Arc::clone(&block_cache));
        let existed = VersionSet::exists(storage.as_ref());
        let mut versions = if existed {
            VersionSet::recover(Arc::clone(&storage), options.max_levels)?
        } else {
            VersionSet::create(Arc::clone(&storage), options.max_levels)?
        };
        let mut recovery = RecoverySummary {
            bytes_truncated: versions.recovered_manifest_tail_bytes,
            ..Default::default()
        };

        // Replay every surviving WAL, oldest first, into a fresh memtable.
        // Logs are deleted only once their contents are flushed, so the set
        // of `.log` files on disk is exactly the unflushed data — even if
        // the crash happened between a rotation and its flush.
        let mem = MemTable::new(options.seed);
        let mut replayed = 0u64;
        let mut old_logs: Vec<(u64, String)> = storage
            .list()
            .into_iter()
            .filter_map(|name| {
                let number: u64 = name.strip_suffix(".log")?.parse().ok()?;
                Some((number, name))
            })
            .collect();
        old_logs.sort();
        if existed {
            let mut max_seq = versions.last_sequence;
            let mut corrupt_from: Option<usize> = None;
            for (idx, (_, name)) in old_logs.iter().enumerate() {
                let mut reader = LogReader::open(storage.as_ref(), name)?;
                let replay = reader.for_each(|record| {
                    let batch = WriteBatch::decode(record)?;
                    let base = batch.sequence();
                    for item in batch.iter() {
                        let (offset, op) = item?;
                        let seq = base + u64::from(offset);
                        match op {
                            BatchOp::Put { key, value } => {
                                mem.add(seq, ValueType::Value, key, value)
                            }
                            BatchOp::Delete { key } => mem.add(seq, ValueType::Deletion, key, b""),
                        }
                        max_seq = max_seq.max(seq);
                        replayed += 1;
                    }
                    Ok(())
                });
                match replay {
                    Ok(()) => {
                        recovery.wals_replayed += 1;
                        let torn = reader.truncated_tail_bytes();
                        if torn > 0 {
                            // The torn tail is dead bytes: cut it so the log
                            // reads cleanly if this open crashes before the
                            // replayed data is flushed. Backends without
                            // truncate just keep the tail; replay re-skips it.
                            recovery.bytes_truncated += torn;
                            // ldc-lint: allow(must_use_result) — best-effort cleanup; replay re-skips the tail if it survives
                            let _ = storage.truncate(name, reader.clean_prefix());
                        }
                    }
                    // Mid-log corruption: recover to the last consistent
                    // point in time. Records before the bad region were
                    // already replayed; the rest of this log and every
                    // later log are set aside, not served as garbage.
                    Err(Error::Corruption(_)) => {
                        corrupt_from = Some(idx);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if let Some(from) = corrupt_from {
                for (_, name) in &old_logs[from..] {
                    storage.rename(name, &format!("{name}.quarantined"))?;
                    recovery.files_quarantined += 1;
                }
                old_logs.truncate(from);
            }
            versions.last_sequence = max_seq;
        }
        recovery.records_replayed = replayed;

        // Fresh WAL for new writes. A crashed incarnation may have left a
        // log at a number this incarnation re-allocates (the counter update
        // never became durable); appending to it would shift the writer's
        // block accounting, so keep allocating until the name is free.
        let mut new_log_number = versions.new_file_number();
        while storage.exists(&log_file_name(new_log_number)) {
            new_log_number = versions.new_file_number();
        }
        let wal = LogWriter::new(
            Arc::clone(&storage),
            log_file_name(new_log_number),
            IoClass::WalWrite,
        );

        device.set_event_sink(Arc::clone(&sink));
        let mem = Arc::new(mem);
        let view = ReadView {
            version: Arc::clone(&versions.current),
            mem: Arc::clone(&mem),
            imm: None,
            seq: versions.last_sequence,
        };
        let scheduler = CompactionScheduler::new(options.background_workers);
        let db = Db {
            options,
            storage,
            device,
            policy: Mutex::new("lsm/db::policy", policy),
            tables,
            block_cache,
            sink,
            metrics,
            tracer: None,
            core: Mutex::new(
                "lsm/db::core",
                DbCore {
                    versions,
                    mem,
                    imm: None,
                    imm_wal_to_delete: None,
                    wal,
                    stats: DbStats::default(),
                    snapshots: std::collections::BTreeMap::new(),
                    trace: ExecTrace::default(),
                    bg_error: None,
                    quarantined: Vec::new(),
                    pending_deletes: Vec::new(),
                },
            ),
            scheduler,
            view: RwLock::new("lsm/db::view", view),
            commit: CommitQueue::new(),
            bg_until: AtomicU64::new(0),
            contended_until: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            bloom_skips: AtomicU64::new(0),
            read_pins: AtomicU64::new(0),
            ckpt_pins: AtomicU64::new(0),
            recovery,
        };

        // Persist the replayed data so the old WALs can be dropped, then
        // record the new WAL number.
        {
            let mut core = db.core.lock();
            if replayed > 0 {
                let full =
                    std::mem::replace(&mut core.mem, Arc::new(MemTable::new(db.options.seed)));
                db.flush_table(&mut core, &full, Some(new_log_number))?;
            } else {
                core.versions.log_and_apply(VersionEdit {
                    log_number: Some(new_log_number),
                    ..Default::default()
                })?;
            }
            for (_, name) in &old_logs {
                if *name != log_file_name(new_log_number) && db.storage.exists(name) {
                    db.storage.delete(name)?;
                }
            }
            db.publish_view(&core);
        }
        if db.sink.enabled() {
            let r = db.recovery;
            db.sink.record(
                Event::span(EventKind::Recovery, open_start, db.device.clock().now())
                    .files(
                        u32::try_from(r.records_replayed).unwrap_or(u32::MAX),
                        r.files_quarantined,
                    )
                    .bytes(r.bytes_truncated, 0),
            );
        }
        Ok(db)
    }

    /// Publishes the core's current state as the view readers pin. Must be
    /// called (while holding the core lock) at every boundary where a
    /// reader is allowed to observe the new state: end of a leader commit,
    /// end of a background drain, after a quarantine, and at open.
    fn publish_view(&self, core: &DbCore) {
        *self.view.write() = ReadView {
            version: Arc::clone(&core.versions.current),
            mem: Arc::clone(&core.mem),
            imm: core.imm.as_ref().map(Arc::clone),
            seq: core.versions.last_sequence,
        };
        // Order the publish before any subsequent `read_pins` check (see
        // `reap_pending_deletes`): a reader that pins after a zero-pin
        // observation must see this (or a newer) view.
        std::sync::atomic::fence(Ordering::SeqCst);
    }
}

impl Db {
    /// What the opening recovery replayed, truncated, and quarantined.
    pub fn recovery_summary(&self) -> RecoverySummary {
        self.recovery
    }

    /// The engine options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// The device everything is charged to.
    pub fn device(&self) -> &Arc<SsdDevice> {
        &self.device
    }

    /// The compaction policy's name.
    pub fn policy_name(&self) -> String {
        self.policy.lock().name().to_string()
    }

    /// Engine counters.
    pub fn stats(&self) -> DbStats {
        self.fold_stats(self.core.lock().stats)
    }

    /// Fills the atomically-tracked read counters into a core stats copy.
    fn fold_stats(&self, mut stats: DbStats) -> DbStats {
        stats.gets = self.gets.load(Ordering::Relaxed);
        stats.scans = self.scans.load(Ordering::Relaxed);
        stats.bloom_skips = self.bloom_skips.load(Ordering::Relaxed);
        stats
    }

    /// Block-cache counters; misses equal data-block reads from the
    /// device (Fig 13).
    pub fn block_cache_counters(&self) -> CacheCounters {
        self.block_cache.counters()
    }

    /// The shared block cache (tests, experiments).
    pub fn block_cache(&self) -> &Arc<BlockCache> {
        &self.block_cache
    }

    /// Routes structured engine events (flush, merge, link, stall, GC, ...)
    /// to `sink`. The device's GC events follow the same sink. With the
    /// default [`NoopSink`] no event is ever constructed.
    pub fn set_event_sink(&mut self, sink: SharedSink) {
        self.device.set_event_sink(Arc::clone(&sink));
        self.sink = sink;
    }

    /// The engine's metrics registry: per-level gauges plus per-op
    /// latency histograms. Gauges refresh after every flush/compaction
    /// and on [`Db::stats_report`].
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// A human-readable engine report in the spirit of LevelDB's
    /// `GetProperty("leveldb.stats")`: per-level table, compaction and
    /// write-gate counters, block cache, bloom, latency percentiles, and
    /// the simulated SSD's GC/wear state.
    pub fn stats_report(&self) -> String {
        use std::fmt::Write as _;
        let (s, version, quarantined, ship, cursor) = {
            let core = self.core.lock();
            (
                self.fold_stats(core.stats),
                Arc::clone(&core.versions.current),
                core.quarantined.clone(),
                core.versions.shipper_stats(),
                core.versions.replication_cursor,
            )
        };
        self.refresh_level_gauges(&version);
        let mb = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
        let ms = |nanos: u64| nanos as f64 / 1e6;
        let mut out = String::new();

        let _ = writeln!(out, "                          Level summary");
        let _ = writeln!(out, "Level  Files  Size(MB)  Score");
        let _ = writeln!(out, "------------------------------");
        for (level, g) in self.metrics.level_gauges().iter().enumerate() {
            if g.files == 0 && level > 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{level:>5}  {files:>5}  {size:>8.1}  {score:>5.2}",
                files = g.files,
                size = mb(g.bytes),
                score = g.score,
            );
        }
        let frozen_files = version.frozen.len();
        let _ = writeln!(
            out,
            "Frozen: {frozen_files} files, {:.1} MB",
            mb(version.frozen_bytes())
        );

        let _ = writeln!(
            out,
            "Compactions: {} flushes, {} merges, {} trivial moves, {} links, {} ldc merges",
            s.flushes, s.merges, s.trivial_moves, s.links, s.ldc_merges
        );
        let _ = writeln!(
            out,
            "Write gates: {} stalls ({:.1} ms), {} slowdowns",
            s.stalls,
            ms(s.stall_nanos),
            s.slowdowns
        );
        if s.write_groups > 0 {
            let _ = writeln!(
                out,
                "Write groups: {} groups coalescing {} batches",
                s.write_groups, s.grouped_batches
            );
        }
        // Printed only when the machinery was used, so stores that never
        // checkpoint/replicate emit byte-identical reports to older builds.
        if s.checkpoints + s.edits_applied + cursor > 0 || ship.is_some() {
            if let Some((edits, files, bytes)) = ship {
                self.metrics.set_edits_shipped(edits);
                let _ = writeln!(
                    out,
                    "Replication: {} checkpoints, {} edits shipped \
                     ({} files, {:.1} MB), {} edits applied (cursor {})",
                    s.checkpoints,
                    edits,
                    files,
                    mb(bytes),
                    s.edits_applied,
                    cursor
                );
            } else {
                let _ = writeln!(
                    out,
                    "Replication: {} checkpoints, {} edits applied (cursor {})",
                    s.checkpoints, s.edits_applied, cursor
                );
            }
        }

        let cache = self.block_cache.counters();
        let _ = writeln!(
            out,
            "Block cache: {} hits, {} misses, {} evictions ({:.1}% hit rate)",
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.hit_rate() * 100.0
        );
        let _ = writeln!(
            out,
            "Block cache: {} shards, {:.1} MB cached + {:.1} MB pinned metadata",
            self.block_cache.shard_count(),
            mb(self.block_cache.used_bytes() as u64),
            mb(self.block_cache.pinned_bytes() as u64),
        );
        let _ = writeln!(
            out,
            "Table cache: {} open tables, {} hits, {} misses",
            self.tables.len(),
            self.tables.hits(),
            self.tables.misses(),
        );
        let _ = writeln!(out, "Bloom: {} probes skipped", s.bloom_skips);

        let r = self.recovery;
        let _ = writeln!(
            out,
            "Recovery: {} records replayed from {} logs, {} bytes truncated, \
             {} files quarantined",
            r.records_replayed, r.wals_replayed, r.bytes_truncated, r.files_quarantined
        );

        let d = self.metrics.degraded_counters();
        if d.transient_retries + d.scrub_blocks_verified + d.files_quarantined > 0
            || !quarantined.is_empty()
        {
            let _ = writeln!(
                out,
                "Degraded: {} transient retries, {} blocks scrubbed \
                 ({} corrupt), {} files quarantined",
                d.transient_retries,
                d.scrub_blocks_verified,
                d.scrub_corruptions,
                d.files_quarantined
            );
            for q in &quarantined {
                let _ = writeln!(
                    out,
                    "  quarantined {} (level {}, {:.1} MB, keys {:?}..{:?})",
                    q.file,
                    q.level,
                    mb(q.size),
                    String::from_utf8_lossy(&q.smallest),
                    String::from_utf8_lossy(&q.largest)
                );
            }
        }

        let _ = writeln!(
            out,
            "Op       Count   Mean(us)    P50(us)    P99(us)  P99.9(us) P99.99(us)"
        );
        for op in OpType::ALL {
            let h = self.metrics.latency(op);
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<6} {:>7}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}",
                op.label(),
                h.count(),
                h.mean() / 1e3,
                h.percentile(50.0) as f64 / 1e3,
                h.percentile(99.0) as f64 / 1e3,
                h.percentile(99.9) as f64 / 1e3,
                h.percentile(99.99) as f64 / 1e3,
            );
        }
        self.write_blame_breakdown(&mut out);

        let dev = self.device.snapshot();
        let _ = writeln!(
            out,
            "SSD: {:.1} MB host writes, {:.1} MB GC relocation, {} erases, \
             NAND WA {:.2}, wear {:.2}%",
            mb(dev.ftl.host_pages_written * self.device.config().page_bytes),
            mb(dev.ftl.gc_pages_relocated * self.device.config().page_bytes),
            dev.ftl.erases,
            dev.ftl.write_amplification(),
            dev.wear_fraction * 100.0
        );
        let _ = writeln!(
            out,
            "Virtual time: {:.3} s ({} user writes, {} gets, {} scans)",
            dev.now as f64 / 1e9,
            s.writes,
            s.gets,
            s.scans
        );
        out
    }

    /// Appends the per-op blame breakdown (nonzero buckets only) to a
    /// stats report. Silent when tracing never attributed any time.
    fn write_blame_breakdown(&self, out: &mut String) {
        use std::fmt::Write as _;
        let mut wrote_header = false;
        for op in OpType::ALL {
            let totals = self.metrics.blame_totals(op);
            let sum: u64 = totals.iter().sum();
            if sum == 0 {
                continue;
            }
            if !wrote_header {
                let _ = writeln!(out, "Blame breakdown (ms, share of traced op time):");
                wrote_header = true;
            }
            let _ = write!(out, "  {:<6}", op.label());
            for (nanos, blame) in totals.iter().zip(Blame::ALL) {
                if *nanos == 0 {
                    continue;
                }
                let _ = write!(
                    out,
                    " {} {:.3} ({:.1}%)",
                    blame.label(),
                    *nanos as f64 / 1e6,
                    *nanos as f64 * 100.0 / sum as f64,
                );
            }
            let _ = writeln!(out);
        }
    }

    /// Tail-latency report: per-op percentiles through P99.99, the blame
    /// breakdown, and the worst traces captured by the reservoir. Designed
    /// for humans; `ldc-bench tail` emits the machine-readable version.
    pub fn tail_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Op       Count     P50(us)    P99(us)  P99.9(us) P99.99(us)    Max(us)"
        );
        for op in OpType::ALL {
            let h = self.metrics.latency(op);
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<6} {:>7}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}",
                op.label(),
                h.count(),
                h.percentile(50.0) as f64 / 1e3,
                h.percentile(99.0) as f64 / 1e3,
                h.percentile(99.9) as f64 / 1e3,
                h.percentile(99.99) as f64 / 1e3,
                h.max() as f64 / 1e3,
            );
        }
        self.write_blame_breakdown(&mut out);
        let worst = self.worst_traces();
        if !worst.is_empty() {
            let _ = writeln!(out, "Worst traces (total us, blame shares):");
            for trace in &worst {
                let _ = write!(
                    out,
                    "  {:<6} #{:<8} {:>9.1}",
                    trace.op.label(),
                    trace.op_index,
                    trace.total as f64 / 1e3
                );
                let breakdown = trace.blame_breakdown();
                for (nanos, blame) in breakdown.iter().zip(Blame::ALL) {
                    if *nanos == 0 {
                        continue;
                    }
                    let _ = write!(out, " {}={:.1}us", blame.label(), *nanos as f64 / 1e3);
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// The current version (tests, experiments). The returned `Arc` is a
    /// stable snapshot: a concurrent compaction installs a *new* version
    /// rather than mutating this one.
    pub fn version(&self) -> Arc<Version> {
        Arc::clone(&self.core.lock().versions.current)
    }

    /// Live bytes in store files (Fig 15's space metric).
    pub fn space_bytes(&self) -> u64 {
        self.storage.total_bytes()
    }

    /// Integrity check over every live and frozen SSTable: verifies all
    /// block checksums and key ordering. Returns the total entries scanned.
    pub fn verify_integrity(&self) -> Result<u64> {
        let version = self.version();
        let numbers: Vec<u64> = version
            .levels
            .iter()
            .flatten()
            .map(|f| f.number)
            .chain(version.frozen.keys().copied())
            .collect();
        let mut total = 0u64;
        for number in numbers {
            let table = self.table(number)?;
            total += table.verify(IoClass::Other)?;
        }
        Ok(total)
    }

    /// SSTables set aside by the [`CorruptionPolicy::Quarantine`] policy
    /// since this handle was opened, oldest first.
    pub fn quarantined(&self) -> Vec<QuarantinedFile> {
        self.core.lock().quarantined.clone()
    }

    /// Enables per-operation tracing with a worst-`k` reservoir per op
    /// type, tie-broken deterministically from the options seed. Call
    /// before sharing the handle (it takes `&mut self`); with tracing off
    /// the op paths never allocate a context, and even with it on the
    /// tracer only *reads* the virtual clock, so traced and untraced runs
    /// are time-identical.
    pub fn enable_tracing(&mut self, worst_k: usize) {
        self.tracer = Some(Arc::new(TraceReservoir::new(worst_k, self.options.seed)));
    }

    /// Whether [`Db::enable_tracing`] was called.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// The worst-latency traces captured so far, grouped by op type in
    /// [`OpType::ALL`] order, worst first. Empty when tracing is off.
    pub fn worst_traces(&self) -> Vec<Trace> {
        self.tracer
            .as_ref()
            .map(|t| t.all_worst())
            .unwrap_or_default()
    }

    /// The worst-K reservoir rendered as folded stacks (flamegraph input
    /// format: `get;table_probe 1234` per line). Empty when tracing is off.
    pub fn trace_folded_report(&self) -> String {
        self.tracer
            .as_ref()
            .map(|t| t.folded_report())
            .unwrap_or_default()
    }

    /// Clears the worst-K reservoir and its per-op arrival counters, e.g.
    /// after a preload phase, so op indices restart at zero (keeping
    /// same-seed reruns reproducible). No-op when tracing is off.
    pub fn reset_traces(&self) {
        if let Some(t) = self.tracer.as_ref() {
            t.reset();
        }
    }

    /// Starts a trace for `op` iff tracing is enabled.
    fn trace_start(&self, op: OpType, now: Nanos) -> Option<TraceCtx> {
        self.tracer.as_ref().map(|_| TraceCtx::new(op, now))
    }

    /// Seals `ctx`, folds its blame breakdown into the metrics registry,
    /// and offers it to the worst-K reservoir.
    fn trace_finish(&self, ctx: Option<TraceCtx>, end: Nanos) {
        let Some(ctx) = ctx else { return };
        let Some(tracer) = self.tracer.as_ref() else {
            return;
        };
        let op = ctx.op();
        let trace = ctx.finish(end, tracer.next_op_index(op));
        self.metrics.record_blame(op, &trace.blame_breakdown());
        tracer.offer(trace);
    }

    /// The event sink, for sibling modules (scrub) that emit events.
    pub(crate) fn event_sink(&self) -> &SharedSink {
        &self.sink
    }

    /// Reacts to a permanent corruption report according to the corruption
    /// policy, taking the core lock itself; safe to call from the (lock
    /// free) read path. On success the shrunken version is published so
    /// the caller can re-pin a view and retry. See [`Db::try_quarantine`].
    pub(crate) fn quarantine_corruption(&self, info: &CorruptionInfo) -> Result<bool> {
        let mut core = self.core.lock();
        let quarantined = self.try_quarantine(&mut core, info)?;
        if quarantined {
            self.publish_view(&core);
        }
        Ok(quarantined)
    }

    /// Reacts to a permanent corruption report according to the corruption
    /// policy. Under [`CorruptionPolicy::Quarantine`], if the corrupt file
    /// is a *live* SSTable it is dropped from the version, renamed to
    /// `<name>.quarantined`, and recorded; returns `Ok(true)` and the
    /// caller may retry its operation against the shrunken version.
    ///
    /// Returns `Ok(false)` — caller must surface the original error — when
    /// the policy is fail-stop, the report does not name a table file, or
    /// the file is not live (frozen files stay in place: they are repair's
    /// salvage source, and dropping them would break slice links).
    fn try_quarantine(&self, core: &mut DbCore, info: &CorruptionInfo) -> Result<bool> {
        if self.options.corruption_policy != CorruptionPolicy::Quarantine {
            return Ok(false);
        }
        let number = match info
            .file
            .strip_suffix(".sst")
            .and_then(|stem| stem.parse::<u64>().ok())
        {
            Some(n) => n,
            None => return Ok(false),
        };
        let (level, meta) = match core.versions.current.find_file(number) {
            Some((level, meta)) => (level, meta.clone()),
            None => return Ok(false),
        };
        // Dropping the file also drops its slice links; the frozen sources
        // they referenced stay in the frozen set at refcount 0 (retained on
        // purpose — repair prefers an LDC frozen predecessor over losing
        // the linked data outright).
        core.versions.log_and_apply(VersionEdit {
            deleted_files: vec![(level as u32, number)],
            ..Default::default()
        })?;
        self.tables.remove(number);
        self.block_cache.evict_file(number);
        let name = table_file_name(number);
        self.storage.rename(&name, &format!("{name}.quarantined"))?;
        self.metrics.record_quarantine();
        if self.sink.enabled() {
            let now = self.device.clock().now();
            self.sink.record(
                Event::span(EventKind::Quarantine, now, now)
                    .levels(level as u32, level as u32)
                    .files(1, 0)
                    .bytes(meta.size, 0),
            );
        }
        core.quarantined.push(QuarantinedFile {
            file: name,
            level,
            size: meta.size,
            smallest: meta.smallest_ukey().to_vec(),
            largest: meta.largest_ukey().to_vec(),
        });
        self.refresh_level_gauges(&core.versions.current);
        Ok(true)
    }

    /// Inserts or overwrites `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        let t0 = self.device.clock().now();
        let mut ctx = self.trace_start(OpType::Put, t0);
        let result = self.write_traced(batch, ctx.as_mut());
        let end = self.device.clock().now();
        self.metrics
            .record_latency(OpType::Put, end.saturating_sub(t0));
        self.trace_finish(ctx, end);
        result
    }

    /// Deletes `key` (writes a tombstone).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        let t0 = self.device.clock().now();
        let mut ctx = self.trace_start(OpType::Delete, t0);
        let result = self.write_traced(batch, ctx.as_mut());
        let end = self.device.clock().now();
        self.metrics
            .record_latency(OpType::Delete, end.saturating_sub(t0));
        self.trace_finish(ctx, end);
        result
    }

    /// Applies a batch atomically.
    ///
    /// Concurrent writers coalesce: each enqueues its batch, and the first
    /// to find no leader active commits *every* queued batch as one WAL
    /// append (the deterministic drain-all-queued rule), then distributes
    /// results. A single-threaded caller always leads a group of exactly
    /// one batch, so the WAL bytes and virtual-clock charges are identical
    /// to an ungrouped write.
    ///
    /// This is where the paper's tail latency comes from: a write normally
    /// costs only the WAL append and memtable insert, but when background
    /// flush/compaction lags it absorbs LevelDB's classic brakes — the 1 ms
    /// Level-0 slowdown, the Level-0 stop, and the wait for an immutable
    /// memtable slot at rotation.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        self.write_traced(batch, None)
    }

    /// [`Db::write`] with an optional trace context. A follower's entire
    /// wait is one [`Blame::GroupCommitWait`] span (the leader advanced the
    /// clock on its behalf); a leader's commit is broken down inside
    /// [`Db::commit_batches`].
    fn write_traced(&self, batch: WriteBatch, mut trace: Option<&mut TraceCtx>) -> Result<()> {
        let wait_t0 = if trace.is_some() {
            self.device.clock().now()
        } else {
            0
        };
        let ticket = self.commit.enqueue(batch);
        match self.commit.wait(ticket) {
            Role::Done(result) => {
                if let Some(t) = trace.as_deref_mut() {
                    let now = self.device.clock().now();
                    if now > wait_t0 {
                        t.span(Blame::GroupCommitWait, "follower_wait", wait_t0, now);
                    }
                }
                result
            }
            Role::Leader(group) => {
                let results = {
                    let mut core = self.core.lock();
                    if self.scheduler.active() {
                        // Threaded mode: the write gates are condvar waits
                        // on job completion (they must release the core so
                        // workers can install), so they run here where the
                        // guard is owned, before the commit proper.
                        core = self.threaded_write_gates(core, trace.as_deref_mut());
                    }
                    let results = self.commit_group(&mut core, group, trace);
                    self.publish_view(&core);
                    if let Err(e) = self.reap_pending_deletes(&mut core) {
                        if core.bg_error.is_none() {
                            core.bg_error = Some(e);
                        }
                    }
                    results
                };
                self.commit.finish(ticket, results)
            }
        }
    }

    /// The first background/storage error, if the engine has latched one.
    /// While set, writes are refused with this error; reads still work.
    pub fn background_error(&self) -> Option<Error> {
        self.core.lock().bg_error.clone()
    }

    /// Commits one leader-drained group of batches under the core lock and
    /// returns the per-ticket results. Empty batches succeed without side
    /// effects (not even a policy op observation), exactly like the
    /// ungrouped path; the non-empty ones are merged, in ticket order,
    /// into one atomically-committed batch and share one outcome.
    fn commit_group(
        &self,
        core: &mut DbCore,
        group: Vec<(Ticket, WriteBatch)>,
        trace: Option<&mut TraceCtx>,
    ) -> Vec<(Ticket, Result<()>)> {
        if let Some(e) = &core.bg_error {
            let e = e.clone();
            return group
                .into_iter()
                .map(|(t, _)| (t, Err(e.clone())))
                .collect();
        }
        let mut results: Vec<(Ticket, Result<()>)> = Vec::with_capacity(group.len());
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut batches: Vec<WriteBatch> = Vec::new();
        for (ticket, batch) in group {
            if batch.is_empty() {
                results.push((ticket, Ok(())));
            } else {
                tickets.push(ticket);
                batches.push(batch);
            }
        }
        if batches.is_empty() {
            return results;
        }
        let outcome = self.commit_batches(core, batches, trace);
        if let Err(e) = &outcome {
            // Fail-stop: a failed WAL/manifest append leaves that log's
            // record framing unknown, and appending more records after it
            // would make the file unrecoverable. Reads keep working.
            core.bg_error = Some(e.clone());
        }
        for ticket in tickets {
            results.push((ticket, outcome.clone()));
        }
        results
    }

    /// The grouped write path: gates, one WAL append, memtable inserts,
    /// and rotation, all in virtual time. `batches` is non-empty and every
    /// batch in it is non-empty.
    fn commit_batches(
        &self,
        core: &mut DbCore,
        mut batches: Vec<WriteBatch>,
        mut trace: Option<&mut TraceCtx>,
    ) -> Result<()> {
        {
            let mut policy = self.policy.lock();
            for _ in 0..batches.len() {
                policy.observe_op(true);
            }
        }
        // Threaded mode: the stall/slowdown gates already ran in
        // `threaded_write_gates` (they need the core *guard* to wait on);
        // just make sure the pool knows there is work.
        let inline = !self.scheduler.active();
        if !inline {
            self.scheduler_signal();
        }
        if inline {
            self.pump_background(core)?;
        }

        // LevelDB's write gates, in escalating order of pain.
        if inline && core.versions.current.level_files(0) >= self.options.l0_stop_threshold {
            // Hard stop: wait for background tasks until L0 drains below
            // the limit.
            let t0 = self.device.clock().now();
            loop {
                if core.versions.current.level_files(0) < self.options.l0_stop_threshold {
                    break;
                }
                let now = self.device.clock().now();
                let bg = self.bg_until.load(Ordering::SeqCst);
                if bg > now {
                    self.device.clock().advance(bg - now);
                }
                let before = (
                    core.versions.current.level_files(0),
                    self.bg_until.load(Ordering::SeqCst),
                );
                self.pump_background(core)?;
                if before
                    == (
                        core.versions.current.level_files(0),
                        self.bg_until.load(Ordering::SeqCst),
                    )
                {
                    break; // no progress possible (policy is idle)
                }
            }
            let waited = self.device.clock().now().saturating_sub(t0);
            if waited > 0 {
                core.stats.stalls += 1;
                core.stats.stall_nanos += waited;
                if let Some(t) = trace.as_deref_mut() {
                    t.span(Blame::Stall, "l0_stop", t0, t0 + waited);
                }
                if self.sink.enabled() {
                    self.sink
                        .record(Event::span(EventKind::Stall, t0, t0 + waited).levels(0, 0));
                }
            }
        } else if inline
            && core.versions.current.level_files(0) >= self.options.l0_slowdown_threshold
        {
            let t0 = self.device.clock().now();
            self.device.clock().advance(self.options.slowdown_delay_ns);
            core.stats.slowdowns += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.span(
                    Blame::Slowdown,
                    "l0_slowdown",
                    t0,
                    t0 + self.options.slowdown_delay_ns,
                );
            }
            if self.sink.enabled() {
                self.sink.record(
                    Event::span(EventKind::Slowdown, t0, t0 + self.options.slowdown_delay_ns)
                        .levels(0, 0),
                );
            }
        }

        // Coalesce the group into the leader's batch. A group of one is
        // committed as-is — byte-identical WAL framing to the ungrouped
        // engine, which is what keeps single-threaded runs deterministic.
        let group_size = batches.len();
        let mut batch = batches.remove(0);
        for follower in batches {
            for item in follower.iter() {
                let (_, op) = item?;
                match op {
                    BatchOp::Put { key, value } => batch.put(key, value),
                    BatchOp::Delete { key } => batch.delete(key),
                }
            }
        }

        // Foreground write: WAL + memtable. With `wal_sync` off (LevelDB's
        // default), the WAL append lands in the page cache and the device
        // write happens asynchronously — so its device time is booked on
        // the background lane, sharing bandwidth with flush/compaction,
        // while the foreground pays only the syscall-ish cost.
        let fg_start = self.device.clock().now();
        let seq = core.versions.last_sequence + 1;
        batch.set_sequence(seq);
        let count = u64::from(batch.count());
        if self.options.wal_sync {
            let t0 = self.device.clock().now();
            let gc0 = if trace.is_some() {
                self.device.gc_busy_nanos()
            } else {
                0
            };
            core.wal.add_record(batch.encoded())?;
            core.wal.sync()?;
            if let Some(t) = trace.as_deref_mut() {
                let now = self.device.clock().now();
                if now > t0 {
                    t.span(Blame::WalSync, "wal_sync", t0, now);
                    // Any GC relocation the device squeezed into this sync
                    // is its own blame: the paper's write-amplification tax.
                    t.carve_from_last(
                        Blame::SsdGc,
                        "ssd_gc",
                        self.device.gc_busy_nanos().saturating_sub(gc0),
                    );
                }
            }
            if self.sink.enabled() {
                self.sink.record(
                    Event::span(EventKind::WalSync, t0, self.device.clock().now())
                        .bytes(batch.byte_size() as u64, 0),
                );
            }
        } else {
            let t0 = self.device.clock().now();
            core.wal.add_record(batch.encoded())?;
            self.device.clock().rewind_to(t0);
            // The async flush consumes device *bandwidth* (no per-append
            // setup latency — the kernel batches page writes), serialized
            // with flush/compaction on the background lane.
            let lane_cost = (batch.byte_size() as u64).saturating_mul(1_000_000_000)
                / self.device.config().write_bandwidth;
            let bg = self.bg_until.load(Ordering::SeqCst);
            self.bg_until
                .store(bg.max(t0) + lane_cost, Ordering::SeqCst);
            // The buffered append still costs a syscall on the foreground.
            self.device.clock().advance(3_000);
            if let Some(t) = trace.as_deref_mut() {
                t.span(
                    Blame::WalAppend,
                    "wal_append",
                    t0,
                    self.device.clock().now(),
                );
            }
        }
        let mem_t0 = if trace.is_some() {
            self.device.clock().now()
        } else {
            0
        };
        for item in batch.iter() {
            let (offset, op) = item?;
            let op_seq = seq + u64::from(offset);
            match op {
                BatchOp::Put { key, value } => core.mem.add(op_seq, ValueType::Value, key, value),
                BatchOp::Delete { key } => core.mem.add(op_seq, ValueType::Deletion, key, b""),
            }
        }
        self.device
            .clock()
            .advance(self.options.memtable_write_ns * count);
        if let Some(t) = trace.as_deref_mut() {
            t.span(
                Blame::Memtable,
                "memtable_insert",
                mem_t0,
                self.device.clock().now(),
            );
        }
        core.versions.last_sequence = seq + count - 1;
        core.stats.writes += count;
        core.stats.user_bytes_written += batch.user_bytes();
        let fg_end = self.device.clock().now();
        self.device.ledger().record(
            TimeCategory::ForegroundWrite,
            fg_end.saturating_sub(fg_start),
        );
        if group_size > 1 {
            core.stats.write_groups += 1;
            core.stats.grouped_batches += group_size as u64;
            if self.sink.enabled() {
                self.sink.record(
                    Event::span(EventKind::GroupCommit, fg_start, fg_end)
                        .files(group_size as u32, 0)
                        .bytes(batch.byte_size() as u64, 0),
                );
            }
        }

        // Rotate when the memtable is full. If the previous immutable
        // memtable is still waiting for (or in) its flush, the writer must
        // wait for the slot — the paper's Eq. 3 tail event.
        if core.mem.approximate_bytes() >= self.options.memtable_bytes {
            if !inline {
                // Threaded mode: rotate only if the `imm` slot is free and
                // hand the flush to the pool. When the slot is still
                // occupied the memtable simply overshoots its budget for
                // this commit — the next write's entry gate waits for the
                // in-flight flush (releasing the core) before proceeding.
                if core.imm.is_none() {
                    let new_log_number = core.versions.new_file_number();
                    let old_log = core.wal.name().to_string();
                    core.wal = LogWriter::new(
                        Arc::clone(&self.storage),
                        log_file_name(new_log_number),
                        IoClass::WalWrite,
                    );
                    let seed = self.options.seed ^ core.versions.next_file_number;
                    let full = std::mem::replace(&mut core.mem, Arc::new(MemTable::new(seed)));
                    core.imm = Some(full);
                    core.imm_wal_to_delete = Some(old_log);
                }
                self.scheduler_signal();
                return Ok(());
            }
            if core.imm.is_some() {
                let t0 = self.device.clock().now();
                // Let the lane finish its current task, then force the
                // flush through.
                let bg = self.bg_until.load(Ordering::SeqCst);
                if bg > t0 {
                    self.device.clock().advance(bg - t0);
                }
                self.pump_background(core)?; // starts the flush if still pending
                if core.imm.is_some() {
                    // The lane picked something else first (cannot happen
                    // with the flush-first pump, but stay safe): wait again.
                    let now = self.device.clock().now();
                    let bg = self.bg_until.load(Ordering::SeqCst);
                    if bg > now {
                        self.device.clock().advance(bg - now);
                    }
                    self.pump_background(core)?;
                }
                let waited = self.device.clock().now().saturating_sub(t0);
                if waited > 0 {
                    core.stats.stalls += 1;
                    core.stats.stall_nanos += waited;
                    if let Some(t) = trace {
                        t.span(Blame::Stall, "rotation_wait", t0, t0 + waited);
                    }
                    if self.sink.enabled() {
                        self.sink
                            .record(Event::span(EventKind::Stall, t0, t0 + waited));
                    }
                }
            }
            let new_log_number = core.versions.new_file_number();
            let old_log = core.wal.name().to_string();
            core.wal = LogWriter::new(
                Arc::clone(&self.storage),
                log_file_name(new_log_number),
                IoClass::WalWrite,
            );
            let seed = self.options.seed ^ core.versions.next_file_number;
            let full = std::mem::replace(&mut core.mem, Arc::new(MemTable::new(seed)));
            core.imm = Some(full);
            core.imm_wal_to_delete = Some(old_log);
            self.pump_background(core)?; // start the flush if the lane is idle
        }
        Ok(())
    }
}

impl Db {
    /// One scheduling step of the simulated background thread.
    ///
    /// If the lane is idle, starts the next unit of work — the pending
    /// memtable flush first, otherwise one policy-picked compaction task.
    /// The work executes immediately (so all state changes are visible to
    /// subsequent reads, like a real background thread's results would be
    /// once installed), but its virtual time is booked on the lane: the
    /// clock is rewound and `bg_until` extended. Foreground requests feel
    /// it only through the write gates and read contention.
    fn pump_background(&self, core: &mut DbCore) -> Result<()> {
        let now = self.device.clock().now();
        if self.bg_until.load(Ordering::SeqCst) > now {
            return Ok(()); // lane busy
        }
        let t0 = now;
        if let Some(imm) = core.imm.take() {
            let wal = core.imm_wal_to_delete.take();
            self.flush_table(core, &imm, None)?;
            if let Some(wal) = wal {
                if self.storage.exists(&wal) {
                    self.storage.delete(&wal)?;
                }
            }
        } else {
            let task = {
                let ctx = PickContext {
                    version: &core.versions.current,
                    options: &self.options,
                    compact_pointers: &core.versions.compact_pointers,
                };
                self.policy.lock().pick(&ctx)
            };
            match task {
                Some(task) => {
                    if let Err(e) = self.execute(core, task) {
                        match e {
                            // A compaction input turned out to be corrupt.
                            // Under the quarantine policy, set the file
                            // aside and let the policy re-plan on the next
                            // pump against the surviving version; partial
                            // outputs are orphaned on disk and reclaimed by
                            // `repair_db`.
                            Error::Corruption(ref info) if self.try_quarantine(core, info)? => {}
                            e => return Err(e),
                        }
                    }
                }
                None => return Ok(()), // nothing to do
            }
        }
        let t1 = self.device.clock().now();
        self.device.clock().rewind_to(t0);
        self.bg_until.store(t0 + (t1 - t0), Ordering::SeqCst);
        Ok(())
    }

    /// Physically deletes table files dropped from the version, once no
    /// read holds a pinned view that could still reference them. Runs at
    /// commit and drain boundaries — always *after* `publish_view`, so any
    /// view pinned after the zero-pin check cannot name these files. The
    /// delete cost (a filesystem op per file) is booked on the background
    /// lane, like the compaction work that orphaned the files.
    fn reap_pending_deletes(&self, core: &mut DbCore) -> Result<()> {
        if core.pending_deletes.is_empty()
            || self.read_pins.load(Ordering::SeqCst) != 0
            || self.ckpt_pins.load(Ordering::SeqCst) != 0
        {
            return Ok(());
        }
        let t0 = self.device.clock().now();
        let pending = std::mem::take(&mut core.pending_deletes);
        let mut result = Ok(());
        for number in pending {
            self.tables.remove(number);
            self.block_cache.evict_file(number);
            let name = table_file_name(number);
            if self.storage.exists(&name) {
                if let Err(e) = self.storage.delete(&name) {
                    result = Err(e.into());
                }
            }
        }
        let t1 = self.device.clock().now();
        if t1 > t0 {
            self.device.clock().rewind_to(t0);
            let bg = self.bg_until.load(Ordering::SeqCst);
            self.bg_until
                .store(bg.max(t0) + (t1 - t0), Ordering::SeqCst);
        }
        result
    }

    /// Charges a foreground read for sharing device bandwidth with active
    /// background work: both streams run at half speed during the overlap,
    /// so the read takes twice as long *and* the background lane's drain is
    /// pushed out by the same amount.
    fn charge_read_contention(&self, op_start: Nanos) {
        let end = self.device.clock().now();
        let window_end = self.bg_until.load(Ordering::SeqCst).min(end);
        // Claim [start, window_end) exactly once across all readers: the
        // cursor CAS hands each slice of the contention window to exactly
        // one op. Single-threaded this is byte-identical to charging
        // `window_end - op_start` directly (the cursor always trails
        // op_start), which keeps same-seed runs reproducible.
        let mut claimed = self.contended_until.load(Ordering::SeqCst);
        loop {
            let start = op_start.max(claimed);
            if window_end <= start {
                return;
            }
            match self.contended_until.compare_exchange(
                claimed,
                window_end,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    let overlap = window_end - start;
                    self.device.clock().advance(overlap);
                    self.bg_until.fetch_add(overlap, Ordering::SeqCst);
                    return;
                }
                Err(current) => claimed = current,
            }
        }
    }

    /// Advances the clock until the background lane is fully idle — the
    /// pending flush is done and the policy has no more work — returning
    /// the total wait. Harnesses call this at measurement boundaries so
    /// compaction debt is not silently dropped from throughput accounting.
    pub fn drain_background(&self) -> Nanos {
        if self.scheduler.active() {
            return self.drain_background_threaded();
        }
        let t0 = self.device.clock().now();
        let mut core = self.core.lock();
        loop {
            let now = self.device.clock().now();
            let bg = self.bg_until.load(Ordering::SeqCst);
            if bg > now {
                self.device.clock().advance(bg - now);
            }
            let before = self.bg_until.load(Ordering::SeqCst);
            if self.pump_background(&mut core).is_err() {
                break;
            }
            if self.bg_until.load(Ordering::SeqCst) == before && core.imm.is_none() {
                break; // lane idle and nothing started
            }
        }
        self.publish_view(&core);
        if let Err(e) = self.reap_pending_deletes(&mut core) {
            if core.bg_error.is_none() {
                core.bg_error = Some(e);
            }
        }
        // The reap books lane time; absorb it so "drained" means idle.
        let now = self.device.clock().now();
        let bg = self.bg_until.load(Ordering::SeqCst);
        if bg > now {
            self.device.clock().advance(bg - now);
        }
        self.device.clock().now().saturating_sub(t0)
    }

    // ------------------------------------------------------------------
    // Background worker pool (threaded mode)
    // ------------------------------------------------------------------

    /// Spawns the `options.background_workers` worker threads. A no-op if
    /// the option is 0 or the pool already runs. While active, the write
    /// path signals the pool instead of pumping inline; runs are
    /// linearizable but not timing-reproducible. Call
    /// [`Db::shutdown_workers`] before dropping the last handle you plan
    /// to reopen from quickly — otherwise parked threads keep the `Arc`
    /// (and the store) alive until process exit.
    pub fn start_workers(self: &Arc<Self>) {
        if self.scheduler.workers == 0 || self.scheduler.active() {
            return;
        }
        let mut threads = self.scheduler.threads.lock();
        if !threads.is_empty() {
            return;
        }
        for i in 0..self.scheduler.workers {
            let db = Arc::clone(self);
            let handle = std::thread::Builder::new()
                .name(format!("ldc-bg-{i}"))
                .spawn(move || db.worker_main())
                // ldc-lint: allow(panic_safety) — spawn failing at startup has no degraded mode; an "active" pool with zero workers would deadlock the write gates
                .expect("spawn background worker");
            threads.push(handle);
        }
        self.scheduler.started.store(true, Ordering::SeqCst);
    }

    /// Stops and joins the worker pool. Idempotent. Pending background
    /// work is simply dropped — an unflushed memtable is still covered by
    /// its WAL, and uninstalled compaction outputs are orphans reclaimed
    /// by `repair_db`; nothing acknowledged is lost.
    pub fn shutdown_workers(&self) {
        if self.scheduler.active() {
            self.scheduler.stop();
        }
    }

    /// Whether the background worker pool is running.
    pub fn workers_active(&self) -> bool {
        self.scheduler.active()
    }

    /// Marks work pending and wakes one worker. Called with the core lock
    /// held (rank 60 → state's rank 65 is a legal forward acquisition).
    fn scheduler_signal(&self) {
        let mut st = self.scheduler.state.lock();
        st.work_hint = true;
        self.scheduler.work_cv.notify_one();
    }

    /// Threaded-mode write-entry gates: the L0 stop gate and the
    /// rotation-slot gate become waits on job completion (`done_cv`,
    /// paired with the core mutex — the wait releases the core so workers
    /// can install), attributed to [`Blame::WorkerQueue`]. The soft L0
    /// slowdown brake parks on the same condvar for up to the slowdown
    /// delay. Mirrors the inline gates' "no progress possible" break via
    /// the scheduler's `policy_idle` flag.
    fn threaded_write_gates<'a>(
        &self,
        mut core: MutexGuard<'a, DbCore>,
        mut trace: Option<&mut TraceCtx>,
    ) -> MutexGuard<'a, DbCore> {
        let mut stall_t0: Option<Nanos> = None;
        loop {
            if core.bg_error.is_some() {
                break;
            }
            let over_stop = core.versions.current.level_files(0) >= self.options.l0_stop_threshold;
            let rot_blocked =
                core.imm.is_some() && core.mem.approximate_bytes() >= self.options.memtable_bytes;
            if !over_stop && !rot_blocked {
                break;
            }
            let stuck = {
                let mut st = self.scheduler.state.lock();
                st.work_hint = true;
                self.scheduler.work_cv.notify_all();
                // Nothing running, nothing queued, and the policy had no
                // task for the current version: waiting cannot help.
                st.policy_idle && !st.busy() && core.imm.is_none()
            };
            if stuck {
                break;
            }
            if stall_t0.is_none() {
                stall_t0 = Some(self.device.clock().now());
            }
            // The timeout is a lost-wakeup/progress backstop; installs
            // notify `done_cv` while holding the core, so the normal path
            // wakes immediately.
            let (g, _) = core.wait_timeout(&self.scheduler.done_cv, Duration::from_millis(2));
            core = g;
        }
        if let Some(t0) = stall_t0 {
            let now = self.device.clock().now();
            let waited = now.saturating_sub(t0);
            if waited > 0 {
                core.stats.stalls += 1;
                core.stats.stall_nanos += waited;
                if let Some(t) = trace.as_deref_mut() {
                    t.span(Blame::WorkerQueue, "worker_queue", t0, now);
                }
                if self.sink.enabled() {
                    self.sink
                        .record(Event::span(EventKind::Stall, t0, now).levels(0, 0));
                }
            }
        } else if core.bg_error.is_none()
            && core.versions.current.level_files(0) >= self.options.l0_slowdown_threshold
        {
            // Soft brake: a real host-time pause (bounded by the slowdown
            // delay), released early by any job install. The virtual clock
            // is advanced by the model delay so event spans stay sane.
            let t0 = self.device.clock().now();
            self.scheduler_signal();
            let dur = Duration::from_nanos(self.options.slowdown_delay_ns.min(1_000_000));
            let (g, _) = core.wait_timeout(&self.scheduler.done_cv, dur);
            core = g;
            self.device.clock().advance(self.options.slowdown_delay_ns);
            core.stats.slowdowns += 1;
            let end = self.device.clock().now();
            if let Some(t) = trace {
                t.span(Blame::Slowdown, "l0_slowdown", t0, end);
            }
            if self.sink.enabled() {
                self.sink
                    .record(Event::span(EventKind::Slowdown, t0, end).levels(0, 0));
            }
        }
        core
    }

    /// Waits out an in-flight worker flush job so the caller can run the
    /// inline flush path while holding the core continuously (no worker
    /// can claim `imm` without the core lock). No-op in inline mode.
    fn wait_flush_job<'a>(&self, mut core: MutexGuard<'a, DbCore>) -> MutexGuard<'a, DbCore> {
        if !self.scheduler.active() {
            return core;
        }
        loop {
            let inflight = self.scheduler.state.lock().flush_inflight;
            if !inflight {
                return core;
            }
            let (g, _) = core.wait_timeout(&self.scheduler.done_cv, Duration::from_millis(2));
            core = g;
        }
    }

    /// Threaded-mode drain: signal the pool and wait until nothing is
    /// claimed, nothing is queued, the `imm` slot is clear, and the
    /// policy reported no further work.
    fn drain_background_threaded(&self) -> Nanos {
        let t0 = self.device.clock().now();
        let mut core = self.core.lock();
        loop {
            if core.bg_error.is_some() {
                break;
            }
            let idle = {
                let mut st = self.scheduler.state.lock();
                st.work_hint = true;
                self.scheduler.work_cv.notify_all();
                st.policy_idle && !st.busy()
            };
            if idle && core.imm.is_none() {
                break;
            }
            let (g, _) = core.wait_timeout(&self.scheduler.done_cv, Duration::from_millis(2));
            core = g;
        }
        self.publish_view(&core);
        if let Err(e) = self.reap_pending_deletes(&mut core) {
            if core.bg_error.is_none() {
                core.bg_error = Some(e);
            }
        }
        self.device.clock().now().saturating_sub(t0)
    }

    /// A worker thread's main loop: park on `work_cv`, then either run a
    /// queued subcompaction unit or plan-run-install one whole job.
    fn worker_main(&self) {
        enum Next {
            Exit,
            Job,
            Unit(SubUnit, Arc<MergeUnitSpec>),
        }
        loop {
            let next = {
                let mut st = self.scheduler.state.lock();
                loop {
                    if self.scheduler.shutdown.load(Ordering::SeqCst) {
                        break Next::Exit;
                    }
                    if let Some(u) = st.subqueue.pop_front() {
                        match st.sub.as_ref().map(|b| Arc::clone(&b.spec)) {
                            Some(spec) => break Next::Unit(u, spec),
                            None => continue, // stale unit of a torn-down batch
                        }
                    }
                    if st.work_hint {
                        st.work_hint = false;
                        break Next::Job;
                    }
                    st = st.wait(&self.scheduler.work_cv);
                }
            };
            match next {
                Next::Exit => return,
                Next::Job => self.run_one_job(),
                Next::Unit(unit, spec) => self.run_queued_unit(unit, &spec),
            }
            // One scheduling point per job keeps a busy pool from
            // monopolizing a small machine between back-to-back picks.
            std::thread::yield_now();
        }
    }

    /// Plan one job under the core lock, then run and install it.
    fn run_one_job(&self) {
        let job = {
            let mut core = self.core.lock();
            if core.bg_error.is_some() {
                return;
            }
            self.plan_job(&mut core)
        };
        match job {
            Some(BgJob::Flush { imm, wal }) => self.run_flush_job(imm, wal),
            Some(BgJob::Compact {
                job,
                t0,
                desc,
                inputs,
                plan,
            }) => self.run_compact_job(job, t0, desc, inputs, plan),
            None => {}
        }
    }

    /// Claims the next unit of work. Flush has priority (mirroring the
    /// inline pump); metadata-only tasks (trivial move, link) execute
    /// right here under the core lock; merges are claimed with conflict
    /// tracking and returned for the lock-free run phase.
    fn plan_job(&self, core: &mut DbCore) -> Option<BgJob> {
        if let Some(imm) = core.imm.as_ref() {
            let mut st = self.scheduler.state.lock();
            if !st.flush_inflight {
                st.flush_inflight = true;
                st.policy_idle = false;
                return Some(BgJob::Flush {
                    imm: Arc::clone(imm),
                    wal: core.imm_wal_to_delete.clone(),
                });
            }
        }
        let gen = {
            let st = self.scheduler.state.lock();
            st.completed
        };
        let task = {
            let ctx = PickContext {
                version: &core.versions.current,
                options: &self.options,
                compact_pointers: &core.versions.compact_pointers,
            };
            self.policy.lock().pick(&ctx)
        };
        let Some(task) = task else {
            {
                let mut st = self.scheduler.state.lock();
                // Only latch idle if no job installed since the pick —
                // an install changes the version the policy judged.
                if st.completed == gen {
                    st.policy_idle = true;
                }
            }
            // Stalled writers re-check `policy_idle` under the core lock
            // (which we hold), so this wake cannot be lost.
            self.scheduler.done_cv.notify_all();
            return None;
        };
        let desc = if self.sink.enabled() {
            Some(self.describe_task(&core.versions.current, &task))
        } else {
            None
        };
        let t0 = self.device.clock().now();
        let smallest_snapshot = snapshot_floor(core);
        match task {
            CompactionTask::TrivialMove { level, file } | CompactionTask::Link { level, file } => {
                // Stale pick (input vanished via quarantine) — drop it.
                if core.versions.current.find_file(file).map(|(l, _)| l) != Some(level) {
                    return None;
                }
                let conflict = {
                    let st = self.scheduler.state.lock();
                    // Coarse but safe: a move/link rewires metadata at
                    // `level`/`level+1`; defer while any job claims
                    // ranges there (its outputs could interleave).
                    st.inflight_inputs.contains(&file)
                        || st
                            .claims
                            .iter()
                            .any(|c| c.level == level || c.level == level + 1)
                };
                if conflict {
                    return None;
                }
                if let Err(e) = self.execute(core, task) {
                    self.fail_planned(core, e);
                } else {
                    self.publish_view(core);
                    if let Err(e) = self.reap_pending_deletes(core) {
                        if core.bg_error.is_none() {
                            core.bg_error = Some(e);
                        }
                    }
                    self.complete_job(core, None, &[], false);
                }
                None
            }
            CompactionTask::Merge {
                level,
                upper,
                lower,
            } => {
                let upper_m = resolve_metas(core, &upper)?;
                let lower_m = resolve_metas(core, &lower)?;
                if upper_m.iter().chain(&lower_m).any(|m| !m.slices.is_empty()) {
                    return None; // slice-carrying files merge via LdcMerge
                }
                let inputs: Vec<u64> = upper.iter().chain(&lower).copied().collect();
                let (lo, hi) = key_span(upper_m.iter().chain(&lower_m))?;
                let ranges = vec![(level, lo.clone(), hi.clone()), (level + 1, lo, hi)];
                let job = {
                    let mut st = self.scheduler.state.lock();
                    if st.conflicts(&inputs, &ranges) {
                        return None;
                    }
                    st.policy_idle = false;
                    st.claim(&inputs, ranges)
                };
                let spec = Arc::new(MergeUnitSpec {
                    inputs: inputs.clone(),
                    drop_tombstones: level + 1 == self.options.max_levels - 1,
                    split_outputs: true,
                    smallest_snapshot,
                });
                Some(BgJob::Compact {
                    job,
                    t0,
                    desc,
                    inputs,
                    plan: PlannedCompaction::Merge {
                        level,
                        upper: upper_m,
                        lower: lower_m,
                        spec,
                    },
                })
            }
            CompactionTask::LdcMerge { level, file } => {
                let meta = match core.versions.current.find_file(file) {
                    Some((l, m)) if l == level && !m.slices.is_empty() => m.clone(),
                    _ => return None, // stale pick
                };
                let mut inputs: Vec<u64> = vec![file];
                inputs.extend(meta.slices.iter().map(|s| s.source_file));
                inputs.sort_unstable();
                inputs.dedup();
                // Outputs replace `file` within its responsible range, so
                // claiming the file's own span excludes same-level writers;
                // shared frozen sources are excluded via `inputs`.
                let ranges = vec![(
                    level,
                    meta.smallest_ukey().to_vec(),
                    meta.largest_ukey().to_vec(),
                )];
                let job = {
                    let mut st = self.scheduler.state.lock();
                    if st.conflicts(&inputs, &ranges) {
                        return None;
                    }
                    st.policy_idle = false;
                    st.claim(&inputs, ranges)
                };
                Some(BgJob::Compact {
                    job,
                    t0,
                    desc,
                    inputs,
                    plan: PlannedCompaction::Ldc {
                        level,
                        meta,
                        drop_tombstones: level == self.options.max_levels - 1,
                        smallest_snapshot,
                    },
                })
            }
            CompactionTask::TieredMerge { files } => {
                let metas = resolve_metas(core, &files)?;
                if metas.iter().any(|m| !m.slices.is_empty()) {
                    return None;
                }
                let (lo, hi) = key_span(metas.iter())?;
                let ranges = vec![(0usize, lo, hi)];
                let job = {
                    let mut st = self.scheduler.state.lock();
                    if st.conflicts(&files, &ranges) {
                        return None;
                    }
                    st.policy_idle = false;
                    st.claim(&files, ranges)
                };
                let spec = Arc::new(MergeUnitSpec {
                    inputs: files.clone(),
                    drop_tombstones: false,
                    split_outputs: false,
                    smallest_snapshot,
                });
                Some(BgJob::Compact {
                    job,
                    t0,
                    desc,
                    inputs: files,
                    plan: PlannedCompaction::Tiered { metas, spec },
                })
            }
        }
    }

    /// Flush job: build and stream the L0 table with no engine lock held,
    /// then install under the core lock.
    fn run_flush_job(&self, imm: Arc<MemTable>, wal: Option<String>) {
        let t0 = self.device.clock().now();
        let input_bytes = imm.approximate_bytes() as u64;
        let built = (|| -> Result<(FileMeta, Nanos)> {
            let mut builder = TableBuilder::new(
                self.options.block_bytes,
                self.options.block_restart_interval,
                self.options.bloom_bits_per_key,
            );
            let mut it = imm.iter();
            it.seek_to_first();
            while it.valid() {
                builder.add(it.key(), it.value());
                it.next();
            }
            // The iterator pins the memtable's list lock (rank 90); release
            // it before taking core (rank 60) for the file number.
            drop(it);
            let finished = builder.finish();
            let number = self.core.lock().versions.new_file_number();
            let w0 = self.device.clock().now();
            self.write_table_chunked(
                &table_file_name(number),
                &finished.bytes,
                IoClass::FlushWrite,
            )?;
            Ok((
                FileMeta {
                    number,
                    size: finished.bytes.len() as u64,
                    smallest: finished.smallest,
                    largest: finished.largest,
                    slices: Vec::new(),
                },
                self.device.clock().now().saturating_sub(w0),
            ))
        })();
        let (meta, write_nanos) = match built {
            Ok(b) => b,
            Err(e) => {
                self.fail_job(e, None, &[], true);
                return;
            }
        };
        let mut core = self.core.lock();
        let installed = (|| -> Result<()> {
            core.versions.log_and_apply(VersionEdit {
                new_files: vec![(0, meta.clone())],
                ..Default::default()
            })?;
            core.imm = None;
            core.imm_wal_to_delete = None;
            core.stats.flushes += 1;
            if let Some(wal) = &wal {
                if self.storage.exists(wal) {
                    self.storage.delete(wal)?;
                }
            }
            Ok(())
        })();
        if let Err(e) = installed {
            if core.bg_error.is_none() {
                core.bg_error = Some(e);
            }
        } else {
            self.publish_view(&core);
            if let Err(e) = self.reap_pending_deletes(&mut core) {
                if core.bg_error.is_none() {
                    core.bg_error = Some(e);
                }
            }
            self.refresh_level_gauges(&core.versions.current);
            if self.sink.enabled() {
                let end = self.device.clock().now();
                let mut ev = Event::span(EventKind::Flush, t0, end)
                    .files(0, 1)
                    .bytes(input_bytes, meta.size)
                    .phases(0, 0, write_nanos);
                ev.output_level = Some(0);
                self.sink.record(ev);
            }
        }
        self.complete_job(&core, None, &[], true);
    }

    /// Run phase + install for a claimed compaction job.
    fn run_compact_job(
        &self,
        job: u64,
        t0: Nanos,
        desc: Option<TaskDescriptor>,
        inputs: Vec<u64>,
        plan: PlannedCompaction,
    ) {
        let result: Result<(Vec<UnitOutput>, CompactInstall)> = match plan {
            PlannedCompaction::Merge {
                level,
                upper,
                lower,
                spec,
            } => {
                let ranges = split_merge_ranges(&upper, &lower, self.options.max_subcompactions);
                self.run_split_merge(&spec, ranges).map(|outs| {
                    (
                        outs,
                        CompactInstall::Merge {
                            level,
                            upper,
                            lower,
                        },
                    )
                })
            }
            PlannedCompaction::Ldc {
                level,
                meta,
                drop_tombstones,
                smallest_snapshot,
            } => self
                .run_ldc_merge(&meta, drop_tombstones, smallest_snapshot)
                .map(|out| (vec![out], CompactInstall::Ldc { level, meta })),
            PlannedCompaction::Tiered { metas, spec } => self
                .run_merge_unit(&spec, None)
                .map(|out| (vec![out], CompactInstall::Tiered { metas })),
        };
        match result {
            Ok((outs, install)) => self.install_compaction(job, t0, desc, &inputs, outs, install),
            Err(e) => self.fail_job(e, Some(job), &inputs, false),
        }
    }

    /// Installs a finished compaction as one atomic `VersionEdit`. If an
    /// input vanished mid-run (quarantine), the job aborts and its outputs
    /// stay as orphans for `repair_db`.
    fn install_compaction(
        &self,
        job: u64,
        t0: Nanos,
        desc: Option<TaskDescriptor>,
        inputs: &[u64],
        outs: Vec<UnitOutput>,
        install: CompactInstall,
    ) {
        let mut core = self.core.lock();
        let live = |core: &DbCore, n: u64| core.versions.current.find_file(n).is_some();
        let mut edit = VersionEdit::default();
        let mut dropped: Vec<u64> = Vec::new();
        let mut stat: Option<&'static str> = None;
        let ok = match &install {
            CompactInstall::Merge {
                level,
                upper,
                lower,
            } => {
                if upper.iter().chain(lower).all(|m| live(&core, m.number)) {
                    for m in upper {
                        edit.deleted_files.push((*level as u32, m.number));
                    }
                    for m in lower {
                        edit.deleted_files.push(((*level + 1) as u32, m.number));
                    }
                    for u in &outs {
                        for m in &u.metas {
                            edit.new_files.push(((*level + 1) as u32, m.clone()));
                        }
                    }
                    if *level >= 1 {
                        if let Some(hi) = upper.iter().map(|m| m.largest_ukey().to_vec()).max() {
                            edit.compact_pointers.push((*level as u32, hi));
                        }
                    }
                    dropped.extend(upper.iter().chain(lower).map(|m| m.number));
                    stat = Some("merges");
                    true
                } else {
                    false
                }
            }
            CompactInstall::Ldc { level, meta } => {
                if live(&core, meta.number) {
                    edit.deleted_files.push((*level as u32, meta.number));
                    for u in &outs {
                        for m in &u.metas {
                            edit.new_files.push((*level as u32, m.clone()));
                        }
                    }
                    // Reference counting against the refcounts current at
                    // install time (Algorithm 1, lines 18-22).
                    let mut remaining: HashMap<u64, u32> = HashMap::new();
                    for (number, frozen) in &core.versions.current.frozen {
                        remaining.insert(*number, frozen.refcount);
                    }
                    let mut reclaimed: Vec<u64> = Vec::new();
                    for slice in &meta.slices {
                        if let Some(count) = remaining.get_mut(&slice.source_file) {
                            *count = count.saturating_sub(1);
                            if *count == 0 {
                                reclaimed.push(slice.source_file);
                            }
                        }
                    }
                    reclaimed.sort_unstable();
                    reclaimed.dedup();
                    edit.deleted_frozen.clone_from(&reclaimed);
                    dropped.push(meta.number);
                    dropped.extend(reclaimed);
                    stat = Some("ldc_merges");
                    true
                } else {
                    false
                }
            }
            CompactInstall::Tiered { metas } => {
                if metas.iter().all(|m| live(&core, m.number)) {
                    for m in metas {
                        edit.deleted_files.push((0, m.number));
                    }
                    for u in &outs {
                        for m in &u.metas {
                            edit.new_files.push((0, m.clone()));
                        }
                    }
                    dropped.extend(metas.iter().map(|m| m.number));
                    stat = Some("merges");
                    true
                } else {
                    false
                }
            }
        };
        if ok {
            match core.versions.log_and_apply(edit) {
                Ok(()) => {
                    for n in dropped {
                        self.drop_table_file(&mut core, n);
                    }
                    match stat {
                        Some("ldc_merges") => core.stats.ldc_merges += 1,
                        _ => core.stats.merges += 1,
                    }
                    self.publish_view(&core);
                    if let Err(e) = self.reap_pending_deletes(&mut core) {
                        if core.bg_error.is_none() {
                            core.bg_error = Some(e);
                        }
                    }
                    self.refresh_level_gauges(&core.versions.current);
                    if let Some(desc) = desc {
                        let end = self.device.clock().now();
                        let elapsed = end.saturating_sub(t0);
                        let write: u64 =
                            outs.iter().map(|u| u.write_nanos).sum::<u64>().min(elapsed);
                        let (files, bytes) = outs.iter().fold((0u32, 0u64), |(f, b), u| {
                            (f + u.output_files, b + u.output_bytes)
                        });
                        self.sink.record(
                            Event::span(desc.kind, t0, end)
                                .levels(desc.level, desc.output_level)
                                .files(desc.input_files, files)
                                .bytes(desc.input_bytes, bytes)
                                .phases(elapsed - write, 0, write),
                        );
                    }
                }
                Err(e) => {
                    if core.bg_error.is_none() {
                        core.bg_error = Some(e);
                    }
                }
            }
        }
        self.complete_job(&core, Some(job), inputs, false);
    }

    /// Runs a split merge: queue units 1.. for idle workers (when the
    /// single split slot is free), run unit 0 ourselves, then help drain
    /// the queue until every unit posted. Results come back in unit order
    /// so the installed file sequence matches an unsplit merge's.
    fn run_split_merge(
        &self,
        spec: &Arc<MergeUnitSpec>,
        ranges: Vec<Option<KeyRange>>,
    ) -> Result<Vec<UnitOutput>> {
        let k = ranges.len();
        let first = ranges.first().and_then(|r| r.as_ref());
        if k == 1 {
            return Ok(vec![self.run_merge_unit(spec, first)?]);
        }
        let queued = {
            let mut st = self.scheduler.state.lock();
            if st.sub.is_none() {
                st.sub = Some(SubBatch {
                    spec: Arc::clone(spec),
                    remaining: k,
                    results: Vec::new(),
                });
                for (i, r) in ranges.iter().enumerate().skip(1) {
                    st.subqueue.push_back(SubUnit {
                        idx: i,
                        range: r.clone(),
                    });
                }
                self.scheduler.work_cv.notify_all();
                true
            } else {
                false
            }
        };
        if !queued {
            // Another split merge holds the slot; run sequentially.
            let mut outs = Vec::with_capacity(k);
            for r in &ranges {
                outs.push(self.run_merge_unit(spec, r.as_ref())?);
            }
            return Ok(outs);
        }
        let r0 = self.run_merge_unit(spec, first);
        let mut st = self.scheduler.state.lock();
        if let Some(b) = st.sub.as_mut() {
            b.remaining -= 1;
            b.results.push((0, r0));
        }
        loop {
            if st.sub.as_ref().is_none_or(|b| b.remaining == 0) {
                break;
            }
            if let Some(u) = st.subqueue.pop_front() {
                drop(st);
                let r = self.run_merge_unit(spec, u.range.as_ref());
                st = self.scheduler.state.lock();
                if let Some(b) = st.sub.as_mut() {
                    b.remaining -= 1;
                    b.results.push((u.idx, r));
                }
            } else {
                st = st.wait(&self.scheduler.subs_cv);
            }
        }
        let Some(batch) = st.sub.take() else {
            drop(st);
            return Err(Error::InvalidState(
                "split-merge batch vanished before its coordinator collected it".to_string(),
            ));
        };
        drop(st);
        let mut results = batch.results;
        results.sort_by_key(|(i, _)| *i);
        let mut outs = Vec::with_capacity(k);
        for (_, r) in results {
            outs.push(r?);
        }
        Ok(outs)
    }

    /// Executes one queued subcompaction unit and posts its result to the
    /// coordinator.
    fn run_queued_unit(&self, unit: SubUnit, spec: &Arc<MergeUnitSpec>) {
        let r = self.run_merge_unit(spec, unit.range.as_ref());
        let mut st = self.scheduler.state.lock();
        if let Some(b) = st.sub.as_mut() {
            b.remaining -= 1;
            b.results.push((unit.idx, r));
        }
        self.scheduler.subs_cv.notify_all();
    }

    /// One subcompaction unit: merge the job's inputs restricted to
    /// `range` (None = everything) into output tables.
    fn run_merge_unit(&self, spec: &MergeUnitSpec, range: Option<&KeyRange>) -> Result<UnitOutput> {
        let mut inputs: Vec<Box<dyn InternalIterator>> = Vec::new();
        for &n in &spec.inputs {
            let table = self.table(n)?;
            match range {
                Some(r) => inputs.push(Box::new(
                    table.range_iter(r.clone(), IoClass::CompactionRead),
                )),
                None => inputs.push(Box::new(table.iter(IoClass::CompactionRead))),
            }
        }
        self.merge_stream_detached(
            inputs,
            spec.drop_tombstones,
            spec.split_outputs,
            spec.smallest_snapshot,
        )
    }

    /// The LDC merge run phase (file + its slices; never split — each
    /// LdcMerge already covers exactly one responsible range).
    fn run_ldc_merge(
        &self,
        meta: &FileMeta,
        drop_tombstones: bool,
        smallest_snapshot: SequenceNumber,
    ) -> Result<UnitOutput> {
        let mut inputs: Vec<Box<dyn InternalIterator>> = Vec::new();
        let table = self.table(meta.number)?;
        inputs.push(Box::new(table.iter(IoClass::CompactionRead)));
        for slice in &meta.slices {
            let frozen = self.table(slice.source_file)?;
            inputs.push(Box::new(
                frozen.range_iter(slice.range.clone(), IoClass::CompactionRead),
            ));
        }
        self.merge_stream_detached(inputs, drop_tombstones, true, smallest_snapshot)
    }

    /// Job failure: quarantine a corrupt input when the policy allows
    /// (the policy then re-plans against the surviving version), latch
    /// `bg_error` otherwise, and release the job's claims either way.
    fn fail_job(&self, err: Error, job: Option<u64>, inputs: &[u64], flush: bool) {
        let mut core = self.core.lock();
        self.latch_or_quarantine(&mut core, err);
        self.publish_view(&core);
        self.complete_job(&core, job, inputs, flush);
    }

    /// Like [`Db::fail_job`] for errors hit while still holding the core
    /// during planning (metadata-only tasks).
    fn fail_planned(&self, core: &mut DbCore, err: Error) {
        self.latch_or_quarantine(core, err);
        self.publish_view(core);
        self.complete_job(core, None, &[], false);
    }

    fn latch_or_quarantine(&self, core: &mut DbCore, err: Error) {
        match err {
            Error::Corruption(ref info) => match self.try_quarantine(core, info) {
                Ok(true) => {}
                Ok(false) => {
                    if core.bg_error.is_none() {
                        core.bg_error = Some(err.clone());
                    }
                }
                Err(e2) => {
                    if core.bg_error.is_none() {
                        core.bg_error = Some(e2);
                    }
                }
            },
            e => {
                if core.bg_error.is_none() {
                    core.bg_error = Some(e);
                }
            }
        }
    }

    /// Completion bookkeeping: release claims, bump `completed`, re-arm
    /// the work hint, and wake both the pool and any stalled writers.
    /// Must be called while holding the core lock (`_core` witnesses it):
    /// `done_cv` waiters check their predicates under the core, so
    /// notifying while holding it cannot lose a wakeup.
    fn complete_job(&self, _core: &DbCore, job: Option<u64>, inputs: &[u64], flush: bool) {
        {
            let mut st = self.scheduler.state.lock();
            if flush {
                st.flush_inflight = false;
            }
            if let Some(j) = job {
                st.release(j, inputs);
            }
            st.completed += 1;
            st.policy_idle = false;
            st.work_hint = true;
            self.scheduler.work_cv.notify_all();
        }
        self.scheduler.done_cv.notify_all();
    }

    /// Streams a sealed table out in bounded `append` chunks followed by
    /// one `sync`, instead of a single monolithic `write_file`. Each
    /// chunk holds the storage map's write lock only briefly, so
    /// concurrent foreground reads interleave with flush/compaction
    /// output — the pipelined write stage of a background job, and the
    /// main reason worker mode improves the foreground read tail. Only
    /// used off the foreground thread: the inline path keeps its single
    /// atomic write so deterministic runs stay byte-identical. The file
    /// is garbage until the final sync *and* the version edit that links
    /// it; a torn prefix is an orphan, reclaimed by `repair_db`.
    fn write_table_chunked(&self, name: &str, bytes: &[u8], class: IoClass) -> Result<()> {
        const CHUNK: usize = 256 << 10;
        // A crashed predecessor may have left an orphan at a re-allocated
        // number; appending to it would interleave two tables.
        if self.storage.exists(name) {
            self.storage.delete(name)?;
        }
        for chunk in bytes.chunks(CHUNK) {
            self.storage.append(name, chunk, class)?;
            // Hand the CPU to any foreground thread parked on the storage
            // lock (or starved for a core) between chunks: on oversubscribed
            // hosts the reader tail is bounded by how long a worker runs
            // uninterrupted, not by the chunk size alone.
            std::thread::yield_now();
        }
        self.storage.sync(name)?;
        Ok(())
    }

    /// Pins the current state for repeatable reads. The snapshot must be
    /// released with [`Db::release_snapshot`]; while held, compaction keeps
    /// every version it could observe.
    pub fn snapshot(&self) -> Snapshot {
        let mut core = self.core.lock();
        let seq = core.versions.last_sequence;
        *core.snapshots.entry(seq).or_insert(0) += 1;
        Snapshot { seq }
    }

    /// Releases a snapshot obtained from [`Db::snapshot`].
    pub fn release_snapshot(&self, snapshot: Snapshot) {
        let mut core = self.core.lock();
        if let Some(count) = core.snapshots.get_mut(&snapshot.seq) {
            *count -= 1;
            if *count == 0 {
                core.snapshots.remove(&snapshot.seq);
            }
        }
    }

    /// Point lookup as of a pinned snapshot.
    pub fn get_at(&self, key: &[u8], snapshot: &Snapshot) -> Result<Option<Vec<u8>>> {
        Ok(self
            .get_with_seq(key, Some(snapshot.seq))?
            .map(PinnedValue::into_vec))
    }

    /// Zero-copy point lookup as of a pinned snapshot.
    pub fn get_pinned_at(&self, key: &[u8], snapshot: &Snapshot) -> Result<Option<PinnedValue>> {
        self.get_with_seq(key, Some(snapshot.seq))
    }

    /// Range scan as of a pinned snapshot.
    pub fn scan_at(
        &self,
        start: &[u8],
        limit: usize,
        snapshot: &Snapshot,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_with_seq(start, limit, Some(snapshot.seq))
    }

    /// Point lookup at the latest sequence number.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.get_with_seq(key, None)?.map(PinnedValue::into_vec))
    }

    /// Zero-copy point lookup at the latest sequence number: an SSTable
    /// hit returns a handle into the cached block instead of copying the
    /// value. Copy at the boundary that needs an owned buffer.
    pub fn get_pinned(&self, key: &[u8]) -> Result<Option<PinnedValue>> {
        self.get_with_seq(key, None)
    }

    /// The shared get path. `seq: None` reads at the latest *published*
    /// sequence (the view's); holding no locks, it pins a view and serves
    /// the whole lookup from it.
    fn get_with_seq(&self, key: &[u8], seq: Option<SequenceNumber>) -> Result<Option<PinnedValue>> {
        self.policy.lock().observe_op(false);
        self.gets.fetch_add(1, Ordering::Relaxed);
        let start = self.device.clock().now();
        let mut ctx = self.trace_start(OpType::Get, start);
        let fs_before = self.device.ledger().get(TimeCategory::FileSystem);
        let _pin = ReadPin::new(&self.read_pins);
        // Quarantine-retry loop: each successful quarantine publishes a
        // shrunken version, so re-pinning the view lands the retry on the
        // surviving files. Bounded by the number of live files.
        let result = loop {
            let view = { self.view.read().clone() };
            let snapshot = seq.unwrap_or(view.seq);
            match self.get_internal(&view, key, snapshot, ctx.as_mut()) {
                Err(Error::Corruption(info)) => {
                    if !self.quarantine_corruption(&info)? {
                        break Err(Error::Corruption(info));
                    }
                }
                other => break other,
            }
        };
        let cont_t0 = if ctx.is_some() {
            self.device.clock().now()
        } else {
            0
        };
        self.charge_read_contention(start);
        let end = self.device.clock().now();
        if let Some(t) = ctx.as_mut() {
            if end > cont_t0 {
                t.span(Blame::CompactionInterference, "bg_contention", cont_t0, end);
            }
        }
        let fs_delta = self
            .device
            .ledger()
            .get(TimeCategory::FileSystem)
            .saturating_sub(fs_before);
        self.device.ledger().record(
            TimeCategory::ForegroundRead,
            end.saturating_sub(start).saturating_sub(fs_delta),
        );
        self.metrics
            .record_latency(OpType::Get, end.saturating_sub(start));
        self.trace_finish(ctx, end);
        result
    }

    fn get_internal(
        &self,
        view: &ReadView,
        key: &[u8],
        snapshot: SequenceNumber,
        mut trace: Option<&mut TraceCtx>,
    ) -> Result<Option<PinnedValue>> {
        match view.mem.get(key, snapshot) {
            LookupResult::Found(v) => return Ok(Some(PinnedValue::Inline(v))),
            LookupResult::Deleted => return Ok(None),
            LookupResult::NotFound => {}
        }
        if let Some(imm) = &view.imm {
            match imm.get(key, snapshot) {
                LookupResult::Found(v) => return Ok(Some(PinnedValue::Inline(v))),
                LookupResult::Deleted => return Ok(None),
                LookupResult::NotFound => {}
            }
        }

        // Level 0: files may overlap, and (with the tiered policy) file
        // numbers do not imply data age, so gather every covering file's
        // hit and keep the highest sequence. Frozen L0 data is reachable
        // via L1 slices and is guaranteed older than any active L0 file
        // (the LDC policy freezes oldest-first).
        let mut best: Option<(SequenceNumber, ValueType, Bytes)> = None;
        for meta in view.version.levels.first().into_iter().flatten().rev() {
            if key < meta.smallest_ukey() || key > meta.largest_ukey() {
                continue;
            }
            if let Some(hit) = self.probe_table(meta.number, key, snapshot, trace.as_deref_mut())? {
                if best.as_ref().is_none_or(|b| hit.0 > b.0) {
                    best = Some(hit);
                }
            }
        }
        if let Some((_, vt, value)) = best {
            return Ok(match vt {
                ValueType::Value => Some(PinnedValue::Block(value)),
                ValueType::Deletion => None,
            });
        }

        // Deeper levels: one candidate file per level (responsible-range
        // partition); resolve file-vs-slices by sequence number.
        for level in 1..view.version.num_levels() {
            let candidate = match candidate_file(&view.version, level, key) {
                Some(meta) => meta,
                None => continue,
            };
            let mut best: Option<(SequenceNumber, ValueType, Bytes)> = None;
            // Slices first (they are newer on average, enabling bloom skips
            // to keep this cheap), then the file itself.
            for slice in candidate.slices.iter().rev() {
                if !slice.range.contains(key) {
                    continue;
                }
                let frozen = view.version.frozen.get(&slice.source_file);
                let Some(frozen) = frozen.map(|f| f.number) else {
                    continue;
                };
                if let Some(hit) = self.probe_table(frozen, key, snapshot, trace.as_deref_mut())? {
                    if best.as_ref().is_none_or(|b| hit.0 > b.0) {
                        best = Some(hit);
                    }
                }
            }
            if key >= candidate.smallest_ukey() && key <= candidate.largest_ukey() {
                if let Some(hit) =
                    self.probe_table(candidate.number, key, snapshot, trace.as_deref_mut())?
                {
                    if best.as_ref().is_none_or(|b| hit.0 > b.0) {
                        best = Some(hit);
                    }
                }
            }
            if let Some((_, vt, value)) = best {
                return Ok(match vt {
                    ValueType::Value => Some(PinnedValue::Block(value)),
                    ValueType::Deletion => None,
                });
            }
        }
        Ok(None)
    }

    /// Bloom-checked point probe of one table file. The returned value is
    /// a zero-copy handle into the table's cached block.
    ///
    /// With tracing on, any probe that cost virtual time becomes a
    /// [`Blame::CacheMissIo`] span (cache hits and bloom skips are free in
    /// virtual time, so they produce no span), with the portion spent in
    /// transient-read backoff carved out as [`Blame::Retry`].
    fn probe_table(
        &self,
        file_number: u64,
        key: &[u8],
        snapshot: SequenceNumber,
        trace: Option<&mut TraceCtx>,
    ) -> Result<Option<(SequenceNumber, ValueType, Bytes)>> {
        let (t0, retry0) = if trace.is_some() {
            (self.device.clock().now(), self.metrics.retry_backoff_ns())
        } else {
            (0, 0)
        };
        let table = self.table(file_number)?;
        let result = if !table.may_contain(key) {
            self.bloom_skips.fetch_add(1, Ordering::Relaxed);
            Ok(None)
        } else {
            table.get(key, snapshot, IoClass::UserRead)
        };
        if let Some(t) = trace {
            let now = self.device.clock().now();
            if now > t0 {
                t.span(Blame::CacheMissIo, "table_probe", t0, now);
                t.carve_from_last(
                    Blame::Retry,
                    "retry_backoff",
                    self.metrics.retry_backoff_ns().saturating_sub(retry0),
                );
            }
        }
        result
    }

    /// Range scan: up to `limit` live entries with key >= `start`.
    pub fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_with_seq(start, limit, None)
    }

    fn scan_with_seq(
        &self,
        start: &[u8],
        limit: usize,
        seq: Option<SequenceNumber>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.policy.lock().observe_op(false);
        self.scans.fetch_add(1, Ordering::Relaxed);
        let t0 = self.device.clock().now();
        let mut ctx = self.trace_start(OpType::Scan, t0);
        let fs_before = self.device.ledger().get(TimeCategory::FileSystem);
        let _pin = ReadPin::new(&self.read_pins);

        let out = loop {
            let view = { self.view.read().clone() };
            let snapshot = seq.unwrap_or(view.seq);
            let (io_t0, retry0) = if ctx.is_some() {
                (self.device.clock().now(), self.metrics.retry_backoff_ns())
            } else {
                (0, 0)
            };
            let attempt = self.scan_collect(&view, start, limit, snapshot);
            if let Some(t) = ctx.as_mut() {
                let now = self.device.clock().now();
                if now > io_t0 {
                    t.span(Blame::CacheMissIo, "scan_io", io_t0, now);
                    t.carve_from_last(
                        Blame::Retry,
                        "retry_backoff",
                        self.metrics.retry_backoff_ns().saturating_sub(retry0),
                    );
                }
            }
            match attempt {
                Err(Error::Corruption(info)) => {
                    if !self.quarantine_corruption(&info)? {
                        break Err(Error::Corruption(info));
                    }
                }
                other => break other,
            }
        }?;

        let cont_t0 = if ctx.is_some() {
            self.device.clock().now()
        } else {
            0
        };
        self.charge_read_contention(t0);
        let end = self.device.clock().now();
        if let Some(t) = ctx.as_mut() {
            if end > cont_t0 {
                t.span(Blame::CompactionInterference, "bg_contention", cont_t0, end);
            }
        }
        let fs_delta = self
            .device
            .ledger()
            .get(TimeCategory::FileSystem)
            .saturating_sub(fs_before);
        let elapsed = end.saturating_sub(t0);
        self.device.ledger().record(
            TimeCategory::ForegroundRead,
            elapsed.saturating_sub(fs_delta),
        );
        self.metrics.record_latency(OpType::Scan, elapsed);
        self.trace_finish(ctx, end);
        Ok(out)
    }

    /// The merging-iterator body of a scan, separated out so the quarantine
    /// retry wrapper can re-run it against a re-pinned (shrunken) view.
    fn scan_collect(
        &self,
        view: &ReadView,
        start: &[u8],
        limit: usize,
        snapshot: SequenceNumber,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut children: Vec<Box<dyn InternalIterator + '_>> = Vec::new();
        children.push(Box::new(view.mem.iter()));
        if let Some(imm) = &view.imm {
            children.push(Box::new(imm.iter()));
        }
        for meta in view.version.levels.first().into_iter().flatten().rev() {
            let table = self.table(meta.number)?;
            children.push(Box::new(table.iter(IoClass::UserRead)));
        }
        for level in 1..view.version.num_levels() {
            let files = match view.version.levels.get(level) {
                Some(files) if !files.is_empty() => files.clone(),
                _ => continue,
            };
            children.push(Box::new(LevelIter::new(self, files, IoClass::UserRead)));
        }
        let mut merge = MergingIterator::new(children);
        merge.seek(&encode_internal_key(start, MAX_SEQUENCE, TYPE_FOR_SEEK));
        let mut out = Vec::with_capacity(limit.min(4096));
        let mut last_ukey: Option<Vec<u8>> = None;
        while merge.valid() && out.len() < limit {
            let ikey = merge.key();
            let (entry_seq, vt) = parse_trailer(ikey);
            let ukey = user_key(ikey);
            let visible = entry_seq <= snapshot;
            let shadowed = last_ukey.as_deref() == Some(ukey);
            if visible && !shadowed {
                last_ukey = Some(ukey.to_vec());
                if vt == ValueType::Value {
                    out.push((ukey.to_vec(), merge.value().to_vec()));
                }
            }
            merge.next();
        }
        merge.status()?;
        Ok(out)
    }

    /// Opens (or fetches from cache) the table for `file_number`.
    /// Pins physical file deletion for the returned guard's lifetime
    /// (reap defers while any pin is held). For crate-internal scans that
    /// walk the published version without the core lock — the scrubber's
    /// verify pass races background installs otherwise.
    pub(crate) fn pin_reads(&self) -> ReadPin<'_> {
        ReadPin::new(&self.read_pins)
    }

    pub(crate) fn table(&self, file_number: u64) -> Result<Arc<Table>> {
        self.tables.get_or_open(file_number, || {
            // Opening a handle reads the footer/index/filter — charge a
            // metadata op like a real `open()`.
            crate::table::open_table(
                Arc::clone(&self.storage),
                table_file_name(file_number),
                file_number,
                Arc::clone(&self.block_cache),
            )
        })
    }

    /// Drops a table file from the caches and schedules its physical
    /// delete for the next reap point (a concurrent reader's pinned view
    /// may still reference it until then).
    fn drop_table_file(&self, core: &mut DbCore, file_number: u64) {
        self.tables.remove(file_number);
        self.block_cache.evict_file(file_number);
        core.pending_deletes.push(file_number);
    }
}

impl Db {
    // ------------------------------------------------------------------
    // Checkpoints, incremental backup, replication
    // ------------------------------------------------------------------

    /// Flushes both memtables to Level 0 and rotates the WAL, so the
    /// version alone captures every acknowledged write. Public so
    /// harnesses can force a durable cut; checkpoint creation uses it as
    /// its phase 1.
    pub fn flush(&self) -> Result<()> {
        let mut core = self.wait_flush_job(self.core.lock());
        if let Some(e) = &core.bg_error {
            return Err(e.clone());
        }
        let outcome = self.flush_all(&mut core);
        if let Err(e) = &outcome {
            core.bg_error = Some(e.clone());
        }
        self.publish_view(&core);
        if let Err(e) = self.reap_pending_deletes(&mut core) {
            if core.bg_error.is_none() {
                core.bg_error = Some(e);
            }
        }
        outcome
    }

    /// Flushes the pending immutable memtable (if any), then rotates the
    /// WAL and flushes the active memtable — the write path's rotation
    /// sequence, without parking the memtable in the `imm` slot.
    fn flush_all(&self, core: &mut DbCore) -> Result<()> {
        if let Some(imm) = core.imm.take() {
            let wal = core.imm_wal_to_delete.take();
            self.flush_table(core, &imm, None)?;
            if let Some(wal) = wal {
                if self.storage.exists(&wal) {
                    self.storage.delete(&wal)?;
                }
            }
        }
        if core.mem.is_empty() {
            return Ok(());
        }
        let mut new_log_number = core.versions.new_file_number();
        while self.storage.exists(&log_file_name(new_log_number)) {
            new_log_number = core.versions.new_file_number();
        }
        let old_log = core.wal.name().to_string();
        core.wal = LogWriter::new(
            Arc::clone(&self.storage),
            log_file_name(new_log_number),
            IoClass::WalWrite,
        );
        let seed = self.options.seed ^ core.versions.next_file_number;
        let full = std::mem::replace(&mut core.mem, Arc::new(MemTable::new(seed)));
        self.flush_table(core, &full, Some(new_log_number))?;
        if old_log != log_file_name(new_log_number) && self.storage.exists(&old_log) {
            self.storage.delete(&old_log)?;
        }
        Ok(())
    }

    /// Creates online checkpoint `name`: a crash-consistent image of the
    /// store under the `ckpt-<name>@` prefix on the same storage, openable
    /// after [`backup::restore_checkpoint`] copies it out. Writers keep
    /// running during phase 2 (the bulk of the work); the image reflects
    /// exactly the writes acknowledged before the internal pin.
    pub fn checkpoint(&self, name: &str) -> Result<CheckpointReport> {
        backup::validate_name(name)?;
        self.checkpoint_to(&backup::checkpoint_prefix(name), false)
    }

    /// Starts incremental backup `name`: writes a base checkpoint under
    /// the `backup-<name>@` prefix and arms the edit-stream shipper, so
    /// every subsequent version change is appended to
    /// `backup-<name>@EDITS` (with its new SSTables linked alongside)
    /// until [`Db::backup_end`]. Restore with [`backup::restore_backup`].
    pub fn backup_begin(&self, name: &str) -> Result<CheckpointReport> {
        backup::validate_name(name)?;
        let prefix = backup::backup_prefix(name);
        if self.storage.exists(&format!("{prefix}{STREAM_FILE}")) {
            return Err(Error::InvalidArgument(format!(
                "backup {name:?} already has an edit stream \
                 (complete, or crashed mid-backup; delete its files first)"
            )));
        }
        self.checkpoint_to(&prefix, true)
    }

    /// Stops shipping to the active backup stream, returning its totals
    /// as `(edits_shipped, files_shipped, bytes_shipped)`; `None` if no
    /// stream was armed. The stream stays on storage — restore still
    /// replays everything shipped so far.
    pub fn backup_end(&self) -> Option<(u64, u64, u64)> {
        let mut core = self.core.lock();
        let stats = core
            .versions
            .disarm_shipper()
            .map(|s| (s.edits_shipped, s.files_shipped, s.bytes_shipped));
        if let Some((edits, _, _)) = stats {
            self.metrics.set_edits_shipped(edits);
        }
        stats
    }

    /// Whether an incremental backup stream is currently armed.
    pub fn shipping(&self) -> bool {
        self.core.lock().versions.shipping()
    }

    /// Progress of the armed backup stream as `(edits, files, bytes)`
    /// shipped, or `None` when no stream is armed.
    pub fn shipper_progress(&self) -> Option<(u64, u64, u64)> {
        self.core.lock().versions.shipper_stats()
    }

    /// How many backup-stream records this store has applied (nonzero
    /// only on followers / restored backups).
    pub fn replication_cursor(&self) -> u64 {
        self.core.lock().versions.replication_cursor
    }

    /// Both phases of checkpoint creation. Phase 1 runs under the core
    /// lock: flush everything, pin the resulting version (and arm the
    /// shipper, for backups, in the same critical section — no edit can
    /// slip between the base image and the stream). Phase 2 runs without
    /// the lock, under a checkpoint pin that defers physical deletion of
    /// any table it still has to link.
    fn checkpoint_to(&self, prefix: &str, arm_stream: bool) -> Result<CheckpointReport> {
        if backup::checkpoint_complete(self.storage.as_ref(), prefix) {
            return Err(Error::InvalidArgument(format!(
                "checkpoint {prefix:?} already exists"
            )));
        }
        let t0 = self.device.clock().now();
        let (version, next_file_number, last_sequence, compact_pointers, _pin) = {
            let mut core = self.wait_flush_job(self.core.lock());
            if let Some(e) = &core.bg_error {
                return Err(e.clone());
            }
            if arm_stream && core.versions.shipping() {
                return Err(Error::InvalidState(
                    "a backup stream is already armed".to_string(),
                ));
            }
            if let Err(e) = self.flush_all(&mut core) {
                core.bg_error = Some(e.clone());
                return Err(e);
            }
            self.publish_view(&core);
            if arm_stream {
                core.versions.arm_shipper(
                    Shipper::new(Arc::clone(&self.storage), prefix.to_string())
                        .with_sink(Arc::clone(&self.sink)),
                );
            }
            (
                Arc::clone(&core.versions.current),
                core.versions.next_file_number,
                core.versions.last_sequence,
                core.versions.compact_pointers.clone(),
                ReadPin::new(&self.ckpt_pins),
            )
        };
        let report = match backup::write_checkpoint_files(
            &self.storage,
            prefix,
            &version,
            next_file_number,
            last_sequence,
            &compact_pointers,
        ) {
            Ok(r) => r,
            Err(e) => {
                if arm_stream {
                    // Don't leave the primary shipping onto a dead backup.
                    self.core.lock().versions.disarm_shipper();
                }
                return Err(e);
            }
        };
        self.core.lock().stats.checkpoints += 1;
        self.metrics.record_checkpoint();
        if self.sink.enabled() {
            self.sink.record(
                Event::span(EventKind::Checkpoint, t0, self.device.clock().now())
                    .files(u32::try_from(report.files_linked).unwrap_or(u32::MAX), 0)
                    .bytes(report.bytes_linked, 0),
            );
        }
        Ok(report)
    }

    /// Applies one replicated [`VersionEdit`] from a backup stream (the
    /// read-only follower's write path). The caller must have copied any
    /// SSTables the edit adds into this store's storage first; files the
    /// edit removes are reaped like a local compaction's.
    pub fn apply_remote_edit(&self, edit: &VersionEdit) -> Result<()> {
        let t0 = self.device.clock().now();
        let mut core = self.core.lock();
        if let Some(e) = &core.bg_error {
            return Err(e.clone());
        }
        if let Err(e) = core.versions.apply_remote_edit(edit) {
            core.bg_error = Some(e.clone());
            return Err(e);
        }
        for (_, number) in &edit.deleted_files {
            // A trivial move carries the same number in deleted_files and
            // new_files (level change only) — the table is still live.
            if edit.new_files.iter().any(|(_, m)| m.number == *number) {
                continue;
            }
            self.drop_table_file(&mut core, *number);
        }
        for number in &edit.deleted_frozen {
            self.drop_table_file(&mut core, *number);
        }
        core.stats.edits_applied += 1;
        self.publish_view(&core);
        if let Err(e) = self.reap_pending_deletes(&mut core) {
            if core.bg_error.is_none() {
                core.bg_error = Some(e);
            }
        }
        self.refresh_level_gauges(&core.versions.current);
        self.metrics.record_repl_apply();
        if self.sink.enabled() {
            self.sink.record(
                Event::span(EventKind::ReplApply, t0, self.device.clock().now())
                    .files(edit.new_files.len() as u32, 0)
                    .bytes(core.versions.replication_cursor, 0),
            );
        }
        Ok(())
    }
}

/// The single file at `level` whose responsible range covers `key`:
/// the first file with `largest >= key`, or the last file (whose range
/// extends to +inf) if none.
fn candidate_file(version: &Version, level: usize, key: &[u8]) -> Option<FileMeta> {
    let files = version.levels.get(level)?;
    if files.is_empty() {
        return None;
    }
    let idx = files.partition_point(|f| f.largest_ukey() < key);
    let meta = files.get(idx).or_else(|| files.last())?;
    Some(meta.clone())
}

impl Db {
    // ------------------------------------------------------------------
    // Flush & compaction execution
    // ------------------------------------------------------------------

    /// Writes the memtable out as a Level-0 SSTable and records `log_number`
    /// as the new WAL.
    fn flush_table(
        &self,
        core: &mut DbCore,
        mem: &MemTable,
        log_number: Option<u64>,
    ) -> Result<()> {
        let t0 = self.device.clock().now();
        let fs_before = self.device.ledger().get(TimeCategory::FileSystem);
        if !mem.is_empty() {
            let input_bytes = mem.approximate_bytes() as u64;
            let number = core.versions.new_file_number();
            let mut builder = TableBuilder::new(
                self.options.block_bytes,
                self.options.block_restart_interval,
                self.options.bloom_bits_per_key,
            );
            let mut it = mem.iter();
            it.seek_to_first();
            while it.valid() {
                builder.add(it.key(), it.value());
                it.next();
            }
            let finished = builder.finish();
            let write_start = self.device.clock().now();
            self.storage.write_file(
                &table_file_name(number),
                &finished.bytes,
                IoClass::FlushWrite,
            )?;
            let write_nanos = self.device.clock().now() - write_start;
            let output_bytes = finished.bytes.len() as u64;
            let meta = FileMeta {
                number,
                size: output_bytes,
                smallest: finished.smallest,
                largest: finished.largest,
                slices: Vec::new(),
            };
            core.versions.log_and_apply(VersionEdit {
                log_number,
                new_files: vec![(0, meta)],
                ..Default::default()
            })?;
            core.stats.flushes += 1;
            if self.sink.enabled() {
                let end = self.device.clock().now();
                let mut ev = Event::span(EventKind::Flush, t0, end)
                    .files(0, 1)
                    .bytes(input_bytes, output_bytes)
                    .phases(0, 0, write_nanos);
                ev.output_level = Some(0);
                self.sink.record(ev);
            }
            self.refresh_level_gauges(&core.versions.current);
        } else if log_number.is_some() {
            core.versions.log_and_apply(VersionEdit {
                log_number,
                ..Default::default()
            })?;
        }
        self.record_compaction_time(t0, fs_before);
        Ok(())
    }

    /// Executes one compaction task.
    fn execute(&self, core: &mut DbCore, task: CompactionTask) -> Result<()> {
        let t0 = self.device.clock().now();
        let fs_before = self.device.ledger().get(TimeCategory::FileSystem);
        // Input descriptors must be captured before the task consumes the
        // files they describe.
        let described = if self.sink.enabled() {
            Some(self.describe_task(&core.versions.current, &task))
        } else {
            None
        };
        core.trace = ExecTrace::default();
        let result = match task {
            CompactionTask::Merge {
                level,
                upper,
                lower,
            } => self.execute_merge(core, level, &upper, &lower),
            CompactionTask::TrivialMove { level, file } => {
                self.execute_trivial_move(core, level, file)
            }
            CompactionTask::Link { level, file } => self.execute_link(core, level, file),
            CompactionTask::LdcMerge { level, file } => self.execute_ldc_merge(core, level, file),
            CompactionTask::TieredMerge { files } => self.execute_tiered_merge(core, &files),
        };
        self.record_compaction_time(t0, fs_before);
        if let (Some(desc), Ok(())) = (described, &result) {
            let end = self.device.clock().now();
            let elapsed = end - t0;
            // The in-memory merge does not advance the virtual clock, so
            // its phase is 0; everything that is not output writing is
            // input reading (plus metadata, which is negligible).
            let write = core.trace.write_nanos.min(elapsed);
            self.sink.record(
                Event::span(desc.kind, t0, end)
                    .levels(desc.level, desc.output_level)
                    .files(desc.input_files, core.trace.output_files)
                    .bytes(desc.input_bytes, core.trace.output_bytes)
                    .phases(elapsed - write, 0, write),
            );
        }
        self.refresh_level_gauges(&core.versions.current);
        result
    }

    /// What a task is about to do, captured while its inputs still exist.
    fn describe_task(&self, version: &Version, task: &CompactionTask) -> TaskDescriptor {
        let size_of = |number: u64| version.find_file(number).map(|(_, m)| m.size).unwrap_or(0);
        match task {
            CompactionTask::Merge {
                level,
                upper,
                lower,
            } => TaskDescriptor {
                kind: EventKind::UdcMerge,
                level: *level as u32,
                output_level: (*level + 1) as u32,
                input_files: (upper.len() + lower.len()) as u32,
                input_bytes: upper.iter().chain(lower).map(|&n| size_of(n)).sum(),
            },
            CompactionTask::TrivialMove { level, file } => TaskDescriptor {
                kind: EventKind::TrivialMove,
                level: *level as u32,
                output_level: (*level + 1) as u32,
                input_files: 1,
                input_bytes: size_of(*file),
            },
            CompactionTask::Link { level, file } => TaskDescriptor {
                kind: EventKind::LdcLink,
                level: *level as u32,
                output_level: (*level + 1) as u32,
                input_files: 1,
                input_bytes: size_of(*file),
            },
            CompactionTask::LdcMerge { level, file } => {
                let (slices, slice_bytes) = version
                    .find_file(*file)
                    .map(|(_, m)| {
                        (
                            m.slices.len() as u32,
                            m.slices.iter().map(|s| s.approx_bytes).sum::<u64>(),
                        )
                    })
                    .unwrap_or((0, 0));
                TaskDescriptor {
                    kind: EventKind::LdcMerge,
                    level: *level as u32,
                    output_level: *level as u32,
                    input_files: 1 + slices,
                    input_bytes: size_of(*file) + slice_bytes,
                }
            }
            // The size-tiered baseline's intra-L0 merge is reported as a
            // (generic) merge event at level 0.
            CompactionTask::TieredMerge { files } => TaskDescriptor {
                kind: EventKind::UdcMerge,
                level: 0,
                output_level: 0,
                input_files: files.len() as u32,
                input_bytes: files.iter().map(|&n| size_of(n)).sum(),
            },
        }
    }

    /// Recomputes the per-level gauges from `version`.
    fn refresh_level_gauges(&self, version: &Version) {
        let scores = crate::compaction::level_scores(version, &self.options);
        let gauges = (0..version.num_levels())
            .map(|level| LevelGauge {
                files: version.level_files(level) as u64,
                bytes: version.level_bytes(level),
                score: scores[level],
            })
            .collect();
        self.metrics.set_level_gauges(gauges);
    }

    fn record_compaction_time(&self, t0: Nanos, fs_before: Nanos) {
        let fs_delta = self
            .device
            .ledger()
            .get(TimeCategory::FileSystem)
            .saturating_sub(fs_before);
        let elapsed = self.device.clock().now().saturating_sub(t0);
        self.device.ledger().record(
            TimeCategory::CompactionWork,
            elapsed.saturating_sub(fs_delta),
        );
    }

    /// Classic UDC merge of `upper` (at `level`) with `lower` (at `level+1`).
    fn execute_merge(
        &self,
        core: &mut DbCore,
        level: usize,
        upper: &[u64],
        lower: &[u64],
    ) -> Result<()> {
        let output_level = level + 1;
        let mut inputs: Vec<Box<dyn InternalIterator>> = Vec::new();
        for &number in upper.iter().chain(lower) {
            let (_, meta) = core
                .versions
                .current
                .find_file(number)
                .ok_or_else(|| Error::InvalidState(format!("merge input {number} missing")))?;
            if !meta.slices.is_empty() {
                return Err(Error::InvalidState(format!(
                    "merge input {number} carries slice links; use LdcMerge"
                )));
            }
            let table = self.table(number)?;
            inputs.push(Box::new(table.iter(IoClass::CompactionRead)));
        }
        let drop_tombstones = output_level == self.options.max_levels - 1;
        let outputs = self.merge_to_tables(core, inputs, drop_tombstones)?;

        let mut edit = VersionEdit::default();
        for &n in upper {
            edit.deleted_files.push((level as u32, n));
        }
        for &n in lower {
            edit.deleted_files.push(((level + 1) as u32, n));
        }
        for meta in &outputs {
            edit.new_files.push((output_level as u32, meta.clone()));
        }
        if level >= 1 {
            if let Some(hi) = upper
                .iter()
                .filter_map(|n| core.versions.current.find_file(*n))
                .map(|(_, m)| m.largest_ukey().to_vec())
                .max()
            {
                edit.compact_pointers.push((level as u32, hi));
            }
        }
        core.versions.log_and_apply(edit)?;
        for &n in upper.iter().chain(lower) {
            self.drop_table_file(core, n);
        }
        core.stats.merges += 1;
        Ok(())
    }

    /// Metadata-only move of `file` from `level` to `level + 1`.
    fn execute_trivial_move(&self, core: &mut DbCore, level: usize, file: u64) -> Result<()> {
        let (found_level, meta) = core
            .versions
            .current
            .find_file(file)
            .ok_or_else(|| Error::InvalidState(format!("move of missing file {file}")))?;
        if found_level != level {
            return Err(Error::InvalidState(format!(
                "move of file {file}: expected level {level}, found {found_level}"
            )));
        }
        if !meta.slices.is_empty() {
            return Err(Error::InvalidState(format!(
                "cannot trivially move file {file} with slice links"
            )));
        }
        let meta = meta.clone();
        let mut edit = VersionEdit {
            deleted_files: vec![(level as u32, file)],
            new_files: vec![((level + 1) as u32, meta.clone())],
            ..Default::default()
        };
        if level >= 1 {
            edit.compact_pointers
                .push((level as u32, meta.largest_ukey().to_vec()));
        }
        core.versions.log_and_apply(edit)?;
        core.stats.trivial_moves += 1;
        Ok(())
    }

    /// LDC link phase (Algorithm 1, `link`): freeze `file` and attach one
    /// slice per responsible range of the overlapping `level+1` files.
    fn execute_link(&self, core: &mut DbCore, level: usize, file: u64) -> Result<()> {
        let (found_level, meta) = core
            .versions
            .current
            .find_file(file)
            .ok_or_else(|| Error::InvalidState(format!("link of missing file {file}")))?;
        if found_level != level {
            return Err(Error::InvalidState(format!(
                "link of file {file}: expected level {level}, found {found_level}"
            )));
        }
        if !meta.slices.is_empty() {
            return Err(Error::InvalidState(format!(
                "file {file} has slice links and cannot be linked down"
            )));
        }
        let meta = meta.clone();
        let (lo, hi) = (meta.smallest_ukey().to_vec(), meta.largest_ukey().to_vec());
        let lower = &core.versions.current.levels[level + 1];
        if lower.is_empty() {
            // Nothing to link against; degenerate to a trivial move.
            return self.execute_trivial_move(core, level, file);
        }
        // Responsible ranges partition the key space: file j owns
        // (prev.largest, largest_j]; first extends to -inf, last to +inf.
        let mut targets: Vec<(u64, KeyRange)> = Vec::new();
        for (i, lf) in lower.iter().enumerate() {
            let range_lo = if i == 0 {
                Vec::new()
            } else {
                successor(lower[i - 1].largest_ukey())
            };
            let range_hi = if i + 1 == lower.len() {
                None
            } else {
                Some(successor(lf.largest_ukey()))
            };
            let range = KeyRange {
                lo: range_lo,
                hi: range_hi,
            };
            if range.overlaps(&lo, &hi) {
                targets.push((lf.number, range));
            }
        }
        debug_assert!(!targets.is_empty(), "partition must cover [lo, hi]");
        let mut edit = VersionEdit {
            frozen_files: vec![(level as u32, file)],
            ..Default::default()
        };
        let approx_bytes = meta.size / targets.len().max(1) as u64;
        for (target, range) in targets {
            let link_seq = core.versions.new_link_seq();
            edit.new_links.push((
                target,
                SliceLink {
                    source_file: file,
                    range,
                    link_seq,
                    approx_bytes,
                },
            ));
        }
        if level >= 1 {
            edit.compact_pointers.push((level as u32, hi));
        }
        core.versions.log_and_apply(edit)?;
        core.stats.links += 1;
        Ok(())
    }

    /// LDC merge phase (Algorithm 1, `merge`): rewrite `file` together with
    /// all linked slices; outputs stay at `level`; fully consumed frozen
    /// files are reclaimed.
    fn execute_ldc_merge(&self, core: &mut DbCore, level: usize, file: u64) -> Result<()> {
        let (found_level, meta) = core
            .versions
            .current
            .find_file(file)
            .ok_or_else(|| Error::InvalidState(format!("ldc-merge of missing file {file}")))?;
        if found_level != level {
            return Err(Error::InvalidState(format!(
                "ldc-merge of file {file}: expected level {level}, found {found_level}"
            )));
        }
        let meta = meta.clone();
        if meta.slices.is_empty() {
            return Err(Error::InvalidState(format!(
                "ldc-merge of file {file} with no slices"
            )));
        }
        let mut inputs: Vec<Box<dyn InternalIterator>> = Vec::new();
        let table = self.table(file)?;
        inputs.push(Box::new(table.iter(IoClass::CompactionRead)));
        for slice in &meta.slices {
            let frozen_table = self.table(slice.source_file)?;
            inputs.push(Box::new(
                frozen_table.range_iter(slice.range.clone(), IoClass::CompactionRead),
            ));
        }
        let drop_tombstones = level == self.options.max_levels - 1;
        let outputs = self.merge_to_tables(core, inputs, drop_tombstones)?;

        let mut edit = VersionEdit {
            deleted_files: vec![(level as u32, file)],
            ..Default::default()
        };
        for out in &outputs {
            edit.new_files.push((level as u32, out.clone()));
        }
        // Reference counting: sources whose last live link was on this file
        // are reclaimed (Algorithm 1, lines 18-22).
        let mut remaining: HashMap<u64, u32> = HashMap::new();
        for (number, frozen) in &core.versions.current.frozen {
            remaining.insert(*number, frozen.refcount);
        }
        let mut reclaimed: Vec<u64> = Vec::new();
        for slice in &meta.slices {
            let count = remaining.get_mut(&slice.source_file).ok_or_else(|| {
                Error::InvalidState(format!("slice source {} is not frozen", slice.source_file))
            })?;
            *count = count.saturating_sub(1);
            if *count == 0 {
                reclaimed.push(slice.source_file);
            }
        }
        reclaimed.sort_unstable();
        reclaimed.dedup();
        edit.deleted_frozen.clone_from(&reclaimed);
        core.versions.log_and_apply(edit)?;
        self.drop_table_file(core, file);
        for n in reclaimed {
            self.drop_table_file(core, n);
        }
        core.stats.ldc_merges += 1;
        Ok(())
    }

    /// Size-tiered merge (lazy baseline): combine several Level-0 runs into
    /// one bigger Level-0 run. No tombstone dropping (deeper levels may
    /// hold older versions) and no output splitting (tiers grow).
    fn execute_tiered_merge(&self, core: &mut DbCore, files: &[u64]) -> Result<()> {
        let mut inputs: Vec<Box<dyn InternalIterator>> = Vec::new();
        for &number in files {
            let (level, meta) = core
                .versions
                .current
                .find_file(number)
                .ok_or_else(|| Error::InvalidState(format!("tiered input {number} missing")))?;
            if level != 0 {
                return Err(Error::InvalidState(format!(
                    "tiered merge input {number} is at level {level}, not 0"
                )));
            }
            if !meta.slices.is_empty() {
                return Err(Error::InvalidState(format!(
                    "tiered merge input {number} carries slice links"
                )));
            }
            let table = self.table(number)?;
            inputs.push(Box::new(table.iter(IoClass::CompactionRead)));
        }
        let outputs = self.merge_stream(core, inputs, false, false)?;
        let mut edit = VersionEdit::default();
        for &n in files {
            edit.deleted_files.push((0, n));
        }
        for meta in &outputs {
            edit.new_files.push((0, meta.clone()));
        }
        core.versions.log_and_apply(edit)?;
        for &n in files {
            self.drop_table_file(core, n);
        }
        core.stats.merges += 1;
        Ok(())
    }

    /// Merge-sorts `inputs`, deduplicates by user key (newest wins), and
    /// writes output tables cut at the target file size (only at user-key
    /// boundaries, so level files never share a user key).
    fn merge_to_tables(
        &self,
        core: &mut DbCore,
        inputs: Vec<Box<dyn InternalIterator>>,
        drop_tombstones: bool,
    ) -> Result<Vec<FileMeta>> {
        self.merge_stream(core, inputs, drop_tombstones, true)
    }

    /// Core merge loop; `split_outputs` controls whether files are cut at
    /// the target SSTable size (leveled) or grow unbounded (tiered).
    fn merge_stream(
        &self,
        core: &mut DbCore,
        inputs: Vec<Box<dyn InternalIterator>>,
        drop_tombstones: bool,
        split_outputs: bool,
    ) -> Result<Vec<FileMeta>> {
        let smallest_snapshot = snapshot_floor(core);
        let mut outputs = Vec::new();
        self.merge_entries(
            inputs,
            drop_tombstones,
            split_outputs,
            smallest_snapshot,
            &mut |finished| {
                let meta = self.write_output_table(core, finished)?;
                outputs.push(meta);
                Ok(())
            },
        )?;
        Ok(outputs)
    }

    /// [`Db::merge_stream`] for background workers: no core lock is held
    /// across the merge; output tables go through a brief core lock for
    /// the file number, then [`Db::write_table_chunked`].
    fn merge_stream_detached(
        &self,
        inputs: Vec<Box<dyn InternalIterator>>,
        drop_tombstones: bool,
        split_outputs: bool,
        smallest_snapshot: SequenceNumber,
    ) -> Result<UnitOutput> {
        let mut out = UnitOutput::default();
        self.merge_entries(
            inputs,
            drop_tombstones,
            split_outputs,
            smallest_snapshot,
            &mut |finished| {
                let number = self.core.lock().versions.new_file_number();
                let t0 = self.device.clock().now();
                self.write_table_chunked(
                    &table_file_name(number),
                    &finished.bytes,
                    IoClass::CompactionWrite,
                )?;
                out.write_nanos += self.device.clock().now().saturating_sub(t0);
                out.output_files += 1;
                out.output_bytes += finished.bytes.len() as u64;
                out.metas.push(FileMeta {
                    number,
                    size: finished.bytes.len() as u64,
                    smallest: finished.smallest,
                    largest: finished.largest,
                    slices: Vec::new(),
                });
                Ok(())
            },
        )?;
        Ok(out)
    }

    /// The merge loop proper, independent of where outputs land. Within
    /// one key range the kept-entry decisions depend only on the input
    /// stream and `smallest_snapshot` (the shadowing state `last_kept_seq`
    /// resets at every user-key boundary and file cuts happen only there),
    /// which is what makes per-range subcompactions exactly equivalent to
    /// an unsplit merge.
    fn merge_entries(
        &self,
        inputs: Vec<Box<dyn InternalIterator>>,
        drop_tombstones: bool,
        split_outputs: bool,
        smallest_snapshot: SequenceNumber,
        emit: &mut dyn FnMut(crate::table::FinishedTable) -> Result<()>,
    ) -> Result<()> {
        // Versions above `smallest_snapshot` are never dropped: the oldest
        // live snapshot (or the sequence current at planning time when
        // none is held) can still observe them.
        let mut merge = MergingIterator::new(inputs);
        merge.seek_to_first();
        let mut builder: Option<TableBuilder> = None;
        let mut last_ukey: Option<Vec<u8>> = None;
        // Sequence of the last kept entry for the current user key; MAX
        // means "none kept yet".
        let mut last_kept_seq = SequenceNumber::MAX;
        while merge.valid() {
            let ikey = merge.key();
            let ukey = user_key(ikey);
            let changed_ukey = last_ukey.as_deref() != Some(ukey);
            if changed_ukey {
                last_ukey = Some(ukey.to_vec());
                last_kept_seq = SequenceNumber::MAX;
                // Cut the output file at user-key boundaries.
                if let Some(b) = builder.take() {
                    if split_outputs && b.estimated_file_bytes() >= self.options.sstable_bytes {
                        emit(b.finish())?;
                    } else {
                        builder = Some(b);
                    }
                }
            }
            // LevelDB's snapshot-aware shadowing rule: an entry is dead if
            // a newer entry for the same user key was already kept at a
            // sequence every live snapshot can see.
            let (seq, vt) = parse_trailer(ikey);
            let shadowed =
                last_kept_seq != SequenceNumber::MAX && last_kept_seq <= smallest_snapshot;
            let drop_tombstone = vt == ValueType::Deletion
                && drop_tombstones
                && seq <= smallest_snapshot
                && last_kept_seq == SequenceNumber::MAX;
            if !shadowed && !drop_tombstone {
                let b = builder.get_or_insert_with(|| {
                    TableBuilder::new(
                        self.options.block_bytes,
                        self.options.block_restart_interval,
                        self.options.bloom_bits_per_key,
                    )
                });
                b.add(ikey, merge.value());
                last_kept_seq = seq;
            }
            merge.next();
        }
        merge.status()?;
        if let Some(b) = builder {
            if !b.is_empty() {
                emit(b.finish())?;
            }
        }
        Ok(())
    }

    fn write_output_table(
        &self,
        core: &mut DbCore,
        finished: crate::table::FinishedTable,
    ) -> Result<FileMeta> {
        let number = core.versions.new_file_number();
        let t0 = self.device.clock().now();
        self.storage.write_file(
            &table_file_name(number),
            &finished.bytes,
            IoClass::CompactionWrite,
        )?;
        core.trace.write_nanos += self.device.clock().now() - t0;
        core.trace.output_files += 1;
        core.trace.output_bytes += finished.bytes.len() as u64;
        Ok(FileMeta {
            number,
            size: finished.bytes.len() as u64,
            smallest: finished.smallest,
            largest: finished.largest,
            slices: Vec::new(),
        })
    }
}

/// A unit of background work claimed by [`Db::plan_job`] under the core
/// lock and executed without it.
enum BgJob {
    /// Flush the immutable memtable. The memtable stays in `core.imm`
    /// (readers keep seeing it) until the L0 table installs.
    Flush {
        imm: Arc<MemTable>,
        wal: Option<String>,
    },
    /// A claimed compaction with conflict-tracked key ranges.
    Compact {
        job: u64,
        t0: Nanos,
        desc: Option<TaskDescriptor>,
        inputs: Vec<u64>,
        plan: PlannedCompaction,
    },
}

/// The run-phase recipe for a claimed compaction: input metadata snapshot
/// plus the merge spec, fixed at plan time.
enum PlannedCompaction {
    Merge {
        level: usize,
        upper: Vec<FileMeta>,
        lower: Vec<FileMeta>,
        spec: Arc<MergeUnitSpec>,
    },
    Ldc {
        level: usize,
        meta: FileMeta,
        drop_tombstones: bool,
        smallest_snapshot: SequenceNumber,
    },
    Tiered {
        metas: Vec<FileMeta>,
        spec: Arc<MergeUnitSpec>,
    },
}

/// What [`Db::install_compaction`] needs to build the atomic
/// `VersionEdit` once the run phase produced its outputs.
enum CompactInstall {
    Merge {
        level: usize,
        upper: Vec<FileMeta>,
        lower: Vec<FileMeta>,
    },
    Ldc {
        level: usize,
        meta: FileMeta,
    },
    Tiered {
        metas: Vec<FileMeta>,
    },
}

/// Clones the metadata for `numbers` out of the current version; `None`
/// if any has vanished (a stale pick racing a concurrent install).
fn resolve_metas(core: &DbCore, numbers: &[u64]) -> Option<Vec<FileMeta>> {
    numbers
        .iter()
        .map(|&n| core.versions.current.find_file(n).map(|(_, m)| m.clone()))
        .collect()
}

/// The closed user-key span covered by `metas`.
fn key_span<'a>(metas: impl Iterator<Item = &'a FileMeta>) -> Option<(Vec<u8>, Vec<u8>)> {
    let mut span: Option<(Vec<u8>, Vec<u8>)> = None;
    for m in metas {
        let (lo, hi) =
            span.get_or_insert_with(|| (m.smallest_ukey().to_vec(), m.largest_ukey().to_vec()));
        if m.smallest_ukey() < lo.as_slice() {
            *lo = m.smallest_ukey().to_vec();
        }
        if m.largest_ukey() > hi.as_slice() {
            *hi = m.largest_ukey().to_vec();
        }
    }
    span
}

/// The oldest sequence any live snapshot can observe (or the current
/// sequence when none is held). Captured at plan time, this stays a safe
/// lower bound for the whole job: new snapshots always pin a sequence
/// `>=` the one current when they were taken.
fn snapshot_floor(core: &DbCore) -> SequenceNumber {
    core.snapshots
        .keys()
        .next()
        .copied()
        .unwrap_or(core.versions.last_sequence)
}

/// Carves a merge's key space into up to `max` disjoint subcompaction
/// ranges, cutting only at input-table smallest-key boundaries. Every
/// input entry falls in exactly one range, and because the merge loop's
/// shadowing state resets at user-key boundaries (and smallest keys *are*
/// user-key boundaries), merging the ranges independently keeps exactly
/// the entries an unsplit merge would. Returns `vec![None]` (one
/// unrestricted unit) when there is nothing to split on.
fn split_merge_ranges(upper: &[FileMeta], lower: &[FileMeta], max: usize) -> Vec<Option<KeyRange>> {
    let mut bounds: Vec<Vec<u8>> = upper
        .iter()
        .chain(lower)
        .map(|m| m.smallest_ukey().to_vec())
        .collect();
    bounds.sort();
    bounds.dedup();
    // The global minimum is not a cut — everything below the first cut
    // already belongs to unit 0.
    if !bounds.is_empty() {
        bounds.remove(0);
    }
    let units = max.min(bounds.len() + 1);
    if units <= 1 {
        return vec![None];
    }
    let mut cuts: Vec<Vec<u8>> = Vec::with_capacity(units - 1);
    for i in 1..units {
        // Evenly spread, strictly increasing because `bounds` is strictly
        // sorted and `i * len / units` is strictly monotone for len >= units-1.
        if let Some(cut) = bounds.get(i * bounds.len() / units) {
            cuts.push(cut.clone());
        }
    }
    let mut ranges = Vec::with_capacity(units);
    let mut lo: Vec<u8> = Vec::new(); // empty = -inf
    for cut in &cuts {
        ranges.push(Some(KeyRange {
            lo: std::mem::take(&mut lo),
            hi: Some(cut.clone()),
        }));
        lo = cut.clone();
    }
    ranges.push(Some(KeyRange { lo, hi: None }));
    ranges
}

/// A pinned read point; obtain via [`Db::snapshot`] and return via
/// [`Db::release_snapshot`].
#[derive(Debug)]
pub struct Snapshot {
    seq: SequenceNumber,
}

impl Snapshot {
    /// The pinned sequence number.
    pub fn sequence(&self) -> SequenceNumber {
        self.seq
    }
}

/// The smallest user key strictly greater than `key`.
fn successor(key: &[u8]) -> Vec<u8> {
    let mut s = key.to_vec();
    s.push(0);
    s
}

/// Lazily walks one level's files in key order, merging each file with its
/// slice links (the LDC read path for scans). Holds the file list it was
/// constructed with (a pinned view's), so a concurrent compaction cannot
/// change what it iterates.
struct LevelIter<'a> {
    db: &'a Db,
    files: Vec<FileMeta>,
    class: IoClass,
    idx: usize,
    cur: Option<MergingIterator<'static>>,
    error: Option<Error>,
}

impl<'a> LevelIter<'a> {
    fn new(db: &'a Db, files: Vec<FileMeta>, class: IoClass) -> Self {
        Self {
            db,
            files,
            class,
            idx: 0,
            cur: None,
            error: None,
        }
    }

    fn open_current(&mut self) {
        self.cur = None;
        let Some(meta) = self.files.get(self.idx) else {
            return;
        };
        let build = (|| -> Result<MergingIterator<'static>> {
            let mut children: Vec<Box<dyn InternalIterator + 'static>> = Vec::new();
            let table = self.db.table(meta.number)?;
            children.push(Box::new(table.iter(self.class)));
            for slice in &meta.slices {
                let frozen = self.db.table(slice.source_file)?;
                children.push(Box::new(frozen.range_iter(slice.range.clone(), self.class)));
            }
            Ok(MergingIterator::new(children))
        })();
        match build {
            Ok(m) => self.cur = Some(m),
            Err(e) => self.error = Some(e),
        }
    }

    fn advance_until_valid(&mut self) {
        loop {
            if self.error.is_some() {
                return;
            }
            match &self.cur {
                Some(m) if m.valid() => return,
                _ => {}
            }
            self.idx += 1;
            if self.idx >= self.files.len() {
                self.cur = None;
                return;
            }
            self.open_current();
            if let Some(m) = self.cur.as_mut() {
                m.seek_to_first();
            }
        }
    }
}

impl InternalIterator for LevelIter<'_> {
    fn valid(&self) -> bool {
        self.error.is_none() && self.cur.as_ref().map(|m| m.valid()).unwrap_or(false)
    }

    fn seek_to_first(&mut self) {
        self.idx = 0;
        self.open_current();
        if let Some(m) = self.cur.as_mut() {
            m.seek_to_first();
        }
        self.advance_until_valid();
    }

    fn seek(&mut self, target: &[u8]) {
        let ukey = user_key(target);
        let mut idx = self.files.partition_point(|f| f.largest_ukey() < ukey);
        if idx >= self.files.len() {
            // The last file's slices may extend past its largest key.
            if self
                .files
                .last()
                .map(|f| f.slices.iter().any(|s| s.range.hi.is_none()))
                .unwrap_or(false)
            {
                idx = self.files.len() - 1;
            } else {
                self.cur = None;
                self.idx = self.files.len();
                return;
            }
        }
        self.idx = idx;
        self.open_current();
        if let Some(m) = self.cur.as_mut() {
            m.seek(target);
        }
        self.advance_until_valid();
    }

    fn next(&mut self) {
        if let Some(m) = self.cur.as_mut() {
            if m.valid() {
                m.next();
            }
        }
        self.advance_until_valid();
    }

    fn key(&self) -> &[u8] {
        // Contract: only called while `valid()`; empty when misused.
        self.cur.as_ref().map(|m| m.key()).unwrap_or_default()
    }

    fn value(&self) -> &[u8] {
        self.cur.as_ref().map(|m| m.value()).unwrap_or_default()
    }

    fn status(&self) -> Result<()> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        if let Some(m) = &self.cur {
            m.status()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::UdcPolicy;
    use ldc_ssd::{MemStorage, SsdConfig};

    fn open_db() -> Db {
        let device = ldc_ssd::SsdDevice::new(SsdConfig::default());
        let storage = MemStorage::new(device);
        Db::open(
            storage,
            Options::small_for_tests(),
            Box::new(UdcPolicy::new()),
        )
        .unwrap()
    }

    fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key{i:08}").into_bytes(),
            format!("value-{i:08}-{}", "x".repeat(64)).into_bytes(),
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let db = open_db();
        db.put(b"hello", b"world").unwrap();
        assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
        assert_eq!(db.get(b"absent").unwrap(), None);
    }

    #[test]
    fn overwrites_and_deletes() {
        let db = open_db();
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        db.put(b"k", b"v3").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v3".to_vec()));
    }

    #[test]
    fn batch_is_atomic_and_ordered() {
        let db = open_db();
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1");
        batch.put(b"b", b"2");
        batch.delete(b"a");
        db.write(batch).unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(db.stats().writes, 3);
    }

    #[test]
    fn data_survives_flushes_and_compactions() {
        let db = open_db();
        let n = 3000u64;
        for i in 0..n {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        let stats = db.stats();
        assert!(stats.flushes > 0, "memtable must have rotated");
        assert!(
            stats.merges + stats.trivial_moves > 0,
            "compactions must have run"
        );
        // Spot-check across the keyspace.
        for i in (0..n).step_by(97) {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v), "key {i} lost");
        }
        db.version().check_invariants().unwrap();
    }

    #[test]
    fn overwritten_values_survive_compaction() {
        let db = open_db();
        for round in 0..4u64 {
            for i in 0..800u64 {
                let (k, _) = kv(i);
                db.put(&k, format!("round{round}").as_bytes()).unwrap();
            }
        }
        for i in (0..800).step_by(53) {
            let (k, _) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(b"round3".to_vec()));
        }
    }

    #[test]
    fn deletes_survive_compaction() {
        let db = open_db();
        for i in 0..1500u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        for i in (0..1500).step_by(2) {
            let (k, _) = kv(i);
            db.delete(&k).unwrap();
        }
        // Push more data to force tombstones through compactions.
        for i in 2000..3500u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        for i in (0..1500u64).step_by(100) {
            let (k, v) = kv(i);
            let got = db.get(&k).unwrap();
            if i % 2 == 0 {
                assert_eq!(got, None, "deleted key {i} resurrected");
            } else {
                assert_eq!(got, Some(v));
            }
        }
    }

    #[test]
    fn scan_returns_sorted_live_entries() {
        let db = open_db();
        for i in 0..500u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.delete(&kv(102).0).unwrap();
        let results = db.scan(&kv(100).0, 10).unwrap();
        assert_eq!(results.len(), 10);
        assert_eq!(results[0].0, kv(100).0);
        assert_eq!(results[1].0, kv(101).0);
        // 102 deleted -> 103 next.
        assert_eq!(results[2].0, kv(103).0);
        for w in results.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn scan_spans_levels_after_compaction() {
        let db = open_db();
        for i in 0..4000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        let results = db.scan(&kv(1000).0, 100).unwrap();
        assert_eq!(results.len(), 100);
        for (j, (k, v)) in results.iter().enumerate() {
            let (ek, ev) = kv(1000 + j as u64);
            assert_eq!(k, &ek);
            assert_eq!(v, &ev);
        }
    }

    #[test]
    fn scan_from_before_and_after_keyspace() {
        let db = open_db();
        for i in 0..100u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        let from_start = db.scan(b"", 5).unwrap();
        assert_eq!(from_start.len(), 5);
        assert_eq!(from_start[0].0, kv(0).0);
        let past_end = db.scan(b"zzzz", 5).unwrap();
        assert!(past_end.is_empty());
    }

    #[test]
    fn reopen_recovers_flushed_and_walled_data() {
        let device = ldc_ssd::SsdDevice::new(SsdConfig::default());
        let storage = MemStorage::new(device);
        let n = 2500u64;
        {
            let db = Db::open(
                storage.clone(),
                Options::small_for_tests(),
                Box::new(UdcPolicy::new()),
            )
            .unwrap();
            for i in 0..n {
                let (k, v) = kv(i);
                db.put(&k, &v).unwrap();
            }
            db.delete(&kv(7).0).unwrap();
        } // dropped without explicit shutdown: WAL + manifest must suffice
        let db = Db::open(
            storage,
            Options::small_for_tests(),
            Box::new(UdcPolicy::new()),
        )
        .unwrap();
        for i in (0..n).step_by(111) {
            let (k, v) = kv(i);
            let expect = if i == 7 { None } else { Some(v) };
            assert_eq!(db.get(&k).unwrap(), expect, "key {i} after recovery");
        }
        db.version().check_invariants().unwrap();
    }

    #[test]
    fn io_classes_are_populated() {
        let db = open_db();
        for i in 0..2000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        for i in 0..50 {
            let (k, _) = kv(i);
            db.get(&k).unwrap();
        }
        let io = db.device().io_stats();
        assert!(io.write_bytes_for(IoClass::WalWrite) > 0);
        assert!(io.write_bytes_for(IoClass::FlushWrite) > 0);
        assert!(io.compaction_read_bytes() > 0);
        assert!(io.compaction_write_bytes() > 0);
        assert!(io.read_bytes_for(IoClass::UserRead) > 0);
    }

    #[test]
    fn virtual_time_advances_with_work() {
        let db = open_db();
        let t0 = db.device().clock().now();
        for i in 0..500u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        assert!(db.device().clock().now() > t0);
        let ledger = db.device().ledger();
        assert!(ledger.get(TimeCategory::ForegroundWrite) > 0);
        assert!(ledger.get(TimeCategory::CompactionWork) > 0);
    }

    #[test]
    fn snapshots_pin_old_versions_through_compaction() {
        let db = open_db();
        db.put(b"pinned", b"v1").unwrap();
        let snap = db.snapshot();
        db.put(b"pinned", b"v2").unwrap();
        // Bury the old version under heavy churn (flushes + compactions).
        for i in 0..3000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.drain_background();
        assert_eq!(db.get(b"pinned").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(db.get_at(b"pinned", &snap).unwrap(), Some(b"v1".to_vec()));
        // Scan at the snapshot must also see the old value.
        let rows = db.scan_at(b"pinned", 1, &snap).unwrap();
        assert_eq!(rows, vec![(b"pinned".to_vec(), b"v1".to_vec())]);
        db.release_snapshot(snap);
    }

    #[test]
    fn snapshot_isolates_deletes() {
        let db = open_db();
        db.put(b"k", b"v").unwrap();
        let snap = db.snapshot();
        db.delete(b"k").unwrap();
        for i in 0..2000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        assert_eq!(db.get(b"k").unwrap(), None);
        assert_eq!(db.get_at(b"k", &snap).unwrap(), Some(b"v".to_vec()));
        db.release_snapshot(snap);
    }

    #[test]
    fn released_snapshots_unpin() {
        let db = open_db();
        let a = db.snapshot();
        let b = db.snapshot();
        assert_eq!(db.core.lock().snapshots.len(), 1); // same sequence, two handles
        db.release_snapshot(a);
        assert_eq!(db.core.lock().snapshots.len(), 1);
        db.release_snapshot(b);
        assert!(db.core.lock().snapshots.is_empty());
    }

    #[test]
    fn table_cache_is_bounded() {
        let device = ldc_ssd::SsdDevice::new(SsdConfig::default());
        let storage = MemStorage::new(device);
        let mut options = Options::small_for_tests();
        options.table_cache_entries = 4;
        let db = Db::open(storage, options, Box::new(UdcPolicy::new())).unwrap();
        for i in 0..3000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.drain_background();
        // Touch many files via scattered reads; the handle cache must stay
        // within its bound while reads keep working.
        for i in (0..3000).step_by(17) {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v));
            assert!(db.tables.len() <= 4);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let db = open_db();
        let before = db.core.lock().versions.last_sequence;
        db.write(WriteBatch::new()).unwrap();
        assert_eq!(db.core.lock().versions.last_sequence, before);
    }

    #[test]
    fn pinned_get_matches_owned_get() {
        let db = open_db();
        for i in 0..2000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.drain_background();
        for i in (0..2000).step_by(71) {
            let (k, v) = kv(i);
            let pinned = db.get_pinned(&k).unwrap().expect("present");
            assert_eq!(pinned.as_slice(), v.as_slice());
            assert_eq!(pinned.len(), v.len());
            assert_eq!(db.get(&k).unwrap(), Some(v));
        }
    }

    #[test]
    fn concurrent_readers_during_writes() {
        use std::sync::Arc;
        let db = Arc::new(open_db());
        for i in 0..500u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    for i in (t * 7..500).step_by(13) {
                        let (k, v) = kv(i);
                        assert_eq!(db.get(&k).unwrap(), Some(v));
                    }
                });
            }
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 500..1500u64 {
                    let (k, v) = kv(i);
                    db.put(&k, &v).unwrap();
                }
            });
        });
        for i in (0..1500).step_by(97) {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v));
        }
    }
}
