//! Option strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

/// Strategy yielding `None` about 10% of the time (matching real
/// proptest's default weighting) and `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(10) == 0 {
            None
        } else {
            Some(self.inner.gen_value(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn produces_both_variants() {
        let strat = of(any::<u8>());
        let mut rng = TestRng::from_seed(3);
        let values: Vec<_> = (0..200).map(|_| strat.gen_value(&mut rng)).collect();
        assert!(values.iter().any(|v| v.is_none()));
        assert!(values.iter().any(|v| v.is_some()));
    }
}
