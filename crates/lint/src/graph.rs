//! Workspace symbol table and approximate call graph over the
//! [`parse`](crate::parse) item index.
//!
//! Resolution is deliberately conservative — a call edge exists only when
//! the target is unambiguous:
//!
//! * `helper(..)` (bare): resolved against free functions, preferring the
//!   same file, then the same crate, then a workspace-unique name.
//! * `self.m(..)`: resolved against the enclosing impl type's methods.
//! * `Type::m(..)` / `Self::m(..)`: resolved by qualifier.
//! * `recv.m(..)` (non-self method): resolved only when exactly one
//!   function named `m` exists in the whole workspace — otherwise the
//!   receiver's type is unknown and guessing would fabricate edges.
//!
//! Unresolvable calls (std, shims, ambiguous names) simply produce no
//! edge; the taint and lock rules treat missing edges as "no flow", which
//! keeps them quiet rather than noisy.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::SourceView;
use crate::parse::{FileIndex, FnItem};

/// Index of one function: `(file index, fn index within file)`.
pub type FnId = (usize, usize);

/// How a call site names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(..)`
    Bare,
    /// `self.m(..)`
    SelfMethod,
    /// `recv.m(..)` where `recv` is not literally `self`
    Method,
    /// `Type::m(..)` (the qualifier is recorded)
    Path,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Called name (last path segment).
    pub name: String,
    /// Qualifier for [`CallKind::Path`] calls (`Type` in `Type::m(..)`).
    pub qual: Option<String>,
    pub kind: CallKind,
    /// Byte offset of the name in `view.code`.
    pub pos: usize,
    /// 1-based line.
    pub line: usize,
}

/// The whole parsed workspace: files, functions, and call sites.
pub struct Workspace {
    /// Per-file item indexes, aligned with the `files` slice handed to
    /// [`Workspace::build`].
    pub files: Vec<FileIndex>,
    /// Call sites per function, aligned with `files[i].fns[j]`.
    pub calls: Vec<Vec<Vec<Call>>>,
    /// name → every function with that name.
    by_name: BTreeMap<String, Vec<FnId>>,
}

impl Workspace {
    /// Parses every file and extracts call sites.
    pub fn build(files: &[(String, SourceView)]) -> Workspace {
        let parsed: Vec<FileIndex> = files
            .iter()
            .map(|(path, view)| crate::parse::parse_file(path, view))
            .collect();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in parsed.iter().enumerate() {
            for (ji, f) in file.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, ji));
            }
        }
        let calls = parsed
            .iter()
            .enumerate()
            .map(|(fi, file)| {
                file.fns
                    .iter()
                    .map(|f| match f.body {
                        Some((open, close)) => extract_calls(&files[fi].1, open, close),
                        None => Vec::new(),
                    })
                    .collect()
            })
            .collect();
        Workspace {
            files: parsed,
            calls,
            by_name,
        }
    }

    /// The function item for an id.
    pub fn item(&self, id: FnId) -> &FnItem {
        &self.files[id.0].fns[id.1]
    }

    /// The file path for an id.
    pub fn path(&self, id: FnId) -> &str {
        &self.files[id.0].path
    }

    /// Every function with the given bare name.
    pub fn named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Looks a function up by file-path suffix, qualifier, and name.
    pub fn find(&self, path_suffix: &str, qual: Option<&str>, name: &str) -> Option<FnId> {
        self.named(name).iter().copied().find(|&id| {
            self.path(id).ends_with(path_suffix) && self.item(id).qual.as_deref() == qual
        })
    }

    /// Resolves one call site made from inside `caller`. `None` when the
    /// target is outside the workspace or ambiguous.
    pub fn resolve(&self, caller: FnId, call: &Call) -> Option<FnId> {
        let caller_item = self.item(caller);
        let candidates = self.named(&call.name);
        match call.kind {
            CallKind::SelfMethod => {
                let qual = caller_item.qual.as_deref()?;
                candidates
                    .iter()
                    .copied()
                    .find(|&id| self.item(id).qual.as_deref() == Some(qual))
            }
            CallKind::Path => {
                let mut qual = call.qual.as_deref()?;
                if qual == "Self" {
                    qual = caller_item.qual.as_deref()?;
                }
                candidates
                    .iter()
                    .copied()
                    .find(|&id| self.item(id).qual.as_deref() == Some(qual))
            }
            CallKind::Bare => {
                let free: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| self.item(id).qual.is_none())
                    .collect();
                // Same file, then same crate, then workspace-unique.
                let same_file: Vec<FnId> = free
                    .iter()
                    .copied()
                    .filter(|&id| id.0 == caller.0)
                    .collect();
                if let [one] = same_file[..] {
                    return Some(one);
                }
                let same_crate: Vec<FnId> = free
                    .iter()
                    .copied()
                    .filter(|&id| self.files[id.0].crate_name == self.files[caller.0].crate_name)
                    .collect();
                if let [one] = same_crate[..] {
                    return Some(one);
                }
                match free[..] {
                    [one] => Some(one),
                    _ => None,
                }
            }
            CallKind::Method => match candidates {
                [one] => Some(*one),
                _ => None,
            },
        }
    }

    /// Resolved callees of a function, in call-site order.
    pub fn callees(&self, id: FnId) -> Vec<FnId> {
        self.calls[id.0][id.1]
            .iter()
            .filter_map(|c| self.resolve(id, c))
            .collect()
    }

    /// Transitive resolved-callee closure, excluding `id` itself unless
    /// it is reachable through recursion.
    pub fn transitive_callees(&self, id: FnId) -> BTreeSet<FnId> {
        let mut acc = BTreeSet::new();
        let mut stack = self.callees(id);
        while let Some(next) = stack.pop() {
            if acc.insert(next) {
                stack.extend(self.callees(next));
            }
        }
        acc
    }

    /// All function ids, file order then item order.
    pub fn all_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| (0..f.fns.len()).map(move |ji| (fi, ji)))
    }
}

/// Extracts call sites from `view.code[open..=close]` (a fn body).
fn extract_calls(view: &SourceView, open: usize, close: usize) -> Vec<Call> {
    let code = &view.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = open;
    let end = close.min(bytes.len());
    while i < end {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < end && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let word = &code[start..i];
        let mut k = i;
        while bytes.get(k).is_some_and(|b| b.is_ascii_whitespace()) {
            k += 1;
        }
        // `name!(` is a macro, `name::(`/turbofish handled below; only
        // plain `name(` counts, and keywords never do.
        if bytes.get(k) != Some(&b'(')
            || matches!(
                word,
                "if" | "while" | "match" | "for" | "fn" | "return" | "loop" | "move" | "in"
            )
        {
            continue;
        }
        let before = code[..start].trim_end();
        if before.ends_with("fn") || before.ends_with('!') {
            continue; // definition or macro tail
        }
        let (kind, qual) = if let Some(stripped) = before.strip_suffix("::") {
            (CallKind::Path, Some(last_ident(stripped)))
        } else if before.ends_with("self.") {
            (CallKind::SelfMethod, None)
        } else if before.ends_with('.') {
            (CallKind::Method, None)
        } else {
            (CallKind::Bare, None)
        };
        let qual = match qual {
            Some(q) if q.is_empty() => continue, // `<T as X>::call` — skip
            other => other,
        };
        out.push(Call {
            name: word.to_string(),
            qual,
            kind,
            pos: start,
            line: view.line_of(start),
        });
    }
    out
}

/// Trailing identifier of a path prefix (`a::b::Type` → `Type`), stripping
/// one generics suffix (`Vec<u8>` → `Vec`).
fn last_ident(prefix: &str) -> String {
    let prefix = prefix.trim_end();
    let prefix = prefix.strip_suffix('>').map_or(prefix, |p| {
        // Walk back over one balanced generics group.
        let bytes = p.as_bytes();
        let mut depth = 1i64;
        let mut i = bytes.len();
        while i > 0 && depth > 0 {
            i -= 1;
            match bytes[i] {
                b'>' => depth += 1,
                b'<' => depth -= 1,
                _ => {}
            }
        }
        &p[..i]
    });
    prefix
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> (Workspace, Vec<(String, SourceView)>) {
        let files: Vec<(String, SourceView)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), SourceView::new(s)))
            .collect();
        (Workspace::build(&files), files)
    }

    #[test]
    fn bare_calls_prefer_same_file_then_crate() {
        let (w, _) = ws(&[
            (
                "crates/lsm/src/a.rs",
                "fn caller() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/ssd/src/b.rs", "fn helper() {}\n"),
        ]);
        let caller = w.find("a.rs", None, "caller").unwrap();
        let callees = w.callees(caller);
        assert_eq!(callees, vec![w.find("a.rs", None, "helper").unwrap()]);
    }

    #[test]
    fn self_and_path_calls_resolve_by_impl_type() {
        let (w, _) = ws(&[(
            "crates/lsm/src/a.rs",
            "struct A; struct B;\n\
             impl A {\n  fn go(&self) { self.step(); B::jump(); }\n  fn step(&self) {}\n}\n\
             impl B {\n  fn jump() {}\n  fn step(&self) {}\n}\n",
        )]);
        let go = w.find("a.rs", Some("A"), "go").unwrap();
        let callees = w.callees(go);
        assert!(callees.contains(&w.find("a.rs", Some("A"), "step").unwrap()));
        assert!(callees.contains(&w.find("a.rs", Some("B"), "jump").unwrap()));
        assert!(!callees.contains(&w.find("a.rs", Some("B"), "step").unwrap()));
    }

    #[test]
    fn ambiguous_method_calls_do_not_resolve() {
        let (w, _) = ws(&[(
            "crates/lsm/src/a.rs",
            "struct A; struct B;\n\
             impl A { fn poke(&self) {} }\n\
             impl B { fn poke(&self) {} }\n\
             fn caller(x: &A) { x.poke(); }\n",
        )]);
        let caller = w.find("a.rs", None, "caller").unwrap();
        assert!(w.callees(caller).is_empty());
    }

    #[test]
    fn unique_method_calls_resolve_workspace_wide() {
        let (w, _) = ws(&[
            (
                "crates/lsm/src/a.rs",
                "fn caller(x: &W) { x.only_one_of_these(); }\n",
            ),
            (
                "crates/ssd/src/b.rs",
                "struct W; impl W { fn only_one_of_these(&self) {} }\n",
            ),
        ]);
        let caller = w.find("a.rs", None, "caller").unwrap();
        assert_eq!(
            w.callees(caller),
            vec![w.find("b.rs", Some("W"), "only_one_of_these").unwrap()]
        );
    }

    #[test]
    fn transitive_closure_follows_chains_and_recursion() {
        let (w, _) = ws(&[(
            "crates/lsm/src/a.rs",
            "fn a() { b(); }\nfn b() { c(); b(); }\nfn c() {}\n",
        )]);
        let a = w.find("a.rs", None, "a").unwrap();
        let closure = w.transitive_callees(a);
        assert_eq!(closure.len(), 2);
        assert!(closure.contains(&w.find("a.rs", None, "c").unwrap()));
    }

    #[test]
    fn macros_are_not_calls() {
        let (w, _) = ws(&[(
            "crates/lsm/src/a.rs",
            "fn caller() { println!(\"x\"); write(); }\nfn write() {}\n",
        )]);
        let caller = w.find("a.rs", None, "caller").unwrap();
        assert_eq!(w.callees(caller).len(), 1);
    }
}
