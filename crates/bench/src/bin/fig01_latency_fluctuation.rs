//! Fig 1 — "Serious latency fluctuations caused by batched writing."
//!
//! The paper runs a mixed YCSB workload on stock LevelDB (UDC) and plots
//! the per-second average latency, observing write-latency fluctuation up
//! to ~49x between quiet and compaction-heavy intervals. We regenerate the
//! trace under the write-heavy mix (the compaction-bound regime at laptop
//! scale) with 100 ms buckets, for UDC and — for contrast — LDC.

use ldc_bench::prelude::*;
use ldc_workload::{preload_workload, KvInterface};

const BUCKET_NS: u64 = 100_000_000; // 100 ms

fn main() {
    let args = CommonArgs::parse(60_000);
    for system in [System::Udc, System::Ldc] {
        let spec = WorkloadSpec::write_heavy(args.ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        let config = StoreConfig::new(system);
        let db = match system {
            System::Ldc => LdcDb::builder().options(config.options.clone()).build(),
            System::Udc => LdcDb::builder()
                .options(config.options.clone())
                .udc_baseline()
                .build(),
        }
        .unwrap();
        let clock = db.device().clock().clone();
        let mut adapter = DbAdapter::new(db);
        preload_workload(&spec, &mut adapter).unwrap();
        adapter.db_mut().drain_background();

        // Drive the mixed stream by hand so we can bucket write latencies
        // at 100 ms of virtual time.
        let codec = spec.codec.clone();
        let window_start = clock.now();
        let mut buckets: Vec<(u128, u64, u64)> = Vec::new(); // (sum, count, max)
        for i in 0..spec.ops {
            let t0 = clock.now();
            if i % 10 < 7 {
                adapter
                    .insert(&codec.key(i % spec.key_space), &codec.value(i, 1))
                    .unwrap();
            } else {
                adapter.get(&codec.key(i % spec.key_space)).unwrap();
            }
            let latency = clock.now() - t0;
            let bucket = ((clock.now() - window_start) / BUCKET_NS) as usize;
            if buckets.len() <= bucket {
                buckets.resize(bucket + 1, (0, 0, 0));
            }
            buckets[bucket].0 += u128::from(latency);
            buckets[bucket].1 += 1;
            buckets[bucket].2 = buckets[bucket].2.max(latency);
        }

        let rows: Vec<Vec<String>> = buckets
            .iter()
            .enumerate()
            .filter(|(_, (_, n, _))| *n > 0)
            .map(|(i, (sum, n, max))| {
                vec![
                    format!("{:.1}", i as f64 * 0.1),
                    format!("{:.1}", *sum as f64 / *n as f64 / 1e3),
                    format!("{:.1}", *max as f64 / 1e3),
                    n.to_string(),
                ]
            })
            .collect();
        print_table(
            args.csv,
            &format!(
                "Fig 1 [{}]: latency per 100ms of virtual time (WH, {} ops)",
                system.label(),
                args.ops
            ),
            &["virtual second", "mean latency (us)", "max latency (us)", "ops"],
            &rows,
        );
        let means: Vec<f64> = buckets
            .iter()
            .filter(|(_, n, _)| *n > 0)
            .map(|(sum, n, _)| *sum as f64 / *n as f64)
            .collect();
        let max = means.iter().cloned().fold(0.0f64, f64::max);
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst_op = buckets.iter().map(|(_, _, m)| *m).max().unwrap_or(0);
        let calm_op = buckets
            .iter()
            .filter(|(_, n, _)| *n > 0)
            .map(|(_, _, m)| *m)
            .min()
            .unwrap_or(0);
        println!(
            "\n{}: fluctuation extent (max/min bucket mean) = {:.1}x; \
             worst single op {:.1} us vs calmest bucket's worst {:.1} us = {:.0}x  \
             (paper observes up to 49.1x mean fluctuation for stock LevelDB; \
             our scaled memtables bound stalls at ~tens of ms, so the mean \
             dilutes less than at paper scale — the per-op spread carries \
             the signal)\n",
            system.label(),
            if min > 0.0 { max / min } else { f64::NAN },
            worst_op as f64 / 1e3,
            calm_op as f64 / 1e3,
            worst_op as f64 / calm_op.max(1) as f64,
        );
    }
    println!(
        "Expectation: UDC's trace spikes whenever compaction blocks the \
         writer; LDC's trace stays flat because each merge moves O(1) \
         SSTables instead of O(k)."
    );
}
