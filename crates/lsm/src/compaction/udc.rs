//! UDC: the traditional upper-level driven compaction (the paper's
//! baseline; LevelDB's behaviour).
//!
//! When a level exceeds its capacity target, a file from that level is
//! chosen round-robin and merged *down*, dragging in every overlapping file
//! of the next level — on average `k` (the fan-out) of them, which is the
//! write-amplification source the paper's Theorem 2.1 formalizes.

use crate::compaction::{pick_overfull_level, CompactionPolicy, CompactionTask, PickContext};

/// Upper-level driven compaction policy.
#[derive(Debug, Default)]
pub struct UdcPolicy;

impl UdcPolicy {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        Self
    }
}

impl CompactionPolicy for UdcPolicy {
    fn name(&self) -> &str {
        "udc"
    }

    fn pick(&mut self, ctx: &PickContext<'_>) -> Option<CompactionTask> {
        let version = ctx.version;
        let level = pick_overfull_level(version, ctx.options)?;
        debug_assert!(level + 1 < version.num_levels());

        // Upper inputs.
        let upper: Vec<u64> = if level == 0 {
            // Level-0 files overlap each other; compact them together so the
            // newest-version-wins semantics survive the merge.
            version.levels[0].iter().map(|f| f.number).collect()
        } else {
            // Round-robin: first file starting after the cursor.
            let cursor = &ctx.compact_pointers[level];
            let files = &version.levels[level];
            let file = files
                .iter()
                .find(|f| cursor.is_empty() || f.largest_ukey() > cursor.as_slice())
                .or_else(|| files.first())?;
            vec![file.number]
        };
        if upper.is_empty() {
            return None;
        }

        // Overlapping lower inputs.
        let (lo, hi) = input_ukey_span(version, level, &upper);
        let lower: Vec<u64> = version
            .overlapping_files(level + 1, &lo, &hi)
            .iter()
            .map(|f| f.number)
            .collect();

        if lower.is_empty() && upper.len() == 1 {
            return Some(CompactionTask::TrivialMove {
                level,
                file: upper[0],
            });
        }
        Some(CompactionTask::Merge {
            level,
            upper,
            lower,
        })
    }
}

/// Smallest/largest user keys across the given upper input files.
fn input_ukey_span(
    version: &crate::version::Version,
    level: usize,
    upper: &[u64],
) -> (Vec<u8>, Vec<u8>) {
    let mut lo: Option<Vec<u8>> = None;
    let mut hi: Option<Vec<u8>> = None;
    for f in &version.levels[level] {
        if upper.contains(&f.number) {
            let (s, l) = (f.smallest_ukey(), f.largest_ukey());
            if lo.as_deref().is_none_or(|cur| s < cur) {
                lo = Some(s.to_vec());
            }
            if hi.as_deref().is_none_or(|cur| l > cur) {
                hi = Some(l.to_vec());
            }
        }
    }
    (lo.unwrap_or_default(), hi.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Options;
    use crate::types::{encode_internal_key, ValueType};
    use crate::version::{FileMeta, Version};

    fn meta(number: u64, lo: &[u8], hi: &[u8], size: u64) -> FileMeta {
        FileMeta {
            number,
            size,
            smallest: encode_internal_key(lo, 1, ValueType::Value),
            largest: encode_internal_key(hi, 1, ValueType::Value),
            slices: Vec::new(),
        }
    }

    fn ctx<'a>(
        version: &'a Version,
        options: &'a Options,
        pointers: &'a [Vec<u8>],
    ) -> PickContext<'a> {
        PickContext {
            version,
            options,
            compact_pointers: pointers,
        }
    }

    #[test]
    fn l0_compaction_takes_all_l0_files() {
        let options = Options::default();
        let pointers = vec![Vec::new(); 4];
        let mut v = Version::new(4);
        for i in 1..=4 {
            v.levels[0].push(meta(i, b"a", b"z", 1000));
        }
        v.levels[1].push(meta(10, b"a", b"m", 1000));
        v.levels[1].push(meta(11, b"x", b"z", 1000));
        let mut policy = UdcPolicy::new();
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(
            task,
            CompactionTask::Merge {
                level: 0,
                upper: vec![1, 2, 3, 4],
                lower: vec![10, 11],
            }
        );
    }

    #[test]
    fn deeper_level_uses_round_robin_cursor() {
        let options = Options {
            l1_capacity_bytes: 1000,
            ..Options::default()
        }; // L1 trivially overfull
        let mut pointers = vec![Vec::new(); 4];
        pointers[1] = b"cc".to_vec();
        let mut v = Version::new(4);
        v.levels[1].push(meta(1, b"aa", b"bb", 2000));
        v.levels[1].push(meta(2, b"dd", b"ee", 2000));
        v.levels[2].push(meta(10, b"da", b"dz", 1000));
        let mut policy = UdcPolicy::new();
        // Cursor "cc" skips file 1 and picks file 2, which overlaps file 10.
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(
            task,
            CompactionTask::Merge {
                level: 1,
                upper: vec![2],
                lower: vec![10],
            }
        );
        // Cursor past every file wraps to the first, which has no level-2
        // overlap -> trivial move.
        pointers[1] = b"zz".to_vec();
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(task, CompactionTask::TrivialMove { level: 1, file: 1 });
    }

    #[test]
    fn no_overlap_becomes_trivial_move() {
        let options = Options {
            l1_capacity_bytes: 1000,
            ..Options::default()
        };
        let pointers = vec![Vec::new(); 4];
        let mut v = Version::new(4);
        v.levels[1].push(meta(1, b"aa", b"bb", 2000));
        v.levels[2].push(meta(10, b"x", b"z", 1000));
        let mut policy = UdcPolicy::new();
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(task, CompactionTask::TrivialMove { level: 1, file: 1 });
    }

    #[test]
    fn healthy_tree_yields_none() {
        let options = Options::default();
        let pointers = vec![Vec::new(); 4];
        let mut v = Version::new(4);
        v.levels[0].push(meta(1, b"a", b"z", 1000));
        let mut policy = UdcPolicy::new();
        assert!(policy.pick(&ctx(&v, &options, &pointers)).is_none());
    }
}
