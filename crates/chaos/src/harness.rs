//! Crash / corruption / error-injection verification harness.
//!
//! [`ChaosHarness`] runs a deterministic workload against a store built on
//! a [`FaultStorage`], injects one fault class per run, then reopens and
//! checks the surviving state against an in-memory model:
//!
//! * **Crash points** ([`ChaosHarness::run_crash_point`]): power loss on
//!   the Nth mutating storage operation. With `wal_sync` on, every
//!   acknowledged write must survive exactly; the single in-flight write
//!   may land or vanish (and is checked to do one of the two).
//! * **Bit flips** ([`ChaosHarness::run_bit_flip`]): one bit of a WAL,
//!   SSTable, or manifest is flipped. The store must detect the damage or
//!   mask it — it must never serve a value that was not written.
//! * **I/O errors** ([`ChaosHarness::run_io_errors`]): mutating storage
//!   operations fail with a configured probability. The first failure must
//!   latch the engine's background error (fail-stop), reads must keep
//!   working, and a clean reopen must restore exactly the acknowledged
//!   state.
//!
//! Every failure carries the [`FaultPlan`] and the fault journal, so a
//! red run is replayable from the `(seed, crash point)` pair alone.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use ldc_core::{CompactionMode, LdcDb, LdcDbBuilder};
use ldc_lsm::backup::for_each_stream_edit;
use ldc_lsm::{
    backup_prefix, checkpoint_complete, repair_db, restore_backup, CorruptionPolicy, Options,
    RecoverySummary, RepairReport,
};
use ldc_obs::{EventKind, RingBufferSink, SharedSink};
use ldc_ssd::{MemStorage, SsdDevice, StorageBackend};
use ldc_sync::Follower;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fault::{FaultStorage, PowerCycleReport};
use crate::plan::{BitFlipTarget, FaultPlan};

/// Decorrelates the workload stream from the fault stream.
const WORKLOAD_STREAM: u64 = 0x9e37_79b9_7f4a_7c15;

/// Workload + engine configuration for a harness run. Two runs with equal
/// configs perform identical operations.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seeds both the workload and the fault plan.
    pub seed: u64,
    /// Operations the workload attempts.
    pub ops: u64,
    /// Distinct keys the workload draws from.
    pub key_space: u64,
    /// Value payload size in bytes.
    pub value_len: usize,
    /// Every Nth operation is a delete (0 disables deletes).
    pub delete_every: u64,
    /// Compaction mechanism under test.
    pub mode: CompactionMode,
    /// Engine options; `wal_sync` should stay on for crash runs.
    pub options: Options,
}

impl ChaosConfig {
    /// A small, fast configuration: enough traffic for several flushes
    /// and background compactions, seconds per run.
    pub fn quick(seed: u64, mode: CompactionMode) -> Self {
        let options = Options {
            wal_sync: true,
            ..Options::small_for_tests()
        };
        Self {
            seed,
            ops: 300,
            key_space: 64,
            value_len: 120,
            delete_every: 7,
            mode,
            options,
        }
    }
}

/// A verification failure, carrying everything needed to replay it.
#[derive(Debug)]
pub struct ChaosFailure {
    /// The plan the failing run used.
    pub plan: FaultPlan,
    /// What went wrong.
    pub detail: String,
    /// The faults the storage injected, in order.
    pub fault_log: Vec<String>,
}

impl fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "chaos failure: {}", self.detail)?;
        writeln!(f, "replay plan: {}", self.plan)?;
        writeln!(
            f,
            "replay: ChaosHarness::new(ChaosConfig {{ seed: {}, .. }}) with the plan above",
            self.plan.seed
        )?;
        if self.fault_log.is_empty() {
            write!(f, "faults injected: none")
        } else {
            writeln!(f, "faults injected:")?;
            for (i, line) in self.fault_log.iter().enumerate() {
                if i > 0 {
                    writeln!(f)?;
                }
                write!(f, "  {line}")?;
            }
            Ok(())
        }
    }
}

impl std::error::Error for ChaosFailure {}

/// Result of one crash-point run.
#[derive(Debug, Clone)]
pub struct CrashPointReport {
    /// The mutating-op index the power died on.
    pub crash_op: u64,
    /// Whether the crash actually fired (false once the point lies past
    /// the workload's total storage traffic).
    pub crashed: bool,
    /// Writes acknowledged before the crash.
    pub acked_writes: u64,
    /// What the power cycle discarded.
    pub power_cycle: PowerCycleReport,
    /// What the reopening recovery did.
    pub recovery: RecoverySummary,
}

/// How a bit-flip run ended (both variants are acceptable outcomes; a
/// wrong served value is a [`ChaosFailure`] instead).
#[derive(Debug, Clone)]
pub enum BitFlipOutcome {
    /// The reopen itself refused the corrupt store.
    DetectedAtOpen(String),
    /// The store reopened; reads were each correct or detected.
    Reopened {
        /// Point/scan reads that surfaced a detected corruption error.
        detected_reads: u64,
        /// Whether a full integrity sweep still passes.
        integrity_ok: bool,
        /// Files the recovery quarantined.
        files_quarantined: u32,
    },
}

/// Result of one bit-flip run.
#[derive(Debug, Clone)]
pub struct BitFlipReport {
    /// File the flip hit.
    pub file: String,
    /// Byte offset of the flipped bit.
    pub offset: u64,
    /// Bit index within the byte.
    pub bit: u8,
    /// How the store coped.
    pub outcome: BitFlipOutcome,
}

/// Result of one transient-read run.
#[derive(Debug, Clone)]
pub struct TransientReadReport {
    /// Transient read failures the storage injected.
    pub injected_failures: u64,
    /// Retries the engine's storage wrapper recorded while masking them.
    pub retries_recorded: u64,
}

/// Result of one scrub → quarantine → repair pipeline run.
#[derive(Debug, Clone)]
pub struct ScrubRepairReport {
    /// SSTable the bit flip hit.
    pub file: String,
    /// Byte offset of the flipped bit.
    pub offset: u64,
    /// Bit index within the byte.
    pub bit: u8,
    /// The reopen itself refused the corrupt store (footer/magic damage);
    /// the run went straight to repair without a scrub pass.
    pub detected_at_open: bool,
    /// Corruptions the scrub pass reported.
    pub scrub_corruptions: u64,
    /// Live tables the scrub pass quarantined.
    pub files_quarantined: u64,
    /// What `repair_db` did.
    pub repair: RepairReport,
    /// Keys still serving their latest acknowledged value after repair.
    pub surviving_keys: u64,
    /// Keys lost with the quarantined table(s).
    pub lost_keys: u64,
}

/// Result of one error-injection run.
#[derive(Debug, Clone)]
pub struct IoErrorReport {
    /// Writes acknowledged before the first injected failure.
    pub acked_writes: u64,
    /// Errors the storage injected in total.
    pub injected_errors: u64,
    /// Workload index of the first failed operation, if any failed.
    pub first_error_op: Option<u64>,
}

/// Mutating-op landmarks of the benign backup pipeline, for aiming crash
/// points at specific phases (see [`ChaosHarness::measure_backup_ops`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackupOpsProfile {
    /// Mutating ops performed before `backup_begin` was called; crash
    /// points in `before_checkpoint+1 ..= checkpoint_done` land inside
    /// base-checkpoint creation.
    pub before_checkpoint: u64,
    /// Mutating ops when `backup_begin` returned.
    pub checkpoint_done: u64,
    /// Total mutating ops of the full pipeline; crash points in
    /// `checkpoint_done+1 ..= total` land in the shipping workload.
    pub total: u64,
}

/// Result of one primary-side backup crash run (checkpoint creation or
/// stream shipping interrupted by power loss).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupCrashReport {
    /// The mutating-op index the power died on.
    pub crash_op: u64,
    /// Whether the crash actually fired.
    pub crashed: bool,
    /// Writes acknowledged before the crash.
    pub acked_writes: u64,
    /// What the power cycle discarded.
    pub power_cycle: PowerCycleReport,
    /// Whether the backup's base checkpoint survived complete (its
    /// `CURRENT` marker is durable).
    pub backup_complete: bool,
    /// The acknowledged-history prefix the restored copy matched:
    /// restored state == state after this many acknowledged writes
    /// (`acked_writes + 1` encodes "final state plus the in-flight
    /// write"). `None` when the backup was incomplete and refused.
    pub restored_prefix: Option<u64>,
    /// Replication cursor of a follower bootstrapped from the surviving
    /// backup, when it was complete.
    pub follower_cursor: Option<u64>,
}

/// Result of one follower-side apply crash run (power loss during
/// bootstrap restore or stream apply on the follower's storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyCrashReport {
    /// The mutating-op index (on the follower's storage) the power died on.
    pub crash_op: u64,
    /// Whether the crash actually fired.
    pub crashed: bool,
    /// The follower's durable cursor right after the interrupted poll.
    pub applied_before_crash: u64,
    /// Cursor after recovery and catch-up — the full stream length.
    pub final_cursor: u64,
    /// Total mutating ops the pipeline performed on the follower's
    /// storage (the crash-point space for [`ChaosHarness::run_apply_crash`]).
    pub follower_ops: u64,
}

/// What [`ChaosHarness::drive_backup_primary`] observed before stopping.
struct BackupPrimaryRun {
    /// Final acknowledged key space.
    model: BTreeMap<Vec<u8>, Vec<u8>>,
    /// `boundaries[n]` is the key space after the first `n` acknowledged
    /// writes; a restored backup must land on one of these states.
    boundaries: Vec<BTreeMap<Vec<u8>, Vec<u8>>>,
    in_flight: Option<(Vec<u8>, Option<Vec<u8>>)>,
    acked: u64,
    before_checkpoint: u64,
    checkpoint_done: Option<u64>,
}

/// Deterministic fault-injection verifier over one [`ChaosConfig`].
pub struct ChaosHarness {
    config: ChaosConfig,
}

impl ChaosHarness {
    /// A harness for `config`.
    pub fn new(config: ChaosConfig) -> Self {
        Self { config }
    }

    /// The configuration under test.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    fn key_for(idx: u64) -> Vec<u8> {
        format!("key{idx:05}").into_bytes()
    }

    /// Operation `i` of the workload: `(key, Some(value))` for a put,
    /// `(key, None)` for a delete.
    fn gen_op(&self, rng: &mut SmallRng, i: u64) -> (Vec<u8>, Option<Vec<u8>>) {
        let key = Self::key_for(rng.gen_range(0..self.config.key_space));
        let deletes = self.config.delete_every;
        if deletes > 0 && i % deletes == deletes - 1 {
            return (key, None);
        }
        // The op index makes every value unique, so a stale read is
        // distinguishable from the current one.
        let mut value = format!("v{i:08}-").into_bytes();
        while value.len() < self.config.value_len {
            value.push(b'a' + rng.gen_range(0..26u8));
        }
        (key, Some(value))
    }

    fn open(
        &self,
        storage: &Arc<dyn StorageBackend>,
        sink: Option<SharedSink>,
    ) -> ldc_lsm::Result<LdcDb> {
        self.open_with(storage, sink, self.config.options.clone())
    }

    fn open_with(
        &self,
        storage: &Arc<dyn StorageBackend>,
        sink: Option<SharedSink>,
        options: Options,
    ) -> ldc_lsm::Result<LdcDb> {
        let mut builder = LdcDb::builder()
            .options(options)
            .mode(self.config.mode.clone())
            .storage(Arc::clone(storage));
        if let Some(sink) = sink {
            builder = builder.event_sink(sink);
        }
        builder.build()
    }

    fn fail(&self, fault: &FaultStorage, detail: String) -> ChaosFailure {
        ChaosFailure {
            plan: fault.plan().clone(),
            detail,
            fault_log: fault.fault_log(),
        }
    }

    /// Checks the reopened store against the model over the whole key
    /// universe: point gets, a full scan, version invariants, and an
    /// SSTable integrity sweep. The optional in-flight write is allowed
    /// to have either landed or vanished — atomically.
    fn verify_exact(
        &self,
        db: &mut LdcDb,
        model: &BTreeMap<Vec<u8>, Vec<u8>>,
        in_flight: Option<&(Vec<u8>, Option<Vec<u8>>)>,
    ) -> Result<(), String> {
        for idx in 0..self.config.key_space {
            let key = Self::key_for(idx);
            let got = db
                .get(&key)
                .map_err(|e| format!("get {} failed: {e}", String::from_utf8_lossy(&key)))?;
            let old = model.get(&key).map(|v| v.as_slice());
            if let Some((k, new)) = in_flight {
                if *k == key {
                    if got.as_deref() != old && got.as_deref() != new.as_deref() {
                        return Err(format!(
                            "in-flight key {} resolved to neither old nor new value",
                            String::from_utf8_lossy(&key)
                        ));
                    }
                    continue;
                }
            }
            if got.as_deref() != old {
                return Err(format!(
                    "key {}: got {:?}, model has {:?}",
                    String::from_utf8_lossy(&key),
                    got.map(|v| String::from_utf8_lossy(&v).into_owned()),
                    old.map(String::from_utf8_lossy)
                ));
            }
        }
        let scanned: BTreeMap<Vec<u8>, Vec<u8>> = db
            .scan(b"", usize::MAX)
            .map_err(|e| format!("scan failed: {e}"))?
            .into_iter()
            .collect();
        let mut with_new = model.clone();
        if let Some((k, new)) = in_flight {
            match new {
                Some(v) => {
                    with_new.insert(k.clone(), v.clone());
                }
                None => {
                    with_new.remove(k);
                }
            }
        }
        if scanned != *model && scanned != with_new {
            return Err(format!(
                "scan returned {} entries matching neither pre- nor post-in-flight model ({} entries)",
                scanned.len(),
                model.len()
            ));
        }
        db.engine_ref()
            .version()
            .check_invariants()
            .map_err(|e| format!("version invariants violated: {e}"))?;
        db.verify_integrity()
            .map_err(|e| format!("integrity sweep failed: {e}"))?;
        Ok(())
    }

    /// Runs the workload with a benign plan and returns the total number
    /// of mutating storage operations it produces — the upper bound of
    /// the interesting crash-point space.
    pub fn measure_storage_ops(&self) -> Result<u64, ChaosFailure> {
        let fault = FaultStorage::new(
            MemStorage::new(SsdDevice::with_defaults()),
            FaultPlan::new(self.config.seed),
        );
        let storage: Arc<dyn StorageBackend> = fault.clone();
        let db = self
            .open(&storage, None)
            .map_err(|e| self.fail(&fault, format!("open failed under benign plan: {e}")))?;
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ WORKLOAD_STREAM);
        for i in 0..self.config.ops {
            let (key, value) = self.gen_op(&mut rng, i);
            match &value {
                Some(v) => db.put(&key, v),
                None => db.delete(&key),
            }
            .map_err(|e| self.fail(&fault, format!("write failed under benign plan: {e}")))?;
        }
        Ok(fault.mutating_ops())
    }

    /// Kills the power on mutating storage operation `crash_op` (1-based),
    /// reboots, reopens, and verifies that exactly the acknowledged writes
    /// survived (modulo the single in-flight write).
    pub fn run_crash_point(&self, crash_op: u64) -> Result<CrashPointReport, ChaosFailure> {
        let fault = FaultStorage::new(
            MemStorage::new(SsdDevice::with_defaults()),
            FaultPlan::crash_at(self.config.seed, crash_op),
        );
        let storage: Arc<dyn StorageBackend> = fault.clone();

        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut in_flight: Option<(Vec<u8>, Option<Vec<u8>>)> = None;
        let mut acked = 0u64;
        let mut crashed = false;
        match self.open(&storage, None) {
            Ok(db) => {
                let mut rng = SmallRng::seed_from_u64(self.config.seed ^ WORKLOAD_STREAM);
                for i in 0..self.config.ops {
                    let (key, value) = self.gen_op(&mut rng, i);
                    let result = match &value {
                        Some(v) => db.put(&key, v),
                        None => db.delete(&key),
                    };
                    match result {
                        Ok(()) => {
                            acked += 1;
                            match value {
                                Some(v) => {
                                    model.insert(key, v);
                                }
                                None => {
                                    model.remove(&key);
                                }
                            }
                        }
                        Err(_) => {
                            in_flight = Some((key, value));
                            crashed = true;
                            break;
                        }
                    }
                }
            }
            // Crash during database creation: nothing was acknowledged.
            Err(_) => crashed = true,
        }

        let power_cycle = fault
            .power_cycle()
            .map_err(|e| self.fail(&fault, format!("power cycle failed: {e}")))?;

        let sink = Arc::new(RingBufferSink::new(4096));
        let mut db = self
            .open(&storage, Some(sink.clone()))
            .map_err(|e| self.fail(&fault, format!("reopen after crash failed: {e}")))?;
        let recovery = db.recovery_summary();
        self.verify_exact(&mut db, &model, in_flight.as_ref())
            .map_err(|detail| self.fail(&fault, detail))?;
        if !sink.events().iter().any(|e| e.kind == EventKind::Recovery) {
            return Err(self.fail(&fault, "reopen emitted no recovery event".to_string()));
        }

        // The recovered store must keep working and survive a further
        // clean reopen (catches half-written metadata the first recovery
        // papered over).
        drop(db);
        let mut db = self
            .open(&storage, None)
            .map_err(|e| self.fail(&fault, format!("second clean reopen failed: {e}")))?;
        self.verify_exact(&mut db, &model, in_flight.as_ref())
            .map_err(|detail| self.fail(&fault, format!("after second reopen: {detail}")))?;

        Ok(CrashPointReport {
            crash_op,
            crashed,
            acked_writes: acked,
            power_cycle,
            recovery,
        })
    }

    /// Sweeps [`ChaosHarness::run_crash_point`] over `points`, failing on
    /// the first red crash point.
    pub fn crash_sweep(
        &self,
        points: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<CrashPointReport>, ChaosFailure> {
        points
            .into_iter()
            .map(|p| self.run_crash_point(p))
            .collect()
    }

    fn builder(&self) -> LdcDbBuilder {
        LdcDb::builder()
            .options(self.config.options.clone())
            .mode(self.config.mode.clone())
    }

    /// The primary side of the backup pipeline: first half of the
    /// workload, `backup_begin` (base checkpoint + armed stream), second
    /// half with periodic flushes so the stream grows, final flush. Stops
    /// at the first error (the crash point) and reports what was
    /// acknowledged and where the checkpoint phase sat in mutating-op
    /// space.
    fn drive_backup_primary(
        &self,
        storage: &Arc<dyn StorageBackend>,
        fault: &FaultStorage,
    ) -> BackupPrimaryRun {
        let mut run = BackupPrimaryRun {
            model: BTreeMap::new(),
            boundaries: vec![BTreeMap::new()],
            in_flight: None,
            acked: 0,
            before_checkpoint: 0,
            checkpoint_done: None,
        };
        let db = match self.open(storage, None) {
            Ok(db) => db,
            Err(_) => return run,
        };
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ WORKLOAD_STREAM);
        let half = self.config.ops / 2;
        for i in 0..self.config.ops {
            if i == half {
                db.drain_background();
                run.before_checkpoint = fault.mutating_ops();
                if db.backup_begin("chaos").is_err() {
                    return run;
                }
                run.checkpoint_done = Some(fault.mutating_ops());
            }
            let (key, value) = self.gen_op(&mut rng, i);
            let result = match &value {
                Some(v) => db.put(&key, v),
                None => db.delete(&key),
            };
            match result {
                Ok(()) => {
                    run.acked += 1;
                    match value {
                        Some(v) => {
                            run.model.insert(key, v);
                        }
                        None => {
                            run.model.remove(&key);
                        }
                    }
                    run.boundaries.push(run.model.clone());
                }
                Err(_) => {
                    run.in_flight = Some((key, value));
                    return run;
                }
            }
            if i >= half && (i - half) % 20 == 19 && db.flush().is_err() {
                return run;
            }
        }
        if db.flush().is_err() {
            return run;
        }
        db.drain_background();
        let _ = db.backup_end();
        run
    }

    /// Runs the backup pipeline with a benign plan and returns its
    /// mutating-op landmarks, so a sweep can aim crash points at the
    /// checkpoint-creation and stream-shipping windows specifically.
    pub fn measure_backup_ops(&self) -> Result<BackupOpsProfile, ChaosFailure> {
        let fault = FaultStorage::new(
            MemStorage::new(SsdDevice::with_defaults()),
            FaultPlan::new(self.config.seed),
        );
        let storage: Arc<dyn StorageBackend> = fault.clone();
        let run = self.drive_backup_primary(&storage, &fault);
        let Some(checkpoint_done) = run.checkpoint_done else {
            return Err(self.fail(
                &fault,
                "benign backup pipeline did not complete its checkpoint".to_string(),
            ));
        };
        Ok(BackupOpsProfile {
            before_checkpoint: run.before_checkpoint,
            checkpoint_done,
            total: fault.mutating_ops(),
        })
    }

    /// Kills the power on mutating storage operation `crash_op` anywhere
    /// in the primary-side backup pipeline — mid-checkpoint, mid-ship, or
    /// mid-workload — then verifies every crash-consistency contract: the
    /// primary recovers to exactly the acknowledged state; a complete
    /// surviving backup restores (and bootstraps a follower) to a state
    /// on the acknowledged-history prefix; an incomplete one is refused.
    pub fn run_backup_crash(&self, crash_op: u64) -> Result<BackupCrashReport, ChaosFailure> {
        let fault = FaultStorage::new(
            MemStorage::new(SsdDevice::with_defaults()),
            FaultPlan::crash_at(self.config.seed, crash_op),
        );
        let storage: Arc<dyn StorageBackend> = fault.clone();
        let run = self.drive_backup_primary(&storage, &fault);
        let crashed = fault.powered_off();
        let power_cycle = fault
            .power_cycle()
            .map_err(|e| self.fail(&fault, format!("power cycle failed: {e}")))?;

        // The primary itself recovers to exactly the acknowledged state.
        let mut db = self
            .open(&storage, None)
            .map_err(|e| self.fail(&fault, format!("primary reopen failed: {e}")))?;
        self.verify_exact(&mut db, &run.model, run.in_flight.as_ref())
            .map_err(|d| self.fail(&fault, format!("primary after crash: {d}")))?;
        drop(db);

        // The in-flight write may have reached a shipped flush before the
        // crash cut its put short — one more acceptable restore state.
        let mut with_in_flight = run.model.clone();
        if let Some((k, new)) = &run.in_flight {
            match new {
                Some(v) => {
                    with_in_flight.insert(k.clone(), v.clone());
                }
                None => {
                    with_in_flight.remove(k);
                }
            }
        }
        let on_prefix = |state: &BTreeMap<Vec<u8>, Vec<u8>>| -> Option<u64> {
            match run.boundaries.iter().position(|b| b == state) {
                Some(n) => Some(n as u64),
                None if run.in_flight.is_some() && *state == with_in_flight => Some(run.acked + 1),
                None => None,
            }
        };

        let prefix = backup_prefix("chaos");
        let backup_complete = checkpoint_complete(storage.as_ref(), &prefix);
        let mut restored_prefix = None;
        let mut follower_cursor = None;
        if backup_complete {
            let dst: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::with_defaults());
            restore_backup(&storage, &prefix, &dst, self.config.options.max_levels).map_err(
                |e| self.fail(&fault, format!("restore of complete backup failed: {e}")),
            )?;
            let restored_db = self
                .open(&dst, None)
                .map_err(|e| self.fail(&fault, format!("restored store failed to open: {e}")))?;
            let restored: BTreeMap<Vec<u8>, Vec<u8>> = restored_db
                .scan(b"", usize::MAX)
                .map_err(|e| self.fail(&fault, format!("restored scan failed: {e}")))?
                .into_iter()
                .collect();
            drop(restored_db);
            restored_prefix = Some(on_prefix(&restored).ok_or_else(|| {
                self.fail(
                    &fault,
                    format!(
                        "restored backup ({} keys) matches no acknowledged-history prefix",
                        restored.len()
                    ),
                )
            })?);

            // The real follower bootstraps from the same surviving backup
            // and must land on an acknowledged prefix too.
            let follower = Follower::bootstrap(
                &storage,
                "chaos",
                self.builder(),
                MemStorage::new(SsdDevice::with_defaults()),
            )
            .map_err(|e| self.fail(&fault, format!("follower bootstrap failed: {e}")))?;
            follower
                .poll()
                .map_err(|e| self.fail(&fault, format!("follower poll failed: {e}")))?;
            let fstate: BTreeMap<Vec<u8>, Vec<u8>> = follower
                .db()
                .scan(b"", usize::MAX)
                .map_err(|e| self.fail(&fault, format!("follower scan failed: {e}")))?
                .into_iter()
                .collect();
            if on_prefix(&fstate).is_none() {
                return Err(self.fail(
                    &fault,
                    "follower state matches no acknowledged-history prefix".to_string(),
                ));
            }
            follower_cursor = Some(follower.db().replication_cursor());
        } else {
            // Incomplete checkpoints must be refused, not half-restored.
            let dst: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::with_defaults());
            if restore_backup(&storage, &prefix, &dst, self.config.options.max_levels).is_ok() {
                return Err(self.fail(&fault, "restore accepted an incomplete backup".to_string()));
            }
        }

        Ok(BackupCrashReport {
            crash_op,
            crashed,
            acked_writes: run.acked,
            power_cycle,
            backup_complete,
            restored_prefix,
            follower_cursor,
        })
    }

    /// Sweeps [`ChaosHarness::run_backup_crash`] over `points`.
    pub fn backup_crash_sweep(
        &self,
        points: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<BackupCrashReport>, ChaosFailure> {
        points
            .into_iter()
            .map(|p| self.run_backup_crash(p))
            .collect()
    }

    /// Kills the power on mutating storage operation `crash_op` of the
    /// *follower's* storage — during the bootstrap restore or during a
    /// stream-apply poll — then recovers via the documented recipe
    /// (reopen when the store exists, wipe and re-bootstrap when the
    /// crash predated its creation) and verifies the follower converges
    /// exactly to the primary's final state. `crash_op = 0` never fires
    /// and measures the benign pipeline instead.
    pub fn run_apply_crash(&self, crash_op: u64) -> Result<ApplyCrashReport, ChaosFailure> {
        let fault = FaultStorage::new(
            MemStorage::new(SsdDevice::with_defaults()),
            FaultPlan::crash_at(self.config.seed, crash_op),
        );
        let fdst: Arc<dyn StorageBackend> = fault.clone();

        // The primary runs clean on its own storage; only the follower's
        // disk is faulted.
        let pstorage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::with_defaults());
        let db = self
            .open(&pstorage, None)
            .map_err(|e| self.fail(&fault, format!("primary open failed: {e}")))?;
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ WORKLOAD_STREAM);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let half = self.config.ops / 2;
        let write =
            |db: &LdcDb, i: u64, rng: &mut SmallRng, model: &mut BTreeMap<Vec<u8>, Vec<u8>>| {
                let (key, value) = self.gen_op(rng, i);
                match &value {
                    Some(v) => db.put(&key, v),
                    None => db.delete(&key),
                }
                .map_err(|e| self.fail(&fault, format!("primary write {i} failed: {e}")))?;
                match value {
                    Some(v) => {
                        model.insert(key, v);
                    }
                    None => {
                        model.remove(&key);
                    }
                }
                Ok(())
            };
        for i in 0..half {
            write(&db, i, &mut rng, &mut model)?;
        }
        db.drain_background();
        db.backup_begin("chaos")
            .map_err(|e| self.fail(&fault, format!("backup_begin failed: {e}")))?;

        // Bootstrap through the fault storage: the crash point may land
        // inside the base restore itself.
        let mut follower =
            Follower::bootstrap(&pstorage, "chaos", self.builder(), Arc::clone(&fdst)).ok();

        // Grow the stream past the base checkpoint.
        for i in half..self.config.ops {
            write(&db, i, &mut rng, &mut model)?;
            if (i - half) % 20 == 19 {
                db.flush()
                    .map_err(|e| self.fail(&fault, format!("primary flush failed: {e}")))?;
            }
        }
        db.flush()
            .map_err(|e| self.fail(&fault, format!("primary final flush failed: {e}")))?;
        db.drain_background();

        // Tail it; the crash point fires during the follower's table
        // copies or manifest appends.
        let mut applied_before_crash = 0;
        if let Some(f) = &follower {
            if f.poll().is_err() {
                applied_before_crash = f.db().replication_cursor();
            }
        }
        let crashed = fault.powered_off();
        if crashed {
            fault
                .power_cycle()
                .map_err(|e| self.fail(&fault, format!("follower power cycle failed: {e}")))?;
            drop(follower.take());
            let recovered = if fdst.exists("CURRENT") {
                Follower::reopen(&pstorage, "chaos", self.builder(), Arc::clone(&fdst))
            } else {
                for name in fdst.list() {
                    fdst.delete(&name)
                        .map_err(|e| self.fail(&fault, format!("wipe failed: {e}")))?;
                }
                Follower::bootstrap(&pstorage, "chaos", self.builder(), Arc::clone(&fdst))
            }
            .map_err(|e| self.fail(&fault, format!("follower recovery failed: {e}")))?;
            follower = Some(recovered);
        }
        let follower = follower.ok_or_else(|| {
            self.fail(
                &fault,
                "follower bootstrap failed without a crash".to_string(),
            )
        })?;
        follower
            .poll()
            .map_err(|e| self.fail(&fault, format!("catch-up poll failed: {e}")))?;

        // Exact convergence with the primary's final state.
        for idx in 0..self.config.key_space {
            let key = Self::key_for(idx);
            let got = follower
                .db()
                .get(&key)
                .map_err(|e| self.fail(&fault, format!("follower get failed: {e}")))?;
            if got.as_deref() != model.get(&key).map(|v| v.as_slice()) {
                return Err(self.fail(
                    &fault,
                    format!(
                        "follower diverged on key {} after recovery",
                        String::from_utf8_lossy(&key)
                    ),
                ));
            }
        }
        if follower.lag() != 0 {
            return Err(self.fail(
                &fault,
                format!(
                    "follower still lags {} records after catch-up",
                    follower.lag()
                ),
            ));
        }
        let total = for_each_stream_edit(
            pstorage.as_ref(),
            &backup_prefix("chaos"),
            u64::MAX,
            |_, _| Ok(()),
        )
        .map_err(|e| self.fail(&fault, format!("stream count failed: {e}")))?;
        let final_cursor = follower.db().replication_cursor();
        if final_cursor != total {
            return Err(self.fail(
                &fault,
                format!("follower cursor {final_cursor} != stream length {total}"),
            ));
        }
        Ok(ApplyCrashReport {
            crash_op,
            crashed,
            applied_before_crash,
            final_cursor,
            follower_ops: fault.mutating_ops(),
        })
    }

    /// Sweeps [`ChaosHarness::run_apply_crash`] over `points`.
    pub fn apply_crash_sweep(
        &self,
        points: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<ApplyCrashReport>, ChaosFailure> {
        points
            .into_iter()
            .map(|p| self.run_apply_crash(p))
            .collect()
    }

    /// Runs the workload to completion, flips one bit in a file of
    /// `target`'s family, reopens, and checks that the store either
    /// detects the damage or keeps serving only values that were actually
    /// written.
    pub fn run_bit_flip(&self, target: BitFlipTarget) -> Result<BitFlipReport, ChaosFailure> {
        let fault = FaultStorage::new(
            MemStorage::new(SsdDevice::with_defaults()),
            FaultPlan::new(self.config.seed),
        );
        let storage: Arc<dyn StorageBackend> = fault.clone();

        // Per-key set of every value ever acknowledged (for point-in-time
        // targets) plus the final model (for SSTables, where no data may
        // be lost silently).
        let mut history: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        {
            let db = self
                .open(&storage, None)
                .map_err(|e| self.fail(&fault, format!("open failed: {e}")))?;
            let mut rng = SmallRng::seed_from_u64(self.config.seed ^ WORKLOAD_STREAM);
            for i in 0..self.config.ops {
                let (key, value) = self.gen_op(&mut rng, i);
                match &value {
                    Some(v) => db.put(&key, v),
                    None => db.delete(&key),
                }
                .map_err(|e| self.fail(&fault, format!("write {i} failed: {e}")))?;
                match value {
                    Some(v) => {
                        history.entry(key.clone()).or_default().push(v.clone());
                        model.insert(key, v);
                    }
                    None => {
                        model.remove(&key);
                    }
                }
            }
            db.drain_background();
        }

        // Corrupt the largest file of the family (most likely to hold data).
        let victim = storage
            .list()
            .into_iter()
            .filter(|n| target.matches(n))
            .filter_map(|n| storage.size(&n).ok().map(|s| (s, n)))
            .filter(|(s, _)| *s > 0)
            .max()
            .map(|(_, n)| n)
            .ok_or_else(|| {
                self.fail(
                    &fault,
                    format!("no non-empty {} file to corrupt", target.label()),
                )
            })?;
        let (offset, bit) = fault
            .flip_bit(&victim)
            .map_err(|e| self.fail(&fault, format!("bit flip failed: {e}")))?;

        let db = match self.open(&storage, None) {
            // Refusing to open a corrupt store is detection, not failure.
            Err(e) => {
                return Ok(BitFlipReport {
                    file: victim,
                    offset,
                    bit,
                    outcome: BitFlipOutcome::DetectedAtOpen(e.to_string()),
                })
            }
            Ok(db) => db,
        };

        let mut detected_reads = 0u64;
        for idx in 0..self.config.key_space {
            let key = Self::key_for(idx);
            match db.get(&key) {
                Err(_) => detected_reads += 1,
                Ok(got) => match target {
                    // SSTable damage must not silently lose or alter data:
                    // every read is exact or detected.
                    BitFlipTarget::Sstable => {
                        if got.as_deref() != model.get(&key).map(|v| v.as_slice()) {
                            return Err(self.fail(
                                &fault,
                                format!(
                                    "sstable flip: key {} served wrong value undetected",
                                    String::from_utf8_lossy(&key)
                                ),
                            ));
                        }
                    }
                    // Log/manifest damage recovers to a point in time:
                    // values may be stale or gone, never fabricated.
                    BitFlipTarget::Wal | BitFlipTarget::Manifest => {
                        if let Some(v) = got {
                            let ever = history.get(&key).is_some_and(|vs| vs.contains(&v));
                            if !ever {
                                return Err(self.fail(
                                    &fault,
                                    format!(
                                        "{} flip: key {} served a never-written value",
                                        target.label(),
                                        String::from_utf8_lossy(&key)
                                    ),
                                ));
                            }
                        }
                    }
                },
            }
        }
        match db.scan(b"", usize::MAX) {
            Err(_) => detected_reads += 1,
            Ok(entries) => {
                for (k, v) in entries {
                    let ok = match target {
                        BitFlipTarget::Sstable => model.get(&k).is_some_and(|want| *want == v),
                        BitFlipTarget::Wal | BitFlipTarget::Manifest => {
                            history.get(&k).is_some_and(|vs| vs.contains(&v))
                        }
                    };
                    if !ok {
                        return Err(self.fail(
                            &fault,
                            format!(
                                "{} flip: scan served a wrong value for key {}",
                                target.label(),
                                String::from_utf8_lossy(&k)
                            ),
                        ));
                    }
                }
            }
        }
        let integrity_ok = db.verify_integrity().is_ok();
        let files_quarantined = db.recovery_summary().files_quarantined;
        Ok(BitFlipReport {
            file: victim,
            offset,
            bit,
            outcome: BitFlipOutcome::Reopened {
                detected_reads,
                integrity_ok,
                files_quarantined,
            },
        })
    }

    /// Injects I/O errors with probability `prob` on every mutating
    /// storage operation, verifying fail-stop behaviour: the first write
    /// failure latches, reads keep working, and a clean reopen restores
    /// exactly the acknowledged state.
    pub fn run_io_errors(&self, prob: f64) -> Result<IoErrorReport, ChaosFailure> {
        let fault = FaultStorage::new(
            MemStorage::new(SsdDevice::with_defaults()),
            FaultPlan::io_errors(self.config.seed, prob),
        );
        let storage: Arc<dyn StorageBackend> = fault.clone();
        let mut db = self
            .open(&storage, None)
            .map_err(|e| self.fail(&fault, format!("open failed (error hit creation): {e}")))?;

        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut in_flight: Option<(Vec<u8>, Option<Vec<u8>>)> = None;
        let mut acked = 0u64;
        let mut first_error_op = None;
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ WORKLOAD_STREAM);
        for i in 0..self.config.ops {
            let (key, value) = self.gen_op(&mut rng, i);
            let result = match &value {
                Some(v) => db.put(&key, v),
                None => db.delete(&key),
            };
            match result {
                Ok(()) => {
                    acked += 1;
                    match value {
                        Some(v) => {
                            model.insert(key, v);
                        }
                        None => {
                            model.remove(&key);
                        }
                    }
                }
                Err(_) => {
                    first_error_op = Some(i);
                    in_flight = Some((key, value));
                    // Fail-stop: the background error must latch and
                    // refuse further writes.
                    if db.engine_ref().background_error().is_none() {
                        return Err(self.fail(
                            &fault,
                            "write failed but no background error latched".to_string(),
                        ));
                    }
                    if db.put(b"zz-sentinel", b"x").is_ok() {
                        return Err(self.fail(
                            &fault,
                            "write accepted after background error latched".to_string(),
                        ));
                    }
                    break;
                }
            }
        }
        // Reads are still served while the engine is failed-stop.
        self.verify_exact(&mut db, &model, in_flight.as_ref())
            .map_err(|detail| self.fail(&fault, format!("while latched: {detail}")))?;
        drop(db);

        // Clean process restart on intact storage (no power loss): the
        // acknowledged state must come back exactly.
        fault.disarm();
        let mut db = self
            .open(&storage, None)
            .map_err(|e| self.fail(&fault, format!("reopen failed: {e}")))?;
        self.verify_exact(&mut db, &model, in_flight.as_ref())
            .map_err(|detail| self.fail(&fault, format!("after reopen: {detail}")))?;
        if db
            .get(b"zz-sentinel")
            .map_err(|e| self.fail(&fault, format!("sentinel get failed: {e}")))?
            .is_some()
        {
            return Err(self.fail(
                &fault,
                "refused sentinel write surfaced after reopen".to_string(),
            ));
        }

        Ok(IoErrorReport {
            acked_writes: acked,
            injected_errors: fault.injected_errors(),
            first_error_op,
        })
    }

    /// Fails each file's first `failures` reads transiently and verifies
    /// the engine's retry budget masks them completely: the workload runs
    /// to completion and every read verifies against the model.
    ///
    /// `failures` must stay below the engine's
    /// [`Options::read_retry_attempts`] budget; at or past it, transient
    /// errors surface and the run reports a [`ChaosFailure`].
    pub fn run_transient_reads(&self, failures: u32) -> Result<TransientReadReport, ChaosFailure> {
        let fault = FaultStorage::new(
            MemStorage::new(SsdDevice::with_defaults()),
            FaultPlan::transient_reads(self.config.seed, failures),
        );
        let storage: Arc<dyn StorageBackend> = fault.clone();
        let mut db = self
            .open(&storage, None)
            .map_err(|e| self.fail(&fault, format!("open failed under transient reads: {e}")))?;

        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ WORKLOAD_STREAM);
        for i in 0..self.config.ops {
            let (key, value) = self.gen_op(&mut rng, i);
            match &value {
                Some(v) => db.put(&key, v),
                None => db.delete(&key),
            }
            .map_err(|e| {
                self.fail(
                    &fault,
                    format!("write {i} failed under transient reads: {e}"),
                )
            })?;
            match value {
                Some(v) => {
                    model.insert(key, v);
                }
                None => {
                    model.remove(&key);
                }
            }
        }
        db.drain_background();
        self.verify_exact(&mut db, &model, None)
            .map_err(|detail| self.fail(&fault, detail))?;
        let retries = db.metrics().degraded_counters().transient_retries;
        if failures > 0 && fault.injected_errors() > 0 && retries == 0 {
            return Err(self.fail(
                &fault,
                "transient failures injected but no retry was recorded".to_string(),
            ));
        }
        Ok(TransientReadReport {
            injected_failures: fault.injected_errors(),
            retries_recorded: retries,
        })
    }

    /// The full degraded-mode pipeline: run the workload, flip one bit in
    /// the largest SSTable, then **scrub** (detect), **quarantine** (drop
    /// the corrupt table while serving everything else), **repair** (rebuild
    /// the manifest, salvage WAL remnants), and finally reopen and verify
    /// against the model — no served value may be one that was never
    /// written, and every key outside the quarantined table must still
    /// carry its latest acknowledged value.
    pub fn run_scrub_quarantine_repair(&self) -> Result<ScrubRepairReport, ChaosFailure> {
        let fault = FaultStorage::new(
            MemStorage::new(SsdDevice::with_defaults()),
            FaultPlan::new(self.config.seed),
        );
        let storage: Arc<dyn StorageBackend> = fault.clone();
        let options = Options {
            corruption_policy: CorruptionPolicy::Quarantine,
            ..self.config.options.clone()
        };

        // Per-key set of every acknowledged value: quarantining a table
        // can roll individual keys back in time (a dropped tombstone
        // resurfaces an older value), so "ever written" is the fabrication
        // check; "latest value" is the survival check.
        let mut history: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        {
            let db = self
                .open_with(&storage, None, options.clone())
                .map_err(|e| self.fail(&fault, format!("open failed: {e}")))?;
            let mut rng = SmallRng::seed_from_u64(self.config.seed ^ WORKLOAD_STREAM);
            for i in 0..self.config.ops {
                let (key, value) = self.gen_op(&mut rng, i);
                match &value {
                    Some(v) => db.put(&key, v),
                    None => db.delete(&key),
                }
                .map_err(|e| self.fail(&fault, format!("write {i} failed: {e}")))?;
                match value {
                    Some(v) => {
                        history.entry(key.clone()).or_default().push(v.clone());
                        model.insert(key, v);
                    }
                    None => {
                        model.remove(&key);
                    }
                }
            }
            db.drain_background();
        }

        let victim = storage
            .list()
            .into_iter()
            .filter(|n| BitFlipTarget::Sstable.matches(n))
            .filter_map(|n| storage.size(&n).ok().map(|s| (s, n)))
            .filter(|(s, _)| *s > 0)
            .max()
            .map(|(_, n)| n)
            .ok_or_else(|| self.fail(&fault, "no non-empty sstable to corrupt".to_string()))?;
        let (offset, bit) = fault
            .flip_bit(&victim)
            .map_err(|e| self.fail(&fault, format!("bit flip failed: {e}")))?;

        let mut detected_at_open = false;
        let mut scrub_corruptions = 0u64;
        let mut files_quarantined = 0u64;
        match self.open_with(&storage, None, options.clone()) {
            Err(_) => detected_at_open = true,
            Ok(db) => {
                let scrub = db
                    .scrub()
                    .map_err(|e| self.fail(&fault, format!("scrub pass failed: {e}")))?;
                if scrub.is_clean() {
                    return Err(self.fail(
                        &fault,
                        format!("bit flip in {victim} at byte {offset} evaded the scrub"),
                    ));
                }
                scrub_corruptions = scrub.corruptions.len() as u64;
                files_quarantined = db.quarantined().len() as u64;
                // Degraded serving: every read outside the quarantined
                // table is exact; inside it, keys are gone or rolled back,
                // never fabricated.
                for idx in 0..self.config.key_space {
                    let key = Self::key_for(idx);
                    let got = db.get(&key).map_err(|e| {
                        self.fail(
                            &fault,
                            format!(
                                "degraded get {} errored after quarantine: {e}",
                                String::from_utf8_lossy(&key)
                            ),
                        )
                    })?;
                    if let Some(v) = &got {
                        if !history.get(&key).is_some_and(|vs| vs.contains(v)) {
                            return Err(self.fail(
                                &fault,
                                format!(
                                    "degraded get {} served a never-written value",
                                    String::from_utf8_lossy(&key)
                                ),
                            ));
                        }
                    }
                }
            }
        }

        let repair = repair_db(Arc::clone(&storage), &options)
            .map_err(|e| self.fail(&fault, format!("repair_db failed: {e}")))?;

        let db = self
            .open_with(&storage, None, options.clone())
            .map_err(|e| self.fail(&fault, format!("reopen after repair failed: {e}")))?;
        let mut surviving = 0u64;
        let mut lost = 0u64;
        for idx in 0..self.config.key_space {
            let key = Self::key_for(idx);
            let got = db.get(&key).map_err(|e| {
                self.fail(
                    &fault,
                    format!(
                        "post-repair get {} failed: {e}",
                        String::from_utf8_lossy(&key)
                    ),
                )
            })?;
            let latest = model.get(&key);
            match &got {
                Some(v) => {
                    if latest == Some(v) {
                        surviving += 1;
                    } else if history.get(&key).is_some_and(|vs| vs.contains(v)) {
                        lost += 1; // rolled back with the quarantined table
                    } else {
                        return Err(self.fail(
                            &fault,
                            format!(
                                "post-repair get {} served a never-written value",
                                String::from_utf8_lossy(&key)
                            ),
                        ));
                    }
                }
                None => {
                    if latest.is_some() {
                        lost += 1;
                    } else {
                        surviving += 1;
                    }
                }
            }
        }
        for (k, v) in db
            .scan(b"", usize::MAX)
            .map_err(|e| self.fail(&fault, format!("post-repair scan failed: {e}")))?
        {
            if !history.get(&k).is_some_and(|vs| vs.contains(&v)) {
                return Err(self.fail(
                    &fault,
                    format!(
                        "post-repair scan served a never-written value for {}",
                        String::from_utf8_lossy(&k)
                    ),
                ));
            }
        }
        db.engine_ref()
            .version()
            .check_invariants()
            .map_err(|e| self.fail(&fault, format!("post-repair invariants violated: {e}")))?;
        db.verify_integrity()
            .map_err(|e| self.fail(&fault, format!("post-repair integrity sweep failed: {e}")))?;

        Ok(ScrubRepairReport {
            file: victim,
            offset,
            bit,
            detected_at_open,
            scrub_corruptions,
            files_quarantined,
            repair,
            surviving_keys: surviving,
            lost_keys: lost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_core::CompactionMode;

    fn harness(seed: u64) -> ChaosHarness {
        ChaosHarness::new(ChaosConfig {
            ops: 120,
            ..ChaosConfig::quick(seed, CompactionMode::Udc)
        })
    }

    #[test]
    fn crash_point_early_and_late() {
        let h = harness(1);
        let early = h.run_crash_point(5).unwrap();
        assert!(early.crashed);
        let total = h.measure_storage_ops().unwrap();
        let never = h.run_crash_point(total + 100).unwrap();
        assert!(!never.crashed);
        assert_eq!(never.acked_writes, 120);
    }

    #[test]
    fn crash_point_is_deterministic() {
        let h = harness(2);
        let a = h.run_crash_point(40).unwrap();
        let b = h.run_crash_point(40).unwrap();
        assert_eq!(a.acked_writes, b.acked_writes);
        assert_eq!(a.power_cycle, b.power_cycle);
        assert_eq!(a.recovery, b.recovery);
    }

    #[test]
    fn io_error_run_fail_stops_and_recovers() {
        let report = harness(3).run_io_errors(0.02).unwrap();
        assert!(report.injected_errors > 0, "no errors injected");
        assert!(report.first_error_op.is_some());
    }

    #[test]
    fn transient_reads_are_masked_by_retry_budget() {
        // Engine default budget is 4 attempts; 2 failures per file heal
        // inside it.
        let report = harness(4).run_transient_reads(2).unwrap();
        assert!(
            report.injected_failures > 0,
            "no transient failures injected"
        );
        assert!(report.retries_recorded > 0, "engine recorded no retries");
    }

    #[test]
    fn scrub_quarantine_repair_pipeline_round_trips() {
        let report = harness(5).run_scrub_quarantine_repair().unwrap();
        if !report.detected_at_open {
            assert!(report.scrub_corruptions > 0);
        }
        assert!(
            report.surviving_keys > 0,
            "repair lost every key: {report:?}"
        );
    }

    #[test]
    fn backup_crash_sweep_lands_on_acknowledged_prefixes() {
        use ldc_core::LdcConfig;
        for mode in [
            CompactionMode::Udc,
            CompactionMode::Ldc(LdcConfig::default()),
        ] {
            let h = ChaosHarness::new(ChaosConfig {
                ops: 120,
                ..ChaosConfig::quick(21, mode)
            });
            let profile = h.measure_backup_ops().unwrap();
            assert!(profile.before_checkpoint < profile.checkpoint_done);
            assert!(profile.checkpoint_done < profile.total);
            // One point early in checkpoint creation, one just before its
            // CURRENT marker, one in the middle of the shipping workload.
            let mid_checkpoint = profile.before_checkpoint + 1;
            let late_checkpoint = profile.checkpoint_done - 1;
            let mid_ship = (profile.checkpoint_done + profile.total) / 2;
            let reports = h
                .backup_crash_sweep([mid_checkpoint, late_checkpoint, mid_ship])
                .unwrap();
            assert!(reports.iter().all(|r| r.crashed));
            // Crashes before the marker leave an incomplete (refused)
            // backup; after it, the backup restores to an acknowledged
            // prefix and a follower bootstraps from it.
            assert!(!reports[0].backup_complete);
            assert!(reports[2].backup_complete);
            assert!(reports[2].restored_prefix.is_some());
            assert!(reports[2].follower_cursor.is_some());
        }
    }

    #[test]
    fn backup_crash_is_deterministic() {
        let h = harness(22);
        let profile = h.measure_backup_ops().unwrap();
        let p = (profile.checkpoint_done + profile.total) / 2;
        assert_eq!(
            h.run_backup_crash(p).unwrap(),
            h.run_backup_crash(p).unwrap()
        );
    }

    #[test]
    fn apply_crash_recovers_via_documented_recipe() {
        use ldc_core::LdcConfig;
        for mode in [
            CompactionMode::Udc,
            CompactionMode::Ldc(LdcConfig::default()),
        ] {
            let h = ChaosHarness::new(ChaosConfig {
                ops: 120,
                ..ChaosConfig::quick(23, mode)
            });
            // crash_op 0 never fires: measures the follower-side op space.
            let clean = h.run_apply_crash(0).unwrap();
            assert!(!clean.crashed);
            assert!(clean.final_cursor > 0);
            // Early point lands in the bootstrap restore (wipe +
            // re-bootstrap recovery); late point in the apply poll
            // (reopen + resume from the durable cursor).
            let reports = h
                .apply_crash_sweep([3, clean.follower_ops.saturating_sub(5)])
                .unwrap();
            for r in &reports {
                assert!(r.crashed, "point did not fire: {r:?}");
                assert_eq!(r.final_cursor, clean.final_cursor);
            }
        }
    }

    #[test]
    fn apply_crash_is_deterministic() {
        let h = harness(24);
        let clean = h.run_apply_crash(0).unwrap();
        let p = clean.follower_ops / 2;
        assert_eq!(h.run_apply_crash(p).unwrap(), h.run_apply_crash(p).unwrap());
    }

    #[test]
    fn failure_display_carries_replay_recipe() {
        let failure = ChaosFailure {
            plan: FaultPlan::crash_at(9, 33),
            detail: "test detail".to_string(),
            fault_log: vec!["crash: op 33 append 000002.log".to_string()],
        };
        let text = failure.to_string();
        assert!(text.contains("test detail"));
        assert!(text.contains("seed: 9"));
        assert!(text.contains("Some(33)"));
        assert!(text.contains("crash: op 33"));
    }
}
