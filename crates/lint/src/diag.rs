//! Diagnostics: one machine-readable record per finding.

use std::fmt;

/// How severe a finding is. Only [`Severity::Error`] fails the run;
/// [`Severity::Info`] is advisory (e.g. a stale baseline entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run (non-zero exit, failing `#[test]` gate).
    Error,
    /// Printed but never fails the run.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// One finding: `file:line`, rule id, message, and a concrete suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for file-level findings such as a ratchet breach).
    pub line: usize,
    /// Stable rule id (`determinism`, `panic_safety`, `lock_order`,
    /// `layering`).
    pub rule: &'static str,
    /// Whether this finding fails the run.
    pub severity: Severity,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to suppress it with a reason).
    pub suggestion: String,
}

impl Diagnostic {
    /// New error-severity finding.
    pub fn error(
        file: impl Into<String>,
        line: usize,
        rule: &'static str,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            severity: Severity::Error,
            message: message.into(),
            suggestion: suggestion.into(),
        }
    }

    /// New info-severity finding.
    pub fn info(
        file: impl Into<String>,
        line: usize,
        rule: &'static str,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(file, line, rule, message, suggestion)
        }
    }

    /// `file:line: severity [rule] message; suggestion: ...`
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} [{}] {}; suggestion: {}",
            self.file, self.line, self.severity, self.rule, self.message, self.suggestion
        )
    }

    /// One flat JSON object (for CI annotation).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"severity\":{},\"message\":{},\"suggestion\":{}}}",
            json_str(&self.file),
            self.line,
            json_str(self.rule),
            json_str(&self.severity.to_string()),
            json_str(&self.message),
            json_str(&self.suggestion),
        )
    }
}

/// Minimal JSON string escaping (no external deps by design).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_json() {
        let d = Diagnostic::error("crates/x.rs", 7, "determinism", "bad \"call\"", "use clock");
        assert_eq!(
            d.render(),
            "crates/x.rs:7: error [determinism] bad \"call\"; suggestion: use clock"
        );
        let j = d.to_json();
        assert!(j.contains("\"line\":7"));
        assert!(j.contains("bad \\\"call\\\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
