//! The `ldc-server` service: a TCP front end over N hash-range shards.
//!
//! # Threading model
//!
//! * one **accept** thread;
//! * one **reader** thread per connection (decodes frames, runs
//!   admission, dispatches jobs);
//! * one **writer** thread per connection (serializes responses from
//!   every shard back onto the socket, batching flushes);
//! * one **worker** thread per shard — each shard is a fully independent
//!   [`LdcDb`] (own simulated device, WAL, compaction state) driven by
//!   exactly one thread, so the per-shard operation order determines the
//!   per-shard virtual clock deterministically.
//!
//! A server can also host a **read-only follower**
//! ([`LdcServer::start_follower`]): one shard whose store was
//! bootstrapped from a primary's backup and whose worker tails the
//! backup's edit stream on idle ticks. Writes are rejected with
//! [`Status::ReadOnly`] at dispatch, before admission; `Stats` reports
//! the replication lag and cursor.
//!
//! # Admission control
//!
//! Every shard worker drains a bounded queue ([`AdmissionQueue`]); a
//! full queue rejects immediately with `Overloaded` plus a retry-after
//! hint. Ping and Stats are served by the reader thread and never enter
//! a queue, so liveness probes work under saturation.
//!
//! # Shutdown ordering
//!
//! `shutdown()` (also run on drop) proceeds strictly: stop accepting →
//! half-close every connection's read side (clients still receive
//! in-flight replies) → join readers → send each worker a stop sentinel
//! behind the already-queued jobs → workers drain their queues, then
//! `drain_background()` their shard → join workers and writers. No new
//! work is admitted after the flag flips (readers answer
//! `ShuttingDown`), and no accepted job is dropped. Release any
//! [`ShardPauseGuard`] before shutting down — a paused worker cannot
//! drain.

use std::io::BufReader;
use std::io::BufWriter;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ldc_client::proto::{
    decode_request, encode_response, read_frame, write_frame, FrameError, Request, Response,
    ResponseBody, ServerStats, Status, MAX_FRAME, NO_SHARD,
};
use ldc_core::lsm::{Error as EngineError, Options};
use ldc_core::ssd::{MemStorage, SsdConfig, SsdDevice, StorageBackend};
use ldc_core::{CompactionMode, LdcConfig, LdcDb};
use ldc_obs::lockcheck::{Condvar, Mutex};
use ldc_obs::{Blame, MetricsRegistry, OpType, Trace, TraceCtx, TraceReservoir};
use ldc_sync::Follower;

use crate::admission::{AdmissionQueue, ShardState};
use crate::router::{merge_scan_parts, ShardRouter};

/// Maps an engine error onto the wire status taxonomy: transient storage
/// faults stay retryable, everything else is permanent.
fn status_of(err: &EngineError) -> Status {
    match err {
        EngineError::Storage(e) if e.is_transient() => Status::TransientStorage,
        EngineError::Storage(_) => Status::Storage,
        EngineError::Corruption(_) => Status::Corruption,
        EngineError::InvalidState(_) => Status::InvalidState,
        EngineError::InvalidArgument(_) => Status::InvalidArgument,
    }
}

fn op_type(request: &Request) -> OpType {
    match request {
        Request::Put { .. } => OpType::Put,
        Request::Delete { .. } => OpType::Delete,
        Request::Scan { .. } => OpType::Scan,
        // MultiGet is a batched Get; Ping/Stats never reach a worker.
        _ => OpType::Get,
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of hash-range shards (each an independent store + worker).
    pub shards: usize,
    /// Bound on each shard's admission queue; a full queue rejects.
    pub queue_capacity: usize,
    /// Retry hint attached to `Overloaded` rejections, in milliseconds.
    pub retry_after_ms: u32,
    /// Engine options applied to every shard.
    pub options: Options,
    /// Compaction mechanism (LDC or the UDC baseline) for every shard.
    pub mode: CompactionMode,
    /// Worst-K capacity of the server's network trace reservoir.
    pub net_trace_worst_k: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 64,
            retry_after_ms: 10,
            options: Options::default(),
            mode: CompactionMode::Ldc(LdcConfig::default()),
            net_trace_worst_k: 4,
        }
    }
}

impl ServerConfig {
    /// Small engine options and queues sized for unit tests.
    pub fn small_for_tests() -> Self {
        Self {
            queue_capacity: 16,
            options: Options::small_for_tests(),
            ..Self::default()
        }
    }

    /// Switches every shard to the UDC baseline.
    pub fn udc(mut self) -> Self {
        self.mode = CompactionMode::Udc;
        self
    }
}

#[derive(Debug)]
struct PauseGateInner {
    released: Mutex<bool>,
    cv: Condvar,
}

type PauseGate = Arc<PauseGateInner>;

/// Releases a paused shard worker when dropped (see
/// [`LdcServer::pause_shard`]).
#[derive(Debug)]
pub struct ShardPauseGuard {
    gate: PauseGate,
}

impl Drop for ShardPauseGuard {
    fn drop(&mut self) {
        *self.gate.released.lock() = true;
        self.gate.cv.notify_all();
    }
}

enum Part {
    Scan { start: Vec<u8>, limit: usize },
    MultiGet { keys: Vec<(usize, Vec<u8>)> },
}

enum AggKind {
    Scan { limit: usize },
    MultiGet,
}

#[derive(Default)]
struct AggState {
    scan_parts: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
    values: Vec<Option<Vec<u8>>>,
    max_queue_ns: u64,
    max_service_ns: u64,
    error: Option<(Status, ResponseBody)>,
}

/// Shared completion state of one cross-shard request (scan/multi-get).
/// Whoever decrements `pending` to zero — a worker finishing its part or
/// the reader recording a rejected part — finalizes and replies.
struct Agg {
    req_id: u64,
    op: OpType,
    reply: Sender<Vec<u8>>,
    recv_ns: u64,
    pending: AtomicUsize,
    kind: AggKind,
    state: Mutex<AggState>,
}

/// How long an idle follower worker waits for a job before running a
/// tailing round against the primary's backup stream.
const FOLLOWER_IDLE_POLL: Duration = Duration::from_millis(5);

/// What a shard worker drives: a writable primary store, or a read-only
/// replication follower whose only mutation path is stream tailing. The
/// worker thread is the sole caller of [`Follower::poll`], so applies
/// are serialized even though the handle is shared with stats readers.
enum ShardEngine {
    Primary(Box<LdcDb>),
    Follower(Arc<Follower>),
}

impl ShardEngine {
    fn db(&self) -> &LdcDb {
        match self {
            ShardEngine::Primary(db) => db,
            ShardEngine::Follower(f) => f.db(),
        }
    }
}

enum Job {
    Single {
        req_id: u64,
        request: Request,
        reply: Sender<Vec<u8>>,
        recv_ns: u64,
        enqueue_ns: u64,
    },
    Part {
        agg: Arc<Agg>,
        part: Part,
        enqueue_ns: u64,
    },
    Pause {
        gate: PauseGate,
    },
    /// Explicit tailing round on a follower worker (see
    /// [`LdcServer::poll_follower`]); primaries answer `None`.
    Poll {
        done: Sender<Option<u64>>,
    },
    Stop,
}

struct ServerCtx {
    registry: Arc<MetricsRegistry>,
    reservoir: TraceReservoir,
    router: ShardRouter,
    queues: Vec<AdmissionQueue<Job>>,
    protocol_errors: AtomicU64,
    shutting_down: AtomicBool,
    /// Present only on a follower server; read for stats and the
    /// dispatch-level write rejection. Polling stays on the worker.
    follower: Option<Arc<Follower>>,
    retry_after_ms: u32,
    start: Instant,
    conns: Mutex<Vec<TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerCtx {
    /// Host nanoseconds since server start (monotonic).
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn stats_snapshot(&self) -> ServerStats {
        let (follower, follower_lag, follower_cursor) = match &self.follower {
            Some(f) => {
                let repl = f.stats();
                (true, repl.lag_edits, repl.cursor)
            }
            None => (false, 0, 0),
        };
        ServerStats {
            shards: self.queues.iter().map(|q| q.state().stat()).collect(),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            follower,
            follower_lag,
            follower_cursor,
        }
    }

    /// Records latency, blame breakdown, and the worst-K trace for one
    /// completed request. Span layout: dispatch and reply overhead are
    /// `Net`, queue wait is `Admission`, and the root span's residue —
    /// the shard service time — lands in `Engine`, so the buckets sum to
    /// the request's total host nanoseconds.
    fn finish_trace(
        &self,
        op: OpType,
        recv_ns: u64,
        enqueue_ns: u64,
        dequeue_ns: u64,
        svc_end_ns: u64,
    ) {
        let done_ns = self.now_ns();
        let mut ctx = TraceCtx::new(op, recv_ns);
        ctx.span(Blame::Net, "net_dispatch", recv_ns, enqueue_ns);
        ctx.span(Blame::Admission, "admission_queue", enqueue_ns, dequeue_ns);
        ctx.span(Blame::Net, "net_reply", svc_end_ns, done_ns);
        let trace = ctx.finish(done_ns, self.reservoir.next_op_index(op));
        self.registry
            .record_latency(op, done_ns.saturating_sub(recv_ns));
        self.registry.record_blame(op, &trace.blame_breakdown());
        self.reservoir.offer(trace);
    }
}

fn send_response(reply: &Sender<Vec<u8>>, resp: &Response) {
    let mut body = encode_response(resp);
    if body.len() > MAX_FRAME as usize {
        body = encode_response(&Response::error(
            resp.req_id,
            Status::InvalidArgument,
            "response exceeds maximum frame size",
        ));
    }
    // The connection may already be gone; its reply simply has nowhere
    // to go, which is fine.
    let _ = reply.send(body);
}

fn finalize_agg(ctx: &ServerCtx, agg: &Agg) {
    let (status, body, queue_ns, service_ns) = {
        let mut st = agg.state.lock();
        let queue_ns = st.max_queue_ns;
        let service_ns = st.max_service_ns;
        let (status, body) = match st.error.take() {
            Some((status, body)) => (status, body),
            None => match &agg.kind {
                AggKind::Scan { limit } => (
                    Status::Ok,
                    ResponseBody::Entries(merge_scan_parts(
                        std::mem::take(&mut st.scan_parts),
                        *limit,
                    )),
                ),
                AggKind::MultiGet => (
                    Status::Ok,
                    ResponseBody::Values(std::mem::take(&mut st.values)),
                ),
            },
        };
        (status, body, queue_ns, service_ns)
    };
    send_response(
        &agg.reply,
        &Response {
            req_id: agg.req_id,
            status,
            shard: NO_SHARD,
            queue_ns,
            service_ns,
            body,
        },
    );
    // The widest per-shard queue wait stands in for the admission span.
    let svc_end = ctx.now_ns();
    ctx.finish_trace(
        agg.op,
        agg.recv_ns,
        agg.recv_ns,
        agg.recv_ns.saturating_add(queue_ns),
        svc_end,
    );
}

fn shard_worker(
    ctx: Arc<ServerCtx>,
    engine: ShardEngine,
    shard: u16,
    jobs: Receiver<Job>,
    state: Arc<ShardState>,
) {
    loop {
        let job = match &engine {
            ShardEngine::Primary(_) => match jobs.recv() {
                Ok(job) => job,
                Err(_) => break,
            },
            // A follower worker tails the primary's stream whenever its
            // queue goes idle; a poll failure is retried next tick.
            ShardEngine::Follower(follower) => match jobs.recv_timeout(FOLLOWER_IDLE_POLL) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => {
                    let _ = follower.poll();
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            },
        };
        let db = engine.db();
        match job {
            Job::Stop => break,
            Job::Poll { done } => {
                let applied = match &engine {
                    ShardEngine::Follower(follower) => follower.poll().ok(),
                    ShardEngine::Primary(_) => None,
                };
                let _ = done.send(applied);
            }
            Job::Pause { gate } => {
                let mut released = gate.released.lock();
                while !*released {
                    released = released.wait(&gate.cv);
                }
            }
            Job::Single {
                req_id,
                request,
                reply,
                recv_ns,
                enqueue_ns,
            } => {
                state.on_dequeue();
                let dequeue_ns = ctx.now_ns();
                let clock0 = db.device().clock().now();
                let result = match &request {
                    Request::Put { key, value } => db.put(key, value).map(|_| ResponseBody::None),
                    Request::Get { key } => db.get(key).map(ResponseBody::Value),
                    Request::Delete { key } => db.delete(key).map(|_| ResponseBody::None),
                    // Multi-shard and control ops never arrive as Single.
                    _ => Err(EngineError::InvalidState(
                        "operation misrouted to a shard lane".to_string(),
                    )),
                };
                let service_ns = db.device().clock().now().saturating_sub(clock0);
                let (status, body) = match result {
                    Ok(body) => (Status::Ok, body),
                    Err(e) => (status_of(&e), ResponseBody::Message(e.to_string())),
                };
                // Counted complete *before* the reply goes out so a client
                // that snapshots stats after its response always sees its
                // own op in `completed` (deterministic bench accounting).
                state.on_complete();
                // ldc-lint: allow(determinism_taint) — queue_ns is host-time metadata; payload bytes stay deterministic
                send_response(
                    &reply,
                    &Response {
                        req_id,
                        status,
                        shard,
                        queue_ns: dequeue_ns.saturating_sub(enqueue_ns),
                        service_ns,
                        body,
                    },
                );
                let svc_end = ctx.now_ns();
                ctx.finish_trace(op_type(&request), recv_ns, enqueue_ns, dequeue_ns, svc_end);
            }
            Job::Part {
                agg,
                part,
                enqueue_ns,
            } => {
                state.on_dequeue();
                let dequeue_ns = ctx.now_ns();
                let queue_ns = dequeue_ns.saturating_sub(enqueue_ns);
                let clock0 = db.device().clock().now();
                let outcome = match &part {
                    Part::Scan { start, limit } => db.scan(start, *limit).map(PartResult::Scan),
                    Part::MultiGet { keys } => {
                        let refs: Vec<&[u8]> = keys.iter().map(|(_, k)| k.as_slice()).collect();
                        // One pinned snapshot per shard: the sub-batch is
                        // internally consistent.
                        db.multi_get(&refs)
                            .map(|values| PartResult::Values(keys.clone(), values))
                    }
                };
                let service_ns = db.device().clock().now().saturating_sub(clock0);
                {
                    let mut st = agg.state.lock();
                    st.max_queue_ns = st.max_queue_ns.max(queue_ns);
                    st.max_service_ns = st.max_service_ns.max(service_ns);
                    match outcome {
                        Ok(PartResult::Scan(entries)) => st.scan_parts.push(entries),
                        Ok(PartResult::Values(keys, values)) => {
                            for ((idx, _), value) in keys.into_iter().zip(values) {
                                if let Some(slot) = st.values.get_mut(idx) {
                                    *slot = value;
                                }
                            }
                        }
                        Err(e) => {
                            if st.error.is_none() {
                                st.error =
                                    Some((status_of(&e), ResponseBody::Message(e.to_string())));
                            }
                        }
                    }
                }
                state.on_complete();
                if agg.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    finalize_agg(&ctx, &agg);
                }
            }
        }
    }
    // Part of the shutdown contract: settle all background debt before
    // the shard goes away.
    engine.db().drain_background();
}

enum PartResult {
    Scan(Vec<(Vec<u8>, Vec<u8>)>),
    Values(Vec<(usize, Vec<u8>)>, Vec<Option<Vec<u8>>>),
}

fn admit_part(ctx: &ServerCtx, shard: usize, job: Job, agg: &Arc<Agg>) {
    // An out-of-range shard (impossible via the router) counts as a
    // rejection so the aggregate still finalizes.
    let outcome = match ctx.queues.get(shard) {
        Some(queue) => queue.try_admit(job),
        None => Err(job),
    };
    match outcome {
        Ok(()) => ctx.registry.record_net_accept(),
        Err(_rejected) => {
            ctx.registry.record_net_reject();
            {
                let mut st = agg.state.lock();
                if st.error.is_none() {
                    st.error = Some((
                        Status::Overloaded,
                        ResponseBody::RetryAfterMs(ctx.retry_after_ms),
                    ));
                }
            }
            if agg.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                finalize_agg(ctx, agg);
            }
        }
    }
}

fn dispatch(
    ctx: &Arc<ServerCtx>,
    req_id: u64,
    request: Request,
    reply: &Sender<Vec<u8>>,
    recv_ns: u64,
) {
    match request {
        Request::Ping => send_response(
            reply,
            &Response {
                req_id,
                status: Status::Ok,
                shard: NO_SHARD,
                queue_ns: 0,
                service_ns: 0,
                body: ResponseBody::None,
            },
        ),
        Request::Stats => send_response(
            reply,
            &Response {
                req_id,
                status: Status::Ok,
                shard: NO_SHARD,
                queue_ns: 0,
                service_ns: 0,
                body: ResponseBody::Stats(ctx.stats_snapshot()),
            },
        ),
        _ if ctx.shutting_down.load(Ordering::SeqCst) => send_response(
            reply,
            &Response::error(req_id, Status::ShuttingDown, "server is draining"),
        ),
        // Rejected before admission: a follower's only mutation path is
        // the replication stream, so writes never reach a worker.
        Request::Put { .. } | Request::Delete { .. } if ctx.follower.is_some() => send_response(
            reply,
            &Response::error(
                req_id,
                Status::ReadOnly,
                "read-only replication follower; send writes to the primary",
            ),
        ),
        Request::Put { ref key, .. } | Request::Get { ref key } | Request::Delete { ref key } => {
            let shard = ctx.router.shard_of(key);
            let job = Job::Single {
                req_id,
                request,
                reply: reply.clone(),
                recv_ns,
                enqueue_ns: ctx.now_ns(),
            };
            // The router only hands out in-range shards; a missing queue
            // is treated as a rejection rather than indexed blindly.
            let outcome = match ctx.queues.get(shard) {
                Some(queue) => queue.try_admit(job),
                None => Err(job),
            };
            match outcome {
                Ok(()) => ctx.registry.record_net_accept(),
                Err(_rejected) => {
                    ctx.registry.record_net_reject();
                    send_response(
                        reply,
                        &Response {
                            req_id,
                            status: Status::Overloaded,
                            shard: shard as u16,
                            queue_ns: 0,
                            service_ns: 0,
                            body: ResponseBody::RetryAfterMs(ctx.retry_after_ms),
                        },
                    );
                }
            }
        }
        Request::Scan { start, limit } => {
            let shards = ctx.queues.len();
            let agg = Arc::new(Agg {
                req_id,
                op: OpType::Scan,
                reply: reply.clone(),
                recv_ns,
                pending: AtomicUsize::new(shards),
                kind: AggKind::Scan {
                    limit: limit as usize,
                },
                state: Mutex::new("server/server::state", AggState::default()),
            });
            for shard in 0..shards {
                let job = Job::Part {
                    agg: Arc::clone(&agg),
                    part: Part::Scan {
                        start: start.clone(),
                        limit: limit as usize,
                    },
                    enqueue_ns: ctx.now_ns(),
                };
                // ldc-lint: allow(determinism_taint) — enqueue stamp is host-time metadata for queue-wait reporting
                admit_part(ctx, shard, job, &agg);
            }
        }
        Request::MultiGet { keys } => {
            if keys.is_empty() {
                send_response(
                    reply,
                    &Response {
                        req_id,
                        status: Status::Ok,
                        shard: NO_SHARD,
                        queue_ns: 0,
                        service_ns: 0,
                        body: ResponseBody::Values(Vec::new()),
                    },
                );
                return;
            }
            let total = keys.len();
            let groups = ctx.router.group_keys(&keys);
            type ShardGroup = Vec<(usize, Vec<u8>)>;
            let parts: Vec<(usize, ShardGroup)> = groups
                .into_iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .collect();
            let agg = Arc::new(Agg {
                req_id,
                op: OpType::Get,
                reply: reply.clone(),
                recv_ns,
                pending: AtomicUsize::new(parts.len()),
                kind: AggKind::MultiGet,
                state: Mutex::new(
                    "server/server::state",
                    AggState {
                        values: vec![None; total],
                        ..AggState::default()
                    },
                ),
            });
            for (shard, group) in parts {
                let job = Job::Part {
                    agg: Arc::clone(&agg),
                    part: Part::MultiGet { keys: group },
                    enqueue_ns: ctx.now_ns(),
                };
                // ldc-lint: allow(determinism_taint) — enqueue stamp is host-time metadata for queue-wait reporting
                admit_part(ctx, shard, job, &agg);
            }
        }
    }
}

fn writer_loop(ctx: Arc<ServerCtx>, stream: TcpStream, replies: Receiver<Vec<u8>>) {
    let mut w = BufWriter::new(stream);
    while let Ok(body) = replies.recv() {
        let mut broken = write_frame(&mut w, &body).is_err();
        if !broken {
            ctx.registry.record_net_bytes_out(body.len() as u64 + 4);
        }
        // Batch everything already queued into one flush.
        while let Ok(next) = replies.try_recv() {
            if !broken && write_frame(&mut w, &next).is_ok() {
                ctx.registry.record_net_bytes_out(next.len() as u64 + 4);
            } else {
                broken = true;
            }
        }
        if !broken {
            let _ = w.flush();
        }
        // On a broken pipe, keep draining so shard workers never see a
        // full channel (it is unbounded, but dropping keeps memory flat).
    }
    // Last one out closes the socket: every reply sender is gone, so all
    // in-flight responses have been written. The tracked clone in
    // `ServerCtx::conns` would otherwise hold the connection open and
    // the client would never see EOF.
    let _ = w.flush();
    if let Ok(stream) = w.into_inner() {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

fn serve_connection(ctx: Arc<ServerCtx>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = channel::<Vec<u8>>();
    let wctx = Arc::clone(&ctx);
    let writer = std::thread::spawn(move || writer_loop(wctx, write_half, reply_rx));
    ctx.threads.lock().push(writer);

    let mut reader = BufReader::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(body) => body,
            Err(FrameError::TooLarge { len }) => {
                // The stream cannot be resynchronized without reading the
                // oversized body; refuse and close.
                ctx.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send_response(
                    &reply_tx,
                    &Response::error(
                        0,
                        Status::Protocol,
                        format!("frame length {len} exceeds maximum"),
                    ),
                );
                break;
            }
            // Clean EOF, torn frame, or transport error: connection over.
            Err(_) => break,
        };
        ctx.registry.record_net_bytes_in(body.len() as u64 + 4);
        let recv_ns = ctx.now_ns();
        match decode_request(&body) {
            // ldc-lint: allow(determinism_taint) — receive stamp is host-time metadata for latency spans
            Ok((req_id, request)) => dispatch(&ctx, req_id, request, &reply_tx, recv_ns),
            Err(e) => {
                // Framing is intact (the frame itself was well-delimited),
                // so answer the error and keep serving the connection.
                ctx.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let req_id = body
                    .get(..8)
                    .and_then(|b| b.try_into().ok())
                    .map(u64::from_le_bytes)
                    .unwrap_or(0);
                send_response(
                    &reply_tx,
                    &Response::error(req_id, Status::Protocol, e.to_string()),
                );
            }
        }
    }
}

fn accept_loop(ctx: Arc<ServerCtx>, listener: TcpListener) {
    for conn in listener.incoming() {
        if ctx.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let Ok(track) = stream.try_clone() else {
            continue;
        };
        ctx.conns.lock().push(track);
        let cctx = Arc::clone(&ctx);
        let handle = std::thread::spawn(move || serve_connection(cctx, stream));
        ctx.threads.lock().push(handle);
    }
}

/// A running multi-shard network service over [`LdcDb`] shards.
pub struct LdcServer {
    ctx: Arc<ServerCtx>,
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for LdcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LdcServer")
            .field("addr", &self.addr)
            .field("shards", &self.ctx.queues.len())
            .finish()
    }
}

impl LdcServer {
    /// Builds the shards, binds a loopback listener on an ephemeral
    /// port, and starts serving. Use [`LdcServer::local_addr`] to learn
    /// the address.
    pub fn start(config: ServerConfig) -> std::io::Result<LdcServer> {
        let shards = config.shards.max(1);
        let dbs = LdcDb::builder()
            .options(config.options.clone())
            .mode(config.mode.clone())
            .build_shards(shards)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let engines = dbs
            .into_iter()
            .map(|db| ShardEngine::Primary(Box::new(db)))
            .collect();
        Self::start_with_engines(&config, engines, None)
    }

    /// Starts a **read-only follower** server: bootstraps a single store
    /// from backup `backup_name` on `src` (the primary's storage), then
    /// serves reads from it while its worker tails the backup's edit
    /// stream on idle ticks. Writes are answered with
    /// [`Status::ReadOnly`] before admission. A follower replicates one
    /// primary stream, so it always runs exactly one shard regardless of
    /// `config.shards`; `config.options.max_levels` must match the
    /// primary's.
    pub fn start_follower(
        config: ServerConfig,
        src: Arc<dyn StorageBackend>,
        backup_name: &str,
    ) -> std::io::Result<LdcServer> {
        let builder = LdcDb::builder()
            .options(config.options.clone())
            .mode(config.mode.clone());
        let dst: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::new(SsdConfig::default()));
        let follower = Arc::new(
            Follower::bootstrap(&src, backup_name, builder, dst)
                .map_err(|e| std::io::Error::other(e.to_string()))?,
        );
        let engines = vec![ShardEngine::Follower(Arc::clone(&follower))];
        Self::start_with_engines(&config, engines, Some(follower))
    }

    // Host time is legitimate in the network tier: queue waits are real
    // waits. Virtual time stays per-shard, measured by the workers.
    #[allow(clippy::disallowed_methods)]
    fn start_with_engines(
        config: &ServerConfig,
        engines: Vec<ShardEngine>,
        follower: Option<Arc<Follower>>,
    ) -> std::io::Result<LdcServer> {
        let shards = engines.len();
        let mut queues = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (queue, rx) = AdmissionQueue::new(config.queue_capacity);
            queues.push(queue);
            receivers.push(rx);
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        // Grab the per-shard states before the queues move into `ctx`, so
        // the worker spawn loop needs no positional indexing.
        let states: Vec<_> = queues.iter().map(|q| Arc::clone(q.state())).collect();
        let ctx = Arc::new(ServerCtx {
            registry: Arc::new(MetricsRegistry::new()),
            reservoir: TraceReservoir::new(config.net_trace_worst_k.max(1), 0x6e65_745f),
            router: ShardRouter::new(shards),
            queues,
            protocol_errors: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            follower,
            retry_after_ms: config.retry_after_ms.max(1),
            start: Instant::now(),
            conns: Mutex::new("server/server::conns", Vec::new()),
            threads: Mutex::new("server/server::threads", Vec::new()),
        });
        let workers = engines
            .into_iter()
            .zip(receivers)
            .zip(states)
            .enumerate()
            .map(|(i, ((engine, rx), state))| {
                let wctx = Arc::clone(&ctx);
                // Reply frames carry host queue/service waits as metadata;
                // replay-compared payload bytes come from the engine only.
                // ldc-lint: allow(determinism_taint) — host queue metadata in reply frames is intentional
                std::thread::spawn(move || shard_worker(wctx, engine, i as u16, rx, state))
            })
            .collect();
        let actx = Arc::clone(&ctx);
        // ldc-lint: allow(determinism_taint) — connection loop stamps host receive times by design
        let accept = std::thread::spawn(move || accept_loop(actx, listener));
        Ok(LdcServer {
            ctx,
            addr,
            workers,
            accept: Some(accept),
        })
    }

    /// The loopback address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.ctx.queues.len()
    }

    /// The server's network metrics registry: accepted/rejected
    /// counters, per-op latency histograms (host time), and the
    /// `admission`/`net`/`engine` blame totals.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.ctx.registry)
    }

    /// Current per-shard admission statistics plus protocol-error count
    /// (the same snapshot the wire `Stats` op returns).
    pub fn stats_snapshot(&self) -> ServerStats {
        self.ctx.stats_snapshot()
    }

    /// Follower only: runs one synchronous tailing round on the shard
    /// worker (the sole `poll` caller, so applies stay serialized) and
    /// returns how many stream records it applied. `None` on a primary
    /// server, when the worker is gone, or when the poll itself failed.
    pub fn poll_follower(&self) -> Option<u64> {
        self.ctx.follower.as_ref()?;
        let (done_tx, done_rx) = channel();
        if !self.ctx.queues.first()?.force(Job::Poll { done: done_tx }) {
            return None;
        }
        done_rx.recv().ok().flatten()
    }

    /// Follower only: stream records shipped by the primary but not yet
    /// applied here, as of the last tailing round. `None` on a primary.
    pub fn replication_lag(&self) -> Option<u64> {
        self.ctx.follower.as_ref().map(|f| f.lag())
    }

    /// Instantaneous per-shard queue depths (benchmark sampling).
    pub fn queue_depths(&self) -> Vec<u32> {
        self.ctx.queues.iter().map(|q| q.state().depth()).collect()
    }

    /// The worst network-level request traces captured so far.
    pub fn worst_net_traces(&self) -> Vec<Trace> {
        self.ctx.reservoir.all_worst()
    }

    /// Parks `shard`'s worker until the returned guard is dropped. The
    /// pause job rides the normal lane behind queued work, so requests
    /// admitted afterwards pile up in the bounded queue — the
    /// deterministic way to demonstrate admission rejections. Returns
    /// `None` for an unknown shard or a stopped worker. Release the
    /// guard before `shutdown()`.
    pub fn pause_shard(&self, shard: usize) -> Option<ShardPauseGuard> {
        let queue = self.ctx.queues.get(shard)?;
        let gate: PauseGate = Arc::new(PauseGateInner {
            released: Mutex::new("server/server::released", false),
            cv: Condvar::new(),
        });
        if queue.force(Job::Pause {
            gate: Arc::clone(&gate),
        }) {
            Some(ShardPauseGuard { gate })
        } else {
            None
        }
    }

    /// Drains and stops the server (see the module docs for the exact
    /// ordering). Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.ctx.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Half-close read sides: readers wind down, clients still
        // receive every in-flight reply.
        for conn in self.ctx.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
        // Stop sentinels queue *behind* all admitted work: workers drain
        // their queues, drain_background their shard, then exit.
        for queue in &self.ctx.queues {
            queue.force(Job::Stop);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Readers exit on EOF; writers exit once readers and the drained
        // jobs dropped their reply senders. Loop: a reader registers its
        // writer's handle, so the list can grow while we join.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut guard = self.ctx.threads.lock();
                guard.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for LdcServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}
