//! Ablation — the paper's analytical model (§II-B, §III-C) against the
//! measured system.
//!
//! Checks the two theorem-level claims end-to-end: UDC/LDC write
//! amplification should differ by roughly the fan-out (Theorems 2.1 and
//! 3.1), and Eq. (2) should predict the measured mixed throughput from the
//! measured read/write rates to within a small factor.

use ldc_bench::prelude::*;
use ldc_core::model::{self, ModelParams};

fn main() {
    let args = CommonArgs::parse(40_000);
    let spec = WorkloadSpec::write_only(args.ops)
        .with_codec(args.codec())
        .with_seed(args.seed);
    let options = paper_scaled_options();
    let (udc, ldc) = run_both(&options, &SsdConfig::default(), &spec);

    let ingested_udc = udc.io.write_bytes_for(IoClass::WalWrite).max(1);
    let ingested_ldc = ldc.io.write_bytes_for(IoClass::WalWrite).max(1);
    let measured_waf_udc = udc.io.lsm_write_amplification(ingested_udc);
    let measured_waf_ldc = ldc.io.lsm_write_amplification(ingested_ldc);

    let params = ModelParams {
        fan_out: options.fan_out as f64,
        sstable_bytes: options.sstable_bytes as f64,
        total_bytes: (args.ops * (16 + args.value_bytes as u64)) as f64,
        l0_files: options.l0_compaction_trigger as f64,
    };
    let rows = vec![
        vec![
            "write amp (UDC)".into(),
            format!("{:.1}", model::write_amp_udc(&params)),
            format!("{measured_waf_udc:.1}"),
        ],
        vec![
            "write amp (LDC)".into(),
            format!("{:.1}", model::write_amp_ldc(&params)),
            format!("{measured_waf_ldc:.1}"),
        ],
        vec![
            "UDC/LDC write-amp ratio".into(),
            format!("{:.1}", options.fan_out as f64),
            format!("{:.1}", measured_waf_udc / measured_waf_ldc),
        ],
    ];
    print_table(
        args.csv,
        &format!(
            "Model check: Theorems 2.1/3.1 on a write-only load ({} ops)",
            args.ops
        ),
        &["quantity", "model (order-of)", "measured"],
        &rows,
    );
    println!(
        "\nNote: the theorems are asymptotic per-entry lifetime bounds; at \
         finite scale entries have not yet migrated through every level, so \
         measured values sit below the model. The *ratio* between UDC and \
         LDC is the reproduction target."
    );

    // Eq. (2) sanity on a balanced mix.
    let spec = WorkloadSpec::read_write_balanced(args.ops / 2)
        .with_codec(args.codec())
        .with_seed(args.seed);
    let (udc_b, ldc_b) = run_both(&options, &SsdConfig::default(), &spec);
    let predict = |r: &ExperimentResult| {
        let write_rate = 1e9 / r.report.writes.mean().max(1.0);
        let read_rate = 1e9 / r.report.reads.mean().max(1.0);
        model::total_throughput(write_rate, read_rate, 0.5)
    };
    let rows = vec![
        vec![
            "UDC".into(),
            format!("{:.0}", predict(&udc_b)),
            format!("{:.0}", udc_b.throughput()),
        ],
        vec![
            "LDC".into(),
            format!("{:.0}", predict(&ldc_b)),
            format!("{:.0}", ldc_b.throughput()),
        ],
    ];
    print_table(
        args.csv,
        "Model check: Eq. (2) total throughput on RWB",
        &["system", "Eq. (2) prediction (ops/s)", "measured (ops/s)"],
        &rows,
    );
}
