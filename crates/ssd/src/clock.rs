//! Virtual time.
//!
//! All experiments in this reproduction run in *virtual time*: the clock only
//! advances when the simulated device (or an explicitly modelled CPU cost)
//! charges time to it. This makes every run deterministic and makes latency
//! and throughput pure functions of the I/O schedule — which is exactly what
//! the paper's comparisons are about.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in (or span of) virtual time, in nanoseconds.
pub type Nanos = u64;

/// A shared, monotonically advancing virtual clock.
///
/// Cloning a `VirtualClock` yields a handle to the *same* underlying clock;
/// the device, the database engine, and the measurement harness all share
/// one instance.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.now.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta` nanoseconds and returns the new time.
    pub fn advance(&self, delta: Nanos) -> Nanos {
        self.now.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Convenience: advance by a number of microseconds.
    pub fn advance_micros(&self, micros: u64) -> Nanos {
        self.advance(micros.saturating_mul(1_000))
    }

    /// Rewinds the clock to `t` (no-op if `t` is in the future).
    ///
    /// Simulator-internal: the engine executes background work (flush,
    /// compaction) eagerly for correctness, measures the time it charged,
    /// rewinds, and re-books that time on a background lane so foreground
    /// requests only pay for it through explicit stalls and contention.
    pub fn rewind_to(&self, t: Nanos) {
        let _ = self
            .now
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (t < cur).then_some(t)
            });
    }

    /// Converts a span of virtual nanoseconds to floating-point seconds.
    pub fn to_secs(nanos: Nanos) -> f64 {
        nanos as f64 / 1e9
    }
}

/// Categories used to reproduce the paper's Table I time breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeCategory {
    /// Time spent inside compaction work (the paper's `DoCompactionWork`).
    CompactionWork,
    /// Modelled file-system/kernel overhead (open/sync/delete bookkeeping).
    FileSystem,
    /// Foreground write-path time (the paper's `DoWrite`: WAL + memtable).
    ForegroundWrite,
    /// Foreground read-path time (table lookups, block reads).
    ForegroundRead,
    /// Anything else (manifest maintenance, cache management, ...).
    Other,
}

impl TimeCategory {
    /// All categories, in the order used for reports.
    pub const ALL: [TimeCategory; 5] = [
        TimeCategory::CompactionWork,
        TimeCategory::FileSystem,
        TimeCategory::ForegroundWrite,
        TimeCategory::ForegroundRead,
        TimeCategory::Other,
    ];

    /// Human-readable label matching the paper's Table I rows.
    pub fn label(self) -> &'static str {
        match self {
            TimeCategory::CompactionWork => "DoCompactionWork",
            TimeCategory::FileSystem => "file system",
            TimeCategory::ForegroundWrite => "DoWrite",
            TimeCategory::ForegroundRead => "DoRead",
            TimeCategory::Other => "Others",
        }
    }

    fn index(self) -> usize {
        match self {
            TimeCategory::CompactionWork => 0,
            TimeCategory::FileSystem => 1,
            TimeCategory::ForegroundWrite => 2,
            TimeCategory::ForegroundRead => 3,
            TimeCategory::Other => 4,
        }
    }
}

/// Accumulates virtual time per [`TimeCategory`].
///
/// The engine wraps phases of work in [`TimeLedger::record`] or a
/// [`TimerGuard`]; the Table I experiment reads the totals back out.
#[derive(Debug, Default)]
pub struct TimeLedger {
    buckets: [AtomicU64; 5],
}

impl TimeLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `nanos` of virtual time to `category`.
    pub fn record(&self, category: TimeCategory, nanos: Nanos) {
        self.buckets[category.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total time recorded against `category`.
    pub fn get(&self, category: TimeCategory) -> Nanos {
        self.buckets[category.index()].load(Ordering::Relaxed)
    }

    /// Sum over all categories.
    pub fn total(&self) -> Nanos {
        TimeCategory::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Fraction of total time spent in `category` (0.0 if nothing recorded).
    pub fn fraction(&self, category: TimeCategory) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(category) as f64 / total as f64
        }
    }

    /// Resets all buckets to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// RAII guard that records the virtual time elapsed between construction and
/// drop against a [`TimeCategory`].
pub struct TimerGuard<'a> {
    ledger: &'a TimeLedger,
    clock: &'a VirtualClock,
    category: TimeCategory,
    start: Nanos,
}

impl std::fmt::Debug for TimerGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerGuard")
            .field("category", &self.category)
            .field("start", &self.start)
            .finish_non_exhaustive()
    }
}

impl<'a> TimerGuard<'a> {
    /// Starts timing `category` on `clock`, recording into `ledger` on drop.
    pub fn new(ledger: &'a TimeLedger, clock: &'a VirtualClock, category: TimeCategory) -> Self {
        Self {
            ledger,
            clock,
            category,
            start: clock.now(),
        }
    }
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.clock.now().saturating_sub(self.start);
        self.ledger.record(self.category, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.advance(5), 5);
        assert_eq!(clock.advance(10), 15);
        assert_eq!(clock.now(), 15);
    }

    #[test]
    fn clock_handles_are_shared() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(100);
        assert_eq!(b.now(), 100);
        b.advance_micros(1);
        assert_eq!(a.now(), 1_100);
    }

    #[test]
    fn to_secs_converts() {
        assert!((VirtualClock::to_secs(1_500_000_000) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ledger_accumulates_and_fractions() {
        let ledger = TimeLedger::new();
        ledger.record(TimeCategory::CompactionWork, 600);
        ledger.record(TimeCategory::FileSystem, 200);
        ledger.record(TimeCategory::ForegroundWrite, 100);
        ledger.record(TimeCategory::Other, 100);
        assert_eq!(ledger.total(), 1000);
        assert!((ledger.fraction(TimeCategory::CompactionWork) - 0.6).abs() < 1e-12);
        assert_eq!(ledger.get(TimeCategory::ForegroundRead), 0);
        ledger.reset();
        assert_eq!(ledger.total(), 0);
    }

    #[test]
    fn fraction_of_empty_ledger_is_zero() {
        let ledger = TimeLedger::new();
        assert_eq!(ledger.fraction(TimeCategory::Other), 0.0);
    }

    #[test]
    fn timer_guard_records_elapsed_time() {
        let ledger = TimeLedger::new();
        let clock = VirtualClock::new();
        {
            let _guard = TimerGuard::new(&ledger, &clock, TimeCategory::CompactionWork);
            clock.advance(42);
        }
        assert_eq!(ledger.get(TimeCategory::CompactionWork), 42);
    }

    #[test]
    fn category_labels_match_paper_table() {
        assert_eq!(TimeCategory::CompactionWork.label(), "DoCompactionWork");
        assert_eq!(TimeCategory::FileSystem.label(), "file system");
        assert_eq!(TimeCategory::ForegroundWrite.label(), "DoWrite");
    }
}
