//! Sampling helpers (`prop::sample`).

use crate::strategy::Arbitrary;
use crate::test_runner::TestRng;

/// An index into a collection whose size is unknown at generation time;
/// scaled into `[0, len)` by [`Index::index`].
#[derive(Debug, Clone, Copy)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Scales the raw sample into `[0, len)`.
    ///
    /// # Panics
    /// Panics when `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((self.raw as u128 * len as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary_from(rng: &mut TestRng) -> Self {
        Self {
            raw: rng.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_stays_in_bounds() {
        let mut rng = TestRng::from_seed(11);
        for len in [1usize, 2, 3, 10, 1000] {
            for _ in 0..100 {
                let ix = Index::arbitrary_from(&mut rng);
                assert!(ix.index(len) < len);
            }
        }
    }
}
