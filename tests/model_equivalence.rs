//! Property-based model equivalence: for arbitrary operation sequences,
//! both compaction mechanisms must behave exactly like an in-memory map —
//! and like each other — while keeping every internal invariant intact.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ldc::{LdcDb, Options};

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        1 => any::<u16>().prop_map(Op::Delete),
        2 => any::<u16>().prop_map(Op::Get),
        1 => (any::<u16>(), 1u8..20).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

fn key(k: u16) -> Vec<u8> {
    // Spread keys so neighbouring u16s do not cluster (forces overlap).
    format!("{:08x}", (k as u64).wrapping_mul(0x9e37_79b9)).into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    // Values big enough that a few hundred force flushes under the tiny
    // test geometry.
    let mut out = format!("v{v:03}k{k:05}").into_bytes();
    out.resize(256, b'.');
    out
}

fn tiny_options() -> Options {
    Options {
        memtable_bytes: 4 << 10,
        sstable_bytes: 4 << 10,
        l1_capacity_bytes: 16 << 10,
        block_bytes: 1 << 10,
        ..Options::default()
    }
}

#[derive(Debug, Clone, Copy)]
enum Policy {
    Ldc,
    Udc,
    Tiered,
}

fn check_sequence(policy: Policy, ops: &[Op]) {
    let mut builder = LdcDb::builder().options(tiny_options());
    builder = match policy {
        Policy::Udc => builder.udc_baseline(),
        Policy::Tiered => builder.size_tiered(),
        Policy::Ldc => builder,
    };
    let db = builder.build().expect("open");
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Put(k, v) => {
                db.put(&key(*k), &value(*k, *v)).expect("put");
                model.insert(key(*k), value(*k, *v));
            }
            Op::Delete(k) => {
                db.delete(&key(*k)).expect("delete");
                model.remove(&key(*k));
            }
            Op::Get(k) => {
                let got = db.get(&key(*k)).expect("get");
                assert_eq!(got.as_ref(), model.get(&key(*k)), "get({k}) diverged");
            }
            Op::Scan(k, n) => {
                let got = db.scan(&key(*k), *n as usize).expect("scan");
                let want: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key(*k)..)
                    .take(*n as usize)
                    .map(|(a, b)| (a.clone(), b.clone()))
                    .collect();
                assert_eq!(got, want, "scan({k},{n}) diverged");
            }
        }
    }
    // Full sweep at the end.
    let all = db.scan(b"", usize::MAX).expect("final scan");
    let want: Vec<(Vec<u8>, Vec<u8>)> = model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
    assert_eq!(all, want, "final state diverged");
    db.engine_ref()
        .version()
        .check_invariants()
        .expect("invariants");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
    })]

    #[test]
    fn ldc_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_sequence(Policy::Ldc, &ops);
    }

    #[test]
    fn udc_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_sequence(Policy::Udc, &ops);
    }

    #[test]
    fn size_tiered_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_sequence(Policy::Tiered, &ops);
    }
}

#[test]
fn heavy_deterministic_sequence_both_policies() {
    // A fixed dense sequence that exercises overwrites, deletes, and scans
    // through multiple flush/merge generations.
    let mut ops = Vec::new();
    for round in 0u8..4 {
        for k in 0u16..300 {
            ops.push(Op::Put(k % 150, round));
            if k % 7 == 0 {
                ops.push(Op::Delete(k % 50));
            }
            if k % 13 == 0 {
                ops.push(Op::Get(k % 150));
                ops.push(Op::Scan(k % 150, 10));
            }
        }
    }
    check_sequence(Policy::Ldc, &ops);
    check_sequence(Policy::Udc, &ops);
    check_sequence(Policy::Tiered, &ops);
}
