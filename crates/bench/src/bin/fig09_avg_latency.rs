//! Fig 9 — average latency across workload mixes, UDC vs LDC.
//!
//! Paper: LDC's average latency drops to 43.3% of UDC's on write-heavy and
//! 45.6% on balanced workloads; read-heavy is comparable.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(50_000);
    let specs = [
        WorkloadSpec::write_heavy(args.ops),
        WorkloadSpec::read_write_balanced(args.ops),
        WorkloadSpec::read_heavy(args.ops),
    ];
    let mut rows = Vec::new();
    for spec in specs {
        let spec = spec.with_codec(args.codec()).with_seed(args.seed);
        let (udc, ldc) = run_both(&paper_scaled_options(), &SsdConfig::default(), &spec);
        let u = udc.report.mean_latency_us();
        let l = ldc.report.mean_latency_us();
        rows.push(vec![
            spec.name.clone(),
            format!("{u:.1}"),
            format!("{l:.1}"),
            format!("{:.1}%", 100.0 * l / u.max(1e-9)),
        ]);
    }
    print_table(
        args.csv,
        &format!("Fig 9: average latency (us), {} ops per workload", args.ops),
        &["workload", "UDC (us)", "LDC (us)", "LDC/UDC"],
        &rows,
    );
    println!("\nPaper reference: LDC/UDC = 43.3% (WH), 45.6% (RWB), ~100% (RH).");
}
