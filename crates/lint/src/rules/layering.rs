//! Rule `layering`: crate dependencies must respect the layer DAG
//!
//! ```text
//! obs  <-  ssd  <-  lsm  <-  core  <-  {chaos, workload, sync}  <-  bench
//!                            core  <-  client  <-  server  <-  bench
//!                            sync  <-  {chaos, server}
//! ```
//!
//! Lower layers must never know about higher layers: `ldc-obs` is pure
//! observability, `ldc-ssd` is the device model, `ldc-lsm` the engine,
//! `ldc-core` the LDC policy glue, and `chaos`/`workload`/`bench` are
//! harnesses on top. The network tier sits beside the harnesses:
//! `client` (wire protocol + connection) and `server` may speak to the
//! engine only through `core`'s facade — never `lsm` or `ssd` directly —
//! and `client` must not know `server` exists (the protocol module lives
//! client-side precisely so the dependency points that way). Both
//! `Cargo.toml` `[dependencies]` sections and `use ldc_*` tokens in
//! source are checked, so an accidental `use ldc_core::...` inside
//! `ldc-lsm` fails even before the build does.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::lexer::{token_positions, SourceView};

/// Stable rule id.
pub const RULE: &str = "layering";

/// `crate name -> ldc crates it may depend on`. The root umbrella crate
/// (`ldc`), the shims, and `lint` itself are exempt.
pub fn allowed_deps() -> BTreeMap<&'static str, &'static [&'static str]> {
    let mut m: BTreeMap<&'static str, &'static [&'static str]> = BTreeMap::new();
    m.insert("obs", &[]);
    m.insert("ssd", &["obs"]);
    m.insert("lsm", &["obs", "ssd"]);
    m.insert("core", &["obs", "ssd", "lsm"]);
    // The chaos harness also drives the real replication follower.
    m.insert("chaos", &["obs", "ssd", "lsm", "core", "sync"]);
    m.insert("workload", &["obs", "ssd", "lsm", "core"]);
    // The replication follower reaches the engine only through `core`'s
    // facade and re-exports, exactly like the network tier.
    m.insert("sync", &["obs", "core"]);
    m.insert("client", &["obs", "core", "workload"]);
    m.insert("server", &["obs", "core", "workload", "client", "sync"]);
    m.insert(
        "bench",
        &[
            "obs", "ssd", "lsm", "core", "chaos", "workload", "sync", "client", "server",
        ],
    );
    // The lint crate reads the lock table through the runtime sanitizer's
    // parser (`ldc_obs::lockcheck`), so the two can never disagree.
    m.insert("lint", &["obs"]);
    m
}

/// `ldc-obs` / `ldc_obs` → `obs` (or `None` for non-ldc names).
fn layer_of(dep: &str) -> Option<&str> {
    dep.strip_prefix("ldc-")
        .or_else(|| dep.strip_prefix("ldc_"))
}

/// The crate a workspace-relative path belongs to (`crates/lsm/src/db.rs`
/// → `lsm`), skipping shims.
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let name = rest.split('/').next()?;
    if name == "shims" {
        return None;
    }
    Some(name)
}

/// Checks one crate manifest (`crates/<name>/Cargo.toml` contents).
pub fn check_manifest(path: &str, manifest: &str) -> Vec<Diagnostic> {
    let Some(krate) = crate_of(path) else {
        return Vec::new();
    };
    let allowed = allowed_deps();
    let Some(&allow) = allowed.get(krate) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut in_deps = false;
    for (i, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // dev-dependencies may reach anywhere (tests aren't layered).
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(dep) = line.split(['=', '.']).next().map(str::trim) else {
            continue;
        };
        let Some(layer) = layer_of(dep) else {
            continue;
        };
        if !allow.contains(&layer) {
            out.push(Diagnostic::error(
                path,
                i + 1,
                RULE,
                format!(
                    "crate `{krate}` must not depend on `ldc-{layer}` \
                     (layering: obs <- ssd <- lsm <- core <- harnesses)"
                ),
                "move the shared code down a layer or invert the dependency \
                 with a trait defined in the lower crate",
            ));
        }
    }
    out
}

/// Checks `ldc_*` tokens in one source file against the owning crate's
/// allowance. Catches paths that bypass Cargo (e.g. behind `cfg`).
pub fn check_source(path: &str, view: &SourceView) -> Vec<Diagnostic> {
    let Some(krate) = crate_of(path) else {
        return Vec::new();
    };
    let allowed = allowed_deps();
    let Some(&allow) = allowed.get(krate) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for layer in [
        "obs", "ssd", "lsm", "core", "chaos", "workload", "sync", "client", "server", "bench",
    ] {
        if layer == krate || allow.contains(&layer) {
            continue;
        }
        let token = format!("ldc_{layer}");
        for at in token_positions(&view.code, &token) {
            let line = view.line_of(at);
            if view.is_test_line(line) || view.is_suppressed(line, RULE) {
                continue;
            }
            out.push(Diagnostic::error(
                path,
                line,
                RULE,
                format!("crate `{krate}` references `{token}` — a higher (or sibling) layer"),
                "depend only downward: obs <- ssd <- lsm <- core <- harnesses",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_violation_flagged() {
        let bad = "[package]\nname = \"ldc-ssd\"\n\n[dependencies]\nldc-lsm.workspace = true\n";
        let d = check_manifest("crates/ssd/Cargo.toml", bad);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("must not depend on `ldc-lsm`"));
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn manifest_downward_deps_pass() {
        let ok = "[package]\nname = \"ldc-lsm\"\n\n[dependencies]\nldc-obs.workspace = true\nldc-ssd = { path = \"../ssd\" }\n";
        assert!(check_manifest("crates/lsm/Cargo.toml", ok).is_empty());
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let ok = "[package]\nname = \"ldc-ssd\"\n\n[dev-dependencies]\nldc-lsm.workspace = true\n";
        assert!(check_manifest("crates/ssd/Cargo.toml", ok).is_empty());
    }

    #[test]
    fn source_use_of_higher_layer_flagged() {
        let v = SourceView::new("use ldc_core::policy::Ldc;\n");
        let d = check_source("crates/lsm/src/db.rs", &v);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("ldc_core"));
    }

    #[test]
    fn source_downward_use_passes_and_tests_exempt() {
        let v = SourceView::new("use ldc_obs::sink::Sink;\n");
        assert!(check_source("crates/lsm/src/db.rs", &v).is_empty());
        let t = SourceView::new("#[cfg(test)]\nmod tests { use ldc_core::x; }\n");
        assert!(check_source("crates/lsm/src/db.rs", &t).is_empty());
    }

    #[test]
    fn shims_and_root_are_exempt() {
        let v = SourceView::new("use ldc_bench::x;\n");
        assert!(check_source("crates/shims/rand/src/lib.rs", &v).is_empty());
        assert!(check_source("src/lib.rs", &v).is_empty());
    }
}
