//! Integration tests for the backup/replication tier: a restored backup
//! equals the primary's acknowledged model for arbitrary histories, a
//! follower's storage is byte-deterministic across identical runs, and an
//! online checkpoint taken while compactions are in flight snapshots
//! exactly the acknowledged state — in both compaction modes.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use ldc::lsm::{backup_prefix, restore_backup, restore_checkpoint};
use ldc::ssd::{IoClass, MemStorage, SsdConfig, SsdDevice, StorageBackend};
use ldc::sync::Follower;
use ldc::{CompactionMode, LdcConfig, LdcDb, Options};

fn storage() -> Arc<dyn StorageBackend> {
    MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()))
}

fn tiny_options() -> Options {
    Options {
        memtable_bytes: 4 << 10,
        sstable_bytes: 4 << 10,
        l1_capacity_bytes: 16 << 10,
        block_bytes: 1 << 10,
        ..Options::default()
    }
}

fn modes() -> [CompactionMode; 2] {
    [
        CompactionMode::Udc,
        CompactionMode::Ldc(LdcConfig::default()),
    ]
}

fn key(k: u16) -> Vec<u8> {
    format!("{:08x}", (k as u64).wrapping_mul(0x9e37_79b9)).into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    let mut out = format!("v{v:03}k{k:05}").into_bytes();
    out.resize(200, b'.');
    out
}

fn full_scan(db: &LdcDb) -> BTreeMap<Vec<u8>, Vec<u8>> {
    db.scan(&[], usize::MAX).unwrap().into_iter().collect()
}

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u16>().prop_map(Op::Delete),
        1 => Just(Op::Flush),
    ]
}

/// Applies `ops` to `db` and the model; `backup_at` starts the stream
/// mid-history so the restore exercises base checkpoint + incremental
/// records together.
fn drive(db: &LdcDb, ops: &[Op], backup_at: usize, model: &mut BTreeMap<Vec<u8>, Vec<u8>>) {
    for (i, op) in ops.iter().enumerate() {
        if i == backup_at {
            db.drain_background();
            db.backup_begin("prop").unwrap();
        }
        match op {
            Op::Put(k, v) => {
                db.put(&key(*k), &value(*k, *v)).unwrap();
                model.insert(key(*k), value(*k, *v));
            }
            Op::Delete(k) => {
                db.delete(&key(*k)).unwrap();
                model.remove(&key(*k));
            }
            Op::Flush => db.flush().unwrap(),
        }
    }
    // The final flush puts every acknowledged write into the version, so
    // the shipped stream captures the entire history.
    db.flush().unwrap();
    db.drain_background();
    db.backup_end().expect("stream was armed");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// For arbitrary histories, restoring the backup (base checkpoint +
    /// incremental stream) yields exactly the primary's acknowledged
    /// key space, under both compaction modes.
    #[test]
    fn restore_equals_model(
        ops in prop::collection::vec(op_strategy(), 1..120),
        backup_frac in 0u32..1000,
    ) {
        let backup_at = ops.len() * backup_frac as usize / 1000;
        for mode in modes() {
            let src = storage();
            let db = LdcDb::builder()
                .options(tiny_options())
                .mode(mode.clone())
                .storage(Arc::clone(&src))
                .build()
                .unwrap();
            let mut model = BTreeMap::new();
            drive(&db, &ops, backup_at, &mut model);
            prop_assert_eq!(&full_scan(&db), &model, "primary diverged ({:?})", mode);

            let dst = storage();
            restore_backup(&src, &backup_prefix("prop"), &dst, tiny_options().max_levels)
                .unwrap();
            let restored = LdcDb::builder()
                .options(tiny_options())
                .mode(mode.clone())
                .storage(dst)
                .build()
                .unwrap();
            prop_assert_eq!(&full_scan(&restored), &model, "restore diverged ({:?})", mode);
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

type StorageImage = Vec<(String, Vec<u8>)>;

/// One seeded primary+follower run; returns the follower's complete
/// storage image (every file name and its bytes) plus its final state.
fn follower_run(seed: u64, mode: &CompactionMode) -> (StorageImage, BTreeMap<Vec<u8>, Vec<u8>>) {
    let src = storage();
    let db = LdcDb::builder()
        .options(tiny_options())
        .mode(mode.clone())
        .storage(Arc::clone(&src))
        .build()
        .unwrap();
    let mut rng = seed | 1;
    for _ in 0..150 {
        let k = (xorshift(&mut rng) % 512) as u16;
        db.put(&key(k), &value(k, (rng % 199) as u8)).unwrap();
    }
    db.drain_background();
    db.backup_begin("det").unwrap();

    let dst = storage();
    let follower = Follower::bootstrap(
        &src,
        "det",
        LdcDb::builder().options(tiny_options()).mode(mode.clone()),
        Arc::clone(&dst),
    )
    .unwrap();

    for burst in 0..4 {
        for _ in 0..60 {
            let k = (xorshift(&mut rng) % 512) as u16;
            if rng.is_multiple_of(5) {
                db.delete(&key(k)).unwrap();
            } else {
                db.put(&key(k), &value(k, (burst + 1) as u8)).unwrap();
            }
        }
        db.flush().unwrap();
        db.drain_background();
        follower.poll().unwrap();
    }
    assert_eq!(follower.lag(), 0);

    let state = full_scan(follower.db());
    let mut image: Vec<(String, Vec<u8>)> = dst
        .list_dir("")
        .into_iter()
        .map(|name| {
            let bytes = dst.read_all(&name, IoClass::Other).unwrap().to_vec();
            (name, bytes)
        })
        .collect();
    image.sort();
    (image, state)
}

/// Two identically-seeded runs leave the follower with byte-identical
/// storage — every file name and every byte — in both modes.
#[test]
fn follower_catch_up_is_byte_deterministic() {
    for mode in modes() {
        let (image_a, state_a) = follower_run(0xBACC_0FF5, &mode);
        let (image_b, state_b) = follower_run(0xBACC_0FF5, &mode);
        assert_eq!(state_a, state_b, "follower state diverged ({mode:?})");
        assert_eq!(
            image_a.len(),
            image_b.len(),
            "file counts diverged ({mode:?})"
        );
        for ((name_a, bytes_a), (name_b, bytes_b)) in image_a.iter().zip(&image_b) {
            assert_eq!(name_a, name_b, "file sets diverged ({mode:?})");
            assert_eq!(bytes_a, bytes_b, "{name_a} bytes diverged ({mode:?})");
        }
    }
}

/// An online checkpoint taken while compaction debt is outstanding must
/// capture exactly the acknowledged state at the call — not a torn
/// mid-compaction view — and later primary writes must not leak into it.
#[test]
fn checkpoint_while_compacting_is_consistent() {
    for mode in modes() {
        let src = storage();
        let db = LdcDb::builder()
            .options(tiny_options())
            .mode(mode.clone())
            .storage(Arc::clone(&src))
            .build()
            .unwrap();
        let mut model = BTreeMap::new();
        // Enough overlapping overwrites under the tiny geometry to leave
        // flush and compaction debt pending at the checkpoint call.
        for round in 0..3u8 {
            for k in 0..300u16 {
                db.put(&key(k), &value(k, round)).unwrap();
                model.insert(key(k), value(k, round));
            }
        }
        let report = db.checkpoint("racy").unwrap();
        assert!(
            report.files_linked > 0,
            "checkpoint linked no files ({mode:?})"
        );
        let snapshot = model.clone();

        // Keep mutating the primary after the checkpoint returns.
        for k in 0..300u16 {
            db.put(&key(k), &value(k, 9)).unwrap();
            model.insert(key(k), value(k, 9));
        }
        db.drain_background();
        assert_eq!(full_scan(&db), model, "primary diverged ({mode:?})");

        let dst = storage();
        restore_checkpoint(&src, &ldc::lsm::checkpoint_prefix("racy"), &dst).unwrap();
        let restored = LdcDb::builder()
            .options(tiny_options())
            .mode(mode.clone())
            .storage(dst)
            .build()
            .unwrap();
        assert_eq!(
            full_scan(&restored),
            snapshot,
            "checkpoint is not the acknowledged snapshot ({mode:?})"
        );
    }
}
