//! Deterministic case runner and configuration.

/// Test configuration, mirroring the `proptest::test_runner::Config`
/// fields this workspace sets.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted for source compatibility; this shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The generated input did not satisfy a `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A property violation.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "test case failed: {m}"),
            Self::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Deterministic random stream handed to strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds a generator.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)` via multiply-shift.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Stable 64-bit hash of the test name, so each test gets its own
/// deterministic stream (FNV-1a).
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `config.cases` deterministic cases of `f`, panicking on the
/// first failure with the case number and seed (no shrinking).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 16 + 256;
    while passed < config.cases {
        assert!(
            attempts < max_attempts,
            "proptest '{name}': too many rejected inputs ({attempts} attempts for {passed} cases)"
        );
        let seed = base.wrapping_add(attempts);
        let mut rng = TestRng::from_seed(seed);
        attempts += 1;
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {passed} (seed {seed:#x}): {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn runner_counts_cases() {
        let mut n = 0;
        run_cases(
            &ProptestConfig {
                cases: 10,
                ..ProptestConfig::default()
            },
            "count",
            |_| {
                n += 1;
                Ok(())
            },
        );
        assert_eq!(n, 10);
    }

    #[test]
    fn runner_retries_rejects() {
        let mut total = 0u32;
        run_cases(
            &ProptestConfig {
                cases: 5,
                ..ProptestConfig::default()
            },
            "rejects",
            |_| {
                total += 1;
                if total.is_multiple_of(2) {
                    Err(TestCaseError::reject("every other"))
                } else {
                    Ok(())
                }
            },
        );
        assert!(total >= 9);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_panics_on_failure() {
        run_cases(&ProptestConfig::default(), "fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
