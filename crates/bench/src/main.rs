//! `ldc-bench` — multi-tool entry point.
//!
//! The figure/table reproductions live in `src/bin/` (one binary each;
//! `cargo run -p ldc-bench --bin fig08_tail_latency`). This default binary
//! hosts operational subcommands that exercise the engine end to end:
//!
//! ```text
//! cargo run -p ldc-bench -- repair --seed 7
//! cargo run -p ldc-bench -- readwhilewriting --quick
//! ```
//!
//! `repair` drives the full degraded-mode pipeline on a fresh simulated
//! store: run a workload, flip one bit in the largest SSTable, scrub
//! (detect), quarantine (keep serving), `repair_db` (rebuild the manifest,
//! salvage WAL remnants), reopen, and verify every served value against
//! the model. It also proves the transient-read retry budget masks
//! heal-after-N read failures. Exits non-zero on any verification failure,
//! printing the `(seed, plan)` replay recipe.
//!
//! `readwhilewriting` is the db_bench-style mixed workload: one writer
//! overwrites a preloaded keyspace (forcing flushes and compactions) while
//! N reader threads hammer point lookups through the shared handle,
//! measuring host-time read latency. It runs both compaction modes and
//! writes a machine-readable `BENCH_readwhilewriting.json` for CI trend
//! tracking. Latencies here are *host* wall-clock (thread scheduling and
//! all), unlike the figure binaries' virtual-clock numbers — the point is
//! exercising the concurrent read path, not reproducing a paper figure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use ldc_bench::cli::{print_table, CommonArgs};
use ldc_bench::prelude::*;
use ldc_chaos::{ChaosConfig, ChaosHarness};
use ldc_core::CompactionMode;
use ldc_core::LdcConfig;
use ldc_workload::Histogram;

fn usage() -> ! {
    eprintln!("usage: ldc-bench <subcommand> [flags]");
    eprintln!();
    eprintln!("subcommands:");
    eprintln!(
        "  repair            degraded-mode pipeline: scrub -> quarantine -> repair -> verify"
    );
    eprintln!("  readwhilewriting  1 writer + N readers on a shared handle, UDC vs LDC");
    eprintln!("                    [--readers N] [--quick] [--out PATH] + common flags");
    eprintln!();
    eprintln!("figure binaries live under --bin (e.g. --bin fig08_tail_latency)");
    std::process::exit(2);
}

fn run_repair(args: CommonArgs) -> Result<(), String> {
    let config = ChaosConfig {
        ops: args.ops,
        ..ChaosConfig::quick(args.seed, CompactionMode::Ldc(LdcConfig::default()))
    };
    let harness = ChaosHarness::new(config);

    println!("# degraded-mode pipeline (seed {})", args.seed);

    let transient = harness.run_transient_reads(2).map_err(|f| f.to_string())?;
    println!(
        "transient reads: {} injected failures masked by {} retries",
        transient.injected_failures, transient.retries_recorded
    );
    if transient.injected_failures > 0 && transient.retries_recorded == 0 {
        return Err("transient failures were injected but never retried".to_string());
    }

    let report = harness
        .run_scrub_quarantine_repair()
        .map_err(|f| f.to_string())?;
    println!(
        "bit flip: {} byte {} bit {}",
        report.file, report.offset, report.bit
    );
    if report.detected_at_open {
        println!("detection: reopen refused the corrupt store");
    } else {
        println!(
            "detection: scrub reported {} corruption(s), quarantined {} file(s)",
            report.scrub_corruptions, report.files_quarantined
        );
    }
    println!(
        "repair: kept {} table(s), salvaged {}, quarantined {}, thawed {} frozen, {} WAL record(s)",
        report.repair.tables_kept,
        report.repair.tables_salvaged,
        report.repair.tables_quarantined,
        report.repair.frozen_thawed,
        report.repair.wal_records_salvaged
    );
    println!(
        "verify: {} key(s) surviving, {} lost with the quarantined table",
        report.surviving_keys, report.lost_keys
    );
    if report.surviving_keys == 0 {
        return Err("repair lost every key".to_string());
    }
    println!("OK");
    Ok(())
}

/// One mode's results from the read-while-writing race.
struct RwwResult {
    mode: &'static str,
    wall_secs: f64,
    writes: u64,
    reads: u64,
    read_latency_ns: Histogram,
    flushes: u64,
    compactions: u64,
}

impl RwwResult {
    fn p_us(&self, p: f64) -> f64 {
        self.read_latency_ns.percentile(p) as f64 / 1e3
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"mode\":\"{}\",\"wall_secs\":{:.3},\"writes\":{},",
                "\"writes_per_sec\":{:.0},\"reads\":{},\"reads_per_sec\":{:.0},",
                "\"read_p50_us\":{:.1},\"read_p99_us\":{:.1},\"read_p999_us\":{:.1},",
                "\"read_mean_us\":{:.1},\"read_max_us\":{:.1},",
                "\"flushes\":{},\"compactions\":{}}}"
            ),
            self.mode,
            self.wall_secs,
            self.writes,
            self.writes as f64 / self.wall_secs,
            self.reads,
            self.reads as f64 / self.wall_secs,
            self.p_us(50.0),
            self.p_us(99.0),
            self.p_us(99.9),
            self.read_latency_ns.mean() / 1e3,
            self.read_latency_ns.max() as f64 / 1e3,
            self.flushes,
            self.compactions
        )
    }
}

/// Tiny xorshift so reader key choice is seedable without pulling the
/// workload sampler (whose state isn't `Send`-shareable across threads).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One writer overwriting `args.ops` keys over a preloaded keyspace while
/// `readers` threads do point gets through the same shared handle.
// Host wall-clock is the measurement here, not a determinism leak: threads
// race for real, so virtual time cannot describe what readers experience.
#[allow(clippy::disallowed_methods)]
fn run_rww_mode(
    mode: &'static str,
    db: LdcDb,
    args: &CommonArgs,
    readers: u64,
) -> Result<RwwResult, String> {
    let codec = args.codec();
    let preload = args.ops.max(1);
    for i in 0..preload {
        db.put(&codec.key(i), &codec.value(i, 0))
            .map_err(|e| format!("{mode} preload: {e}"))?;
    }
    db.drain_background();

    let stop = AtomicBool::new(false);
    let failed = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let start = Instant::now();
    let mut merged = Histogram::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for r in 0..readers {
            let db = &db;
            let codec = &codec;
            let (stop, failed, reads) = (&stop, &failed, &reads);
            let seed = args.seed;
            handles.push(s.spawn(move || {
                let mut hist = Histogram::new();
                let mut rng = seed ^ (r + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                while !stop.load(Ordering::Relaxed) {
                    let key = codec.key(xorshift(&mut rng) % preload);
                    let t0 = Instant::now();
                    let got = db.get_pinned(&key);
                    hist.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    match got {
                        Ok(Some(_)) => {}
                        Ok(None) => {
                            eprintln!("{mode}: reader {r} lost a preloaded key");
                            failed.store(true, Ordering::Relaxed);
                            return hist;
                        }
                        Err(e) => {
                            eprintln!("{mode}: reader {r} error: {e}");
                            failed.store(true, Ordering::Relaxed);
                            return hist;
                        }
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                hist
            }));
        }
        // This thread is the writer: overwrite the preloaded keyspace so
        // flushes and compactions churn the files readers are pinned to.
        for i in 0..args.ops {
            let idx = i % preload;
            if let Err(e) = db.put(&codec.key(idx), &codec.value(idx, 1 + i / preload)) {
                eprintln!("{mode}: writer error: {e}");
                failed.store(true, Ordering::Relaxed);
                break;
            }
            if failed.load(Ordering::Relaxed) {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            merged.merge(&h.join().expect("reader thread panicked"));
        }
    });
    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);
    db.drain_background();
    if failed.load(Ordering::Relaxed) {
        return Err(format!("{mode}: read-while-writing race failed"));
    }
    let stats = db.stats();
    Ok(RwwResult {
        mode,
        wall_secs,
        writes: args.ops,
        reads: reads.load(Ordering::Relaxed),
        read_latency_ns: merged,
        flushes: stats.flushes,
        compactions: stats.merges + stats.trivial_moves + stats.links + stats.ldc_merges,
    })
}

fn run_read_while_writing(args: CommonArgs, readers: u64, out: &str) -> Result<(), String> {
    let open = |udc: bool| -> Result<LdcDb, String> {
        let mut b = LdcDb::builder().options(paper_scaled_options());
        if udc {
            b = b.udc_baseline();
        }
        b.build().map_err(|e| e.to_string())
    };
    let udc = run_rww_mode("UDC", open(true)?, &args, readers)?;
    let ldc = run_rww_mode("LDC", open(false)?, &args, readers)?;

    let rows: Vec<Vec<String>> = [&udc, &ldc]
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{:.0}", r.writes as f64 / r.wall_secs),
                format!("{:.0}", r.reads as f64 / r.wall_secs),
                format!("{:.1}", r.p_us(50.0)),
                format!("{:.1}", r.p_us(99.0)),
                format!("{:.1}", r.p_us(99.9)),
                format!("{}", r.flushes),
                format!("{}", r.compactions),
            ]
        })
        .collect();
    print_table(
        args.csv,
        &format!(
            "readwhilewriting: {} writes vs {} readers ({}-byte values, host time)",
            args.ops, readers, args.value_bytes
        ),
        &[
            "system",
            "writes/s",
            "reads/s",
            "read p50 (us)",
            "read p99 (us)",
            "read p99.9 (us)",
            "flushes",
            "compactions",
        ],
        &rows,
    );

    let json = format!(
        concat!(
            "{{\"bench\":\"readwhilewriting\",\"ops\":{},\"readers\":{},",
            "\"value_bytes\":{},\"seed\":{},\"modes\":[{},{}]}}\n"
        ),
        args.ops,
        readers,
        args.value_bytes,
        args.seed,
        udc.json(),
        ldc.json()
    );
    std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("\nwrote {out}");
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let sub = match args.next() {
        Some(s) => s,
        None => usage(),
    };
    match sub.as_str() {
        "repair" => {
            let common = CommonArgs::from_iter(400, args);
            if let Err(detail) = run_repair(common) {
                eprintln!("repair pipeline FAILED: {detail}");
                std::process::exit(1);
            }
        }
        "readwhilewriting" => {
            // Pull out the flags CommonArgs doesn't know before delegating
            // (its parser treats unknown flags as fatal).
            let mut readers = 4u64;
            let mut quick = false;
            let mut out = "BENCH_readwhilewriting.json".to_string();
            let mut rest = Vec::new();
            let mut iter = args.peekable();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--readers" => {
                        readers = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--readers: integer"))
                    }
                    "--quick" => quick = true,
                    "--out" => out = iter.next().unwrap_or_else(|| panic!("--out needs a value")),
                    _ => rest.push(arg),
                }
            }
            let default_ops = if quick { 2_000 } else { 20_000 };
            let common = CommonArgs::from_iter(default_ops, rest);
            if let Err(detail) = run_read_while_writing(common, readers.max(1), &out) {
                eprintln!("readwhilewriting FAILED: {detail}");
                std::process::exit(1);
            }
        }
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown subcommand: {other}");
            usage();
        }
    }
}
