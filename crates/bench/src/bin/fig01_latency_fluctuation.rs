//! Fig 1 — "Serious latency fluctuations caused by batched writing."
//!
//! The paper runs a mixed YCSB workload on stock LevelDB (UDC) and plots
//! the per-second average latency, observing write-latency fluctuation up
//! to ~49x between quiet and compaction-heavy intervals. We regenerate the
//! trace under the write-heavy mix (the compaction-bound regime at laptop
//! scale) with 100 ms buckets, for UDC and — for contrast — LDC.
//!
//! Each bucket row is annotated with the structured compaction events
//! (flush / merge / stall / ...) active during that interval, so the causal
//! chain behind every latency spike is visible in the output itself.

use std::collections::BTreeMap;
use std::sync::Arc;

use ldc_bench::prelude::*;
use ldc_workload::{preload_workload, KvInterface};

const BUCKET_NS: u64 = 100_000_000; // 100 ms

/// Compact per-bucket annotation: "3 flush, 2 udc_merge, 1 stall".
fn describe_events(events: &[Event], start: u64, end: u64) -> String {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for e in events.iter().filter(|e| e.overlaps(start, end)) {
        *counts.entry(e.kind.label()).or_insert(0) += 1;
    }
    counts
        .iter()
        .map(|(label, n)| format!("{n} {label}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let args = CommonArgs::parse(60_000);
    for system in [System::Udc, System::Ldc] {
        let spec = WorkloadSpec::write_heavy(args.ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        let config = StoreConfig::new(system);
        let sink = Arc::new(RingBufferSink::new(1 << 20));
        let db = match system {
            System::Ldc => LdcDb::builder()
                .options(config.options.clone())
                .event_sink(sink.clone())
                .build(),
            System::Udc => LdcDb::builder()
                .options(config.options.clone())
                .udc_baseline()
                .event_sink(sink.clone())
                .build(),
        }
        .unwrap();
        let clock = db.device().clock().clone();
        let mut adapter = DbAdapter::new(db);
        preload_workload(&spec, &mut adapter).unwrap();
        adapter.db_mut().drain_background();
        sink.clear(); // the timeline should cover the measured window only

        // Drive the mixed stream by hand so we can bucket write latencies
        // at 100 ms of virtual time.
        let codec = spec.codec.clone();
        let window_start = clock.now();
        let mut buckets: Vec<(u128, u64, u64)> = Vec::new(); // (sum, count, max)
        for i in 0..spec.ops {
            let t0 = clock.now();
            if i % 10 < 7 {
                adapter
                    .insert(&codec.key(i % spec.key_space), &codec.value(i, 1))
                    .unwrap();
            } else {
                adapter.get(&codec.key(i % spec.key_space)).unwrap();
            }
            let latency = clock.now() - t0;
            let bucket = ((clock.now() - window_start) / BUCKET_NS) as usize;
            if buckets.len() <= bucket {
                buckets.resize(bucket + 1, (0, 0, 0));
            }
            buckets[bucket].0 += u128::from(latency);
            buckets[bucket].1 += 1;
            buckets[bucket].2 = buckets[bucket].2.max(latency);
        }

        let events = sink.events();
        let rows: Vec<Vec<String>> = buckets
            .iter()
            .enumerate()
            .filter(|(_, (_, n, _))| *n > 0)
            .map(|(i, (sum, n, max))| {
                let lo = window_start + i as u64 * BUCKET_NS;
                vec![
                    format!("{:.1}", i as f64 * 0.1),
                    format!("{:.1}", *sum as f64 / *n as f64 / 1e3),
                    format!("{:.1}", *max as f64 / 1e3),
                    n.to_string(),
                    describe_events(&events, lo, lo + BUCKET_NS),
                ]
            })
            .collect();
        print_table(
            args.csv,
            &format!(
                "Fig 1 [{}]: latency per 100ms of virtual time (WH, {} ops)",
                system.label(),
                args.ops
            ),
            &[
                "virtual second",
                "mean latency (us)",
                "max latency (us)",
                "ops",
                "events active in bucket",
            ],
            &rows,
        );
        let means: Vec<f64> = buckets
            .iter()
            .filter(|(_, n, _)| *n > 0)
            .map(|(sum, n, _)| *sum as f64 / *n as f64)
            .collect();
        let max = means.iter().cloned().fold(0.0f64, f64::max);
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst_op = buckets.iter().map(|(_, _, m)| *m).max().unwrap_or(0);
        let calm_op = buckets
            .iter()
            .filter(|(_, n, _)| *n > 0)
            .map(|(_, _, m)| *m)
            .min()
            .unwrap_or(0);
        println!(
            "\n{}: fluctuation extent (max/min bucket mean) = {:.1}x; \
             worst single op {:.1} us vs calmest bucket's worst {:.1} us = {:.0}x  \
             (paper observes up to 49.1x mean fluctuation for stock LevelDB; \
             our scaled memtables bound stalls at ~tens of ms, so the mean \
             dilutes less than at paper scale — the per-op spread carries \
             the signal)\n",
            system.label(),
            if min > 0.0 { max / min } else { f64::NAN },
            worst_op as f64 / 1e3,
            calm_op as f64 / 1e3,
            worst_op as f64 / calm_op.max(1) as f64,
        );

        // Name the culprits: every compaction event overlapping the
        // spikiest bucket, with its phase breakdown.
        let spike = buckets
            .iter()
            .enumerate()
            .filter(|(_, (_, n, _))| *n > 0)
            .max_by(|(_, a), (_, b)| {
                (a.0 as f64 / a.1 as f64).total_cmp(&(b.0 as f64 / b.1 as f64))
            })
            .map(|(i, _)| i);
        if let Some(i) = spike {
            let lo = window_start + i as u64 * BUCKET_NS;
            let culprits: Vec<&Event> = events
                .iter()
                .filter(|e| e.kind.is_compaction() && e.overlaps(lo, lo + BUCKET_NS))
                .collect();
            if culprits.is_empty() {
                continue; // run too short for any compaction to start
            }
            println!(
                "{}: events behind the spike at virtual second {:.1}:",
                system.label(),
                i as f64 * 0.1
            );
            for e in culprits {
                println!(
                    "  t={:9.4}s  dur={:8.3}ms  {:<12} L{}  {}->{} files  \
                     {:6.2} MiB in  (read {:.1}ms, write {:.1}ms)",
                    (e.start_nanos - window_start) as f64 / 1e9,
                    e.duration_nanos() as f64 / 1e6,
                    e.kind.label(),
                    e.level.map_or_else(|| "-".into(), |l| l.to_string()),
                    e.input_files,
                    e.output_files,
                    e.input_bytes as f64 / 1048576.0,
                    e.read_nanos as f64 / 1e6,
                    e.write_nanos as f64 / 1e6,
                );
            }
            println!();
        }
    }
    println!(
        "Expectation: UDC's trace spikes whenever compaction blocks the \
         writer; LDC's trace stays flat because each merge moves O(1) \
         SSTables instead of O(k)."
    );
}
