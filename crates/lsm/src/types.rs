//! Internal key representation.
//!
//! Identical to LevelDB's scheme: an *internal key* is the user key followed
//! by an 8-byte little-endian trailer packing `(sequence << 8) | value_type`.
//! Internal keys order by user key ascending, then sequence descending, then
//! type descending — so the newest visible version of a key sorts first.

use std::cmp::Ordering;

/// Monotonically increasing write sequence number (56 usable bits).
pub type SequenceNumber = u64;

/// Largest representable sequence number.
pub const MAX_SEQUENCE: SequenceNumber = (1 << 56) - 1;

/// Kind of an internal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ValueType {
    /// A tombstone.
    Deletion = 0,
    /// A live value.
    Value = 1,
}

impl ValueType {
    /// Decodes from the trailer's low byte.
    pub fn from_u8(v: u8) -> Option<ValueType> {
        match v {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            _ => None,
        }
    }
}

/// When seeking, we want all entries with sequence <= the snapshot; since
/// sequences sort descending, the probe uses the highest type value.
pub const TYPE_FOR_SEEK: ValueType = ValueType::Value;

/// Builds an internal key: `user_key . fixed64(seq << 8 | type)`.
pub fn encode_internal_key(user_key: &[u8], seq: SequenceNumber, vt: ValueType) -> Vec<u8> {
    debug_assert!(seq <= MAX_SEQUENCE);
    let mut out = Vec::with_capacity(user_key.len() + 8);
    out.extend_from_slice(user_key);
    out.extend_from_slice(&((seq << 8) | vt as u64).to_le_bytes());
    out
}

/// The user-key prefix of an internal key.
pub fn user_key(internal_key: &[u8]) -> &[u8] {
    debug_assert!(internal_key.len() >= 8, "internal key too short");
    &internal_key[..internal_key.len() - 8]
}

/// The `(sequence, type)` trailer of an internal key.
pub fn parse_trailer(internal_key: &[u8]) -> (SequenceNumber, ValueType) {
    let n = internal_key.len();
    debug_assert!(n >= 8);
    let mut b = [0u8; 8];
    b.copy_from_slice(&internal_key[n - 8..]);
    let packed = u64::from_le_bytes(b);
    let vt = ValueType::from_u8((packed & 0xff) as u8).expect("invalid value type in trailer");
    (packed >> 8, vt)
}

/// Total order over internal keys (user key asc, seq desc, type desc).
pub fn compare_internal_keys(a: &[u8], b: &[u8]) -> Ordering {
    match user_key(a).cmp(user_key(b)) {
        Ordering::Equal => {
            let (seq_a, vt_a) = parse_trailer(a);
            let (seq_b, vt_b) = parse_trailer(b);
            // Higher sequence sorts first; ties broken by higher type first.
            seq_b.cmp(&seq_a).then((vt_b as u8).cmp(&(vt_a as u8)))
        }
        ord => ord,
    }
}

/// An inclusive-exclusive user-key range `[lo, hi)`; `hi = None` means +inf.
///
/// Slice links (the LDC mechanism) and range scans both use this shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub lo: Vec<u8>,
    /// Exclusive upper bound; `None` = unbounded.
    pub hi: Option<Vec<u8>>,
}

impl KeyRange {
    /// Range covering every key.
    pub fn all() -> Self {
        KeyRange {
            lo: Vec::new(),
            hi: None,
        }
    }

    /// `[lo, hi)` with a concrete upper bound.
    pub fn new(lo: impl Into<Vec<u8>>, hi: impl Into<Vec<u8>>) -> Self {
        KeyRange {
            lo: lo.into(),
            hi: Some(hi.into()),
        }
    }

    /// `[lo, +inf)`.
    pub fn from(lo: impl Into<Vec<u8>>) -> Self {
        KeyRange {
            lo: lo.into(),
            hi: None,
        }
    }

    /// Whether `key` falls inside the range.
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= self.lo.as_slice() && self.hi.as_deref().is_none_or(|hi| key < hi)
    }

    /// Whether this range overlaps the *closed* key span `[smallest, largest]`.
    pub fn overlaps(&self, smallest: &[u8], largest: &[u8]) -> bool {
        if largest < self.lo.as_slice() {
            return false;
        }
        match self.hi.as_deref() {
            Some(hi) => smallest < hi,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_and_parse_roundtrip() {
        let ik = encode_internal_key(b"user", 42, ValueType::Value);
        assert_eq!(user_key(&ik), b"user");
        assert_eq!(parse_trailer(&ik), (42, ValueType::Value));
        let ik = encode_internal_key(b"", MAX_SEQUENCE, ValueType::Deletion);
        assert_eq!(user_key(&ik), b"");
        assert_eq!(parse_trailer(&ik), (MAX_SEQUENCE, ValueType::Deletion));
    }

    #[test]
    fn ordering_user_key_dominates() {
        let a = encode_internal_key(b"a", 1, ValueType::Value);
        let b = encode_internal_key(b"b", 100, ValueType::Value);
        assert_eq!(compare_internal_keys(&a, &b), Ordering::Less);
    }

    #[test]
    fn ordering_newer_sequence_sorts_first() {
        let new = encode_internal_key(b"k", 10, ValueType::Value);
        let old = encode_internal_key(b"k", 5, ValueType::Value);
        assert_eq!(compare_internal_keys(&new, &old), Ordering::Less);
    }

    #[test]
    fn ordering_type_breaks_sequence_ties() {
        let v = encode_internal_key(b"k", 7, ValueType::Value);
        let d = encode_internal_key(b"k", 7, ValueType::Deletion);
        assert_eq!(compare_internal_keys(&v, &d), Ordering::Less);
        assert_eq!(compare_internal_keys(&d, &v), Ordering::Greater);
        assert_eq!(compare_internal_keys(&v, &v), Ordering::Equal);
    }

    #[test]
    fn value_type_decoding() {
        assert_eq!(ValueType::from_u8(0), Some(ValueType::Deletion));
        assert_eq!(ValueType::from_u8(1), Some(ValueType::Value));
        assert_eq!(ValueType::from_u8(2), None);
    }

    #[test]
    fn key_range_contains_and_overlaps() {
        let r = KeyRange::new(&b"b"[..], &b"d"[..]);
        assert!(!r.contains(b"a"));
        assert!(r.contains(b"b"));
        assert!(r.contains(b"c"));
        assert!(!r.contains(b"d"));
        assert!(r.overlaps(b"a", b"b")); // touches lo
        assert!(r.overlaps(b"c", b"z"));
        assert!(!r.overlaps(b"d", b"z")); // hi is exclusive
        assert!(!r.overlaps(b"a", b"az"));

        let unbounded = KeyRange::from(&b"m"[..]);
        assert!(unbounded.contains(b"zzz"));
        assert!(!unbounded.contains(b"a"));
        assert!(unbounded.overlaps(b"a", b"m"));
        assert!(!unbounded.overlaps(b"a", b"l"));

        let all = KeyRange::all();
        assert!(all.contains(b""));
        assert!(all.contains(b"anything"));
        assert!(all.overlaps(b"a", b"b"));
    }
}
