//! Fig 8 — P90–P99.99 tail latency, UDC vs LDC.
//!
//! Paper headline: the P99.9 write-path latency drops from 469.66 µs (UDC)
//! to 179.53 µs (LDC), a 2.62x reduction; P99.99 drops from 2688.23 µs to
//! 1305.96 µs. The mechanism: LDC merges O(1) SSTables per round, so the
//! stall any single request can absorb shrinks by ~the fan-out.
//!
//! We drive the write-heavy mix: at laptop scale it is the one that keeps
//! the device compaction-bound the way the paper's 20 M-request run kept
//! its SSD, so the stall population reaches the printed percentiles.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(80_000);
    let spec = WorkloadSpec::write_heavy(args.ops)
        .with_codec(args.codec())
        .with_seed(args.seed);
    let (udc, ldc) = run_both(&paper_scaled_options(), &SsdConfig::default(), &spec);

    let percentiles = [90.0, 95.0, 99.0, 99.9, 99.99];
    let rows: Vec<Vec<String>> = percentiles
        .iter()
        .map(|&p| {
            let u = udc.report.percentile_us(p);
            let l = ldc.report.percentile_us(p);
            vec![
                format!("P{p}"),
                format!("{u:.1}"),
                format!("{l:.1}"),
                format!("{:.2}x", u / l.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        args.csv,
        &format!("Fig 8: tail latency, all ops (us), {} mixed ops", args.ops),
        &["percentile", "UDC (us)", "LDC (us)", "UDC/LDC"],
        &rows,
    );

    // The paper's Eq. 3 models the *write* tail specifically: the stall a
    // write absorbs when compaction blocks its memtable rotation.
    let mut rows: Vec<Vec<String>> = percentiles
        .iter()
        .map(|&p| {
            let u = udc.report.writes.percentile(p) as f64 / 1e3;
            let l = ldc.report.writes.percentile(p) as f64 / 1e3;
            vec![
                format!("P{p}"),
                format!("{u:.1}"),
                format!("{l:.1}"),
                format!("{:.2}x", u / l.max(1e-9)),
            ]
        })
        .collect();
    let (umax, lmax) = (
        udc.report.writes.max() as f64 / 1e3,
        ldc.report.writes.max() as f64 / 1e3,
    );
    rows.push(vec![
        "max".into(),
        format!("{umax:.1}"),
        format!("{lmax:.1}"),
        format!("{:.2}x", umax / lmax.max(1e-9)),
    ]);
    print_table(
        args.csv,
        "Fig 8 (write path): write-op tail latency (us)",
        &["percentile", "UDC (us)", "LDC (us)", "UDC/LDC"],
        &rows,
    );
    for r in [&udc, &ldc] {
        println!(
            "{}: write stalls={} (total {:.1} ms, worst-case mean {:.1} us), \
             max write latency {:.1} us, max read latency {:.1} us",
            r.system.label(),
            r.db_stats.stalls,
            r.db_stats.stall_nanos as f64 / 1e6,
            r.db_stats.stall_nanos as f64 / 1e3 / r.db_stats.stalls.max(1) as f64,
            r.report.writes.max() as f64 / 1e3,
            r.report.reads.max() as f64 / 1e3,
        );
    }
    println!(
        "\nPaper reference: P99.9 469.66us (UDC) -> 179.53us (LDC) = 2.62x; \
         P99.99 2688.23us -> 1305.96us."
    );
    println!(
        "Expectation: LDC's high percentiles are several times lower; low \
         percentiles are comparable."
    );
}
