//! Online SSTable scrubber.
//!
//! Real deployments find latent sector corruption *before* a read trips
//! over it by periodically re-reading and re-verifying cold data. `scrub`
//! is that pass for this engine: it walks every SSTable reachable from the
//! current version — live files level by level, then the LDC frozen
//! region — and runs [`crate::table::Table::verify_deep`] on each, which
//! re-reads every data block, re-checks its CRC, validates index/footer
//! consistency, and confirms every stored key passes the Bloom filter.
//!
//! The scrubber is *online*: it runs against an open [`Db`], charges its
//! reads to the simulated device like any other I/O, and reports progress
//! through [`ldc_obs::EventKind::ScrubProgress`] / `ScrubCorruption`
//! events plus the degraded-mode metrics. Under
//! [`crate::options::CorruptionPolicy::Quarantine`] a corrupt live table
//! is quarantined on the spot, so one scrub pass leaves the store serving
//! only verified data (minus the keys that lived in the corrupt files —
//! `repair_db` gets those back where possible).

use ldc_obs::{Event, EventKind};
use ldc_ssd::IoClass;

use crate::db::Db;
use crate::error::{CorruptionInfo, Error, Result};

/// What one [`Db::scrub`] pass verified and found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Tables whose verification ran to completion (clean or corrupt).
    pub tables_scanned: u64,
    /// Data blocks whose CRCs were re-verified across clean tables.
    pub blocks_verified: u64,
    /// Bytes read and re-verified across clean tables.
    pub bytes_verified: u64,
    /// Entries whose ordering and filter membership were checked.
    pub entries_verified: u64,
    /// Corruption found, one entry per corrupt table (verification of a
    /// table stops at its first corrupt block).
    pub corruptions: Vec<CorruptionInfo>,
    /// Files quarantined by this pass (quarantine policy only; live
    /// tables only — a corrupt frozen file is reported, not dropped,
    /// because slice links still reference it).
    pub quarantined: Vec<String>,
}

impl ScrubReport {
    /// Whether the pass found no corruption at all.
    pub fn is_clean(&self) -> bool {
        self.corruptions.is_empty()
    }
}

impl Db {
    /// Re-verifies every SSTable reachable from the current version: all
    /// block CRCs, key ordering, index/footer consistency, and
    /// filter-vs-key agreement. Live levels are walked top-down, then the
    /// frozen region.
    ///
    /// Corruption is collected (and, under the quarantine policy,
    /// quarantined for live files) rather than returned early; only
    /// non-corruption errors — a device failure that survives the retry
    /// budget — abort the pass.
    pub fn scrub(&self) -> Result<ScrubReport> {
        // Defer physical deletion of compacted-away tables for the whole
        // pass: with background workers, an install could otherwise reap a
        // file between target collection and its verify.
        let _pin = self.pin_reads();
        let mut targets: Vec<(Option<u32>, u64)> = Vec::new();
        for (level, files) in self.version().levels.iter().enumerate() {
            for f in files {
                targets.push((Some(level as u32), f.number));
            }
        }
        for number in self.version().frozen.keys() {
            targets.push((None, *number));
        }

        let metrics = self.metrics();
        let mut report = ScrubReport::default();
        for (level, number) in targets {
            let t0 = self.device().clock().now();
            let outcome = self
                .table(number)
                .and_then(|t| t.verify_deep(IoClass::Other));
            let t1 = self.device().clock().now();
            match outcome {
                Ok(stats) => {
                    report.tables_scanned += 1;
                    report.blocks_verified += stats.blocks;
                    report.bytes_verified += stats.bytes;
                    report.entries_verified += stats.entries;
                    metrics.record_scrub_blocks(stats.blocks);
                    if self.event_sink().enabled() {
                        let mut ev = Event::span(EventKind::ScrubProgress, t0, t1)
                            .files(1, u32::try_from(stats.blocks).unwrap_or(u32::MAX))
                            .bytes(stats.bytes, 0);
                        ev.level = level;
                        self.event_sink().record(ev);
                    }
                }
                Err(Error::Corruption(info)) => {
                    report.tables_scanned += 1;
                    metrics.record_scrub_corruption();
                    if self.event_sink().enabled() {
                        let mut ev = Event::span(EventKind::ScrubCorruption, t0, t1)
                            .files(1, 0)
                            .bytes(info.offset.unwrap_or(0), 0);
                        ev.level = level;
                        self.event_sink().record(ev);
                    }
                    // Only live files quarantine; `quarantine_corruption`
                    // itself enforces the policy and live-ness.
                    if self.quarantine_corruption(&info)? {
                        report.quarantined.push(info.file.clone());
                    }
                    report.corruptions.push(info);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use crate::compaction::UdcPolicy;
    use crate::db::Db;
    use crate::options::{CorruptionPolicy, Options};
    use ldc_obs::EventKind;
    use ldc_ssd::{IoClass, MemStorage, SsdConfig, SsdDevice, StorageBackend};
    use std::sync::Arc;

    fn open(policy: CorruptionPolicy) -> (Db, Arc<MemStorage>) {
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()));
        let options = Options {
            corruption_policy: policy,
            ..Options::small_for_tests()
        };
        let db = Db::open(storage.clone(), options, Box::new(UdcPolicy::new())).unwrap();
        (db, storage)
    }

    fn fill(db: &Db, n: u64) {
        for i in 0..n {
            db.put(
                format!("key{i:05}").as_bytes(),
                format!("value-{i:05}-{}", "x".repeat(100)).as_bytes(),
            )
            .unwrap();
        }
        db.drain_background();
    }

    fn largest_sst(storage: &MemStorage) -> String {
        storage
            .list()
            .into_iter()
            .filter(|n| n.ends_with(".sst"))
            .max_by_key(|n| storage.size(n).unwrap_or(0))
            .expect("at least one sstable")
    }

    fn flip_bit(storage: &MemStorage, name: &str, offset: u64) {
        let mut data = storage.read_all(name, IoClass::Other).unwrap().to_vec();
        let idx = usize::try_from(offset).unwrap() % data.len();
        data[idx] ^= 0x01;
        storage.write_file(name, &data, IoClass::Other).unwrap();
    }

    #[test]
    fn clean_store_scrubs_clean() {
        let (db, _s) = open(CorruptionPolicy::FailStop);
        fill(&db, 400);
        let report = db.scrub().unwrap();
        assert!(report.is_clean());
        assert!(report.tables_scanned > 0);
        assert!(report.blocks_verified > 0);
        // The active memtable keeps the tail of the workload, so tables
        // hold most-but-not-all entries.
        assert!(report.entries_verified > 0);
        let d = db.metrics().degraded_counters();
        assert_eq!(d.scrub_blocks_verified, report.blocks_verified);
        assert_eq!(d.scrub_corruptions, 0);
    }

    #[test]
    fn bit_flip_is_detected_and_reported() {
        let (db, storage) = open(CorruptionPolicy::FailStop);
        fill(&db, 400);
        let victim = largest_sst(&storage);
        flip_bit(&storage, &victim, 100);
        // Flush cached blocks so the scrub re-reads from the device.
        drop(db);
        let (db, _) = {
            let options = Options::small_for_tests();
            let db = Db::open(storage.clone(), options, Box::new(UdcPolicy::new())).unwrap();
            (db, ())
        };
        let report = db.scrub().unwrap();
        assert!(!report.is_clean());
        assert!(report.corruptions.iter().any(|c| c.file == victim));
        // Fail-stop: nothing was quarantined.
        assert!(report.quarantined.is_empty());
        assert!(db.quarantined().is_empty());
        assert_eq!(db.metrics().degraded_counters().scrub_corruptions, 1);
    }

    #[test]
    fn quarantine_policy_drops_corrupt_live_table() {
        let (db, storage) = open(CorruptionPolicy::Quarantine);
        fill(&db, 400);
        let victim = largest_sst(&storage);
        flip_bit(&storage, &victim, 100);
        drop(db);
        let options = Options {
            corruption_policy: CorruptionPolicy::Quarantine,
            ..Options::small_for_tests()
        };
        let sink = Arc::new(ldc_obs::RingBufferSink::new(4096));
        let db = Db::open_with_sink(
            storage.clone(),
            options,
            Box::new(UdcPolicy::new()),
            sink.clone(),
        )
        .unwrap();
        let report = db.scrub().unwrap();
        assert_eq!(report.quarantined, vec![victim.clone()]);
        assert_eq!(db.quarantined().len(), 1);
        assert!(!storage.exists(&victim));
        assert!(storage.exists(&format!("{victim}.quarantined")));
        let events = sink.events();
        assert!(events.iter().any(|e| e.kind == EventKind::ScrubCorruption));
        assert!(events.iter().any(|e| e.kind == EventKind::Quarantine));
        // A second pass over the survivors is clean.
        let again = db.scrub().unwrap();
        assert!(again.is_clean());
    }
}
