//! The follower: bootstrap from a backup, then tail its edit stream.

use std::sync::Arc;

use ldc_core::lsm::backup::{backup_prefix, for_each_stream_edit};
use ldc_core::lsm::version::table_file_name;
use ldc_core::lsm::{restore_backup, Result};
use ldc_core::ssd::{IoClass, StorageBackend};
use ldc_core::{LdcDb, LdcDbBuilder};
use ldc_obs::lockcheck::Mutex;

/// Point-in-time replication state of a [`Follower`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FollowerStats {
    /// Stream records applied by this follower process (not counting the
    /// records the bootstrap restore replayed).
    pub edits_applied: u64,
    /// The follower's replication cursor: total stream records applied
    /// over its lifetime, including bootstrap and previous incarnations.
    pub cursor: u64,
    /// Records the primary has shipped that this follower has not yet
    /// applied, as of the last [`Follower::poll`].
    pub lag_edits: u64,
    /// Polls that found at least one new record.
    pub polls_with_progress: u64,
    /// Polls that found the stream unchanged.
    pub polls_empty: u64,
}

/// A read-only follower: a live [`LdcDb`] kept in sync with a primary by
/// tailing the primary's incremental backup stream. Reads (get/scan) go
/// straight to the inner store via [`Follower::db`]; the only mutation
/// path is [`Follower::poll`].
pub struct Follower {
    db: LdcDb,
    src: Arc<dyn StorageBackend>,
    prefix: String,
    stats: Mutex<FollowerStats>,
}

impl std::fmt::Debug for Follower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Follower")
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

impl Follower {
    /// Bootstraps a follower of backup `name` on `src`: restores the base
    /// checkpoint plus the stream's clean prefix into `dst`, then opens
    /// the store with `builder`'s configuration over `dst`. The builder's
    /// `max_levels` must match the primary's.
    pub fn bootstrap(
        src: &Arc<dyn StorageBackend>,
        name: &str,
        builder: LdcDbBuilder,
        dst: Arc<dyn StorageBackend>,
    ) -> Result<Follower> {
        let prefix = backup_prefix(name);
        restore_backup(src, &prefix, &dst, builder.options_ref().max_levels)?;
        Self::reopen(src, name, builder, dst)
    }

    /// Opens a follower over storage that already holds a restored (or
    /// previously-followed) copy — the restart path. The persisted
    /// replication cursor in `dst`'s manifest decides where tailing
    /// resumes; nothing is re-applied.
    pub fn reopen(
        src: &Arc<dyn StorageBackend>,
        name: &str,
        builder: LdcDbBuilder,
        dst: Arc<dyn StorageBackend>,
    ) -> Result<Follower> {
        let prefix = backup_prefix(name);
        let db = builder.storage(Arc::clone(&dst)).build()?;
        let stats = FollowerStats {
            cursor: db.replication_cursor(),
            ..Default::default()
        };
        Ok(Follower {
            db,
            src: Arc::clone(src),
            prefix,
            stats: Mutex::new("sync/tailer::stats", stats),
        })
    }

    /// One tailing round: reads stream records past the follower's
    /// durable cursor, copies any SSTables they reference, and applies
    /// each edit. Returns the number of newly applied records. Safe to
    /// call on any schedule; crash-idempotent at every step.
    pub fn poll(&self) -> Result<u64> {
        let before = self.db.replication_cursor();
        let mut newly = 0u64;
        let total = for_each_stream_edit(self.src.as_ref(), &self.prefix, before, |_, edit| {
            // Materialize the record's new tables before the edit that
            // references them becomes visible — same ordering the shipper
            // used, so a crash here leaves only ignorable extra files.
            for (_, meta) in &edit.new_files {
                let table = table_file_name(meta.number);
                if self.db.storage().exists(&table) {
                    continue;
                }
                let data = self
                    .src
                    .read_all(&format!("{}{table}", self.prefix), IoClass::Other)?;
                self.db
                    .storage()
                    .write_file(&table, &data, IoClass::Other)?;
            }
            self.db.apply_remote_edit(&edit)?;
            newly += 1;
            Ok(())
        })?;
        let cursor = self.db.replication_cursor();
        let lag = total.saturating_sub(cursor);
        {
            let mut stats = self.stats.lock();
            stats.edits_applied += newly;
            stats.cursor = cursor;
            stats.lag_edits = lag;
            if newly > 0 {
                stats.polls_with_progress += 1;
            } else {
                stats.polls_empty += 1;
            }
        }
        self.db.metrics().set_repl_lag(lag);
        Ok(newly)
    }

    /// Records the primary has shipped that this follower has not yet
    /// applied, as of the last [`Follower::poll`].
    pub fn lag(&self) -> u64 {
        self.stats.lock().lag_edits
    }

    /// Snapshot of the replication state.
    pub fn stats(&self) -> FollowerStats {
        *self.stats.lock()
    }

    /// The live follower store (serve reads from it).
    pub fn db(&self) -> &LdcDb {
        &self.db
    }

    /// Detaches the inner store (e.g. to promote the follower).
    pub fn into_db(self) -> LdcDb {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_core::lsm::Options;
    use ldc_core::ssd::{MemStorage, SsdConfig, SsdDevice};

    fn storage() -> Arc<dyn StorageBackend> {
        MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()))
    }

    fn primary(src: &Arc<dyn StorageBackend>) -> LdcDb {
        LdcDb::builder()
            .options(Options::small_for_tests())
            .storage(Arc::clone(src))
            .build()
            .unwrap()
    }

    fn key(i: u64) -> Vec<u8> {
        format!("key{i:05}").into_bytes()
    }

    fn value(i: u64) -> Vec<u8> {
        format!("value-{i:05}-{}", "x".repeat(64)).into_bytes()
    }

    #[test]
    fn follower_bootstraps_and_catches_up() {
        let src = storage();
        let db = primary(&src);
        for i in 0..200 {
            db.put(&key(i), &value(i)).unwrap();
        }
        db.drain_background();
        db.backup_begin("repl").unwrap();

        let follower = Follower::bootstrap(
            &src,
            "repl",
            LdcDb::builder().options(Options::small_for_tests()),
            storage(),
        )
        .unwrap();
        for i in 0..200 {
            assert_eq!(follower.db().get(&key(i)).unwrap(), Some(value(i)));
        }

        // New writes on the primary flow through flush edits.
        for i in 200..400 {
            db.put(&key(i), &value(i)).unwrap();
        }
        db.flush().unwrap();
        db.drain_background();
        let applied = follower.poll().unwrap();
        assert!(applied > 0, "stream produced no records");
        assert_eq!(follower.lag(), 0);
        for i in 0..400 {
            assert_eq!(follower.db().get(&key(i)).unwrap(), Some(value(i)), "{i}");
        }
        let stats = follower.stats();
        assert_eq!(stats.edits_applied, applied);
        assert!(stats.cursor >= applied);
        assert_eq!(follower.db().metrics().replication_counters().lag_edits, 0);
    }

    #[test]
    fn restarted_follower_resumes_from_durable_cursor() {
        let src = storage();
        let db = primary(&src);
        for i in 0..100 {
            db.put(&key(i), &value(i)).unwrap();
        }
        db.drain_background();
        db.backup_begin("repl").unwrap();
        for i in 100..200 {
            db.put(&key(i), &value(i)).unwrap();
        }
        db.flush().unwrap();
        db.drain_background();

        let dst = storage();
        let f1 = Follower::bootstrap(
            &src,
            "repl",
            LdcDb::builder().options(Options::small_for_tests()),
            Arc::clone(&dst),
        )
        .unwrap();
        f1.poll().unwrap();
        let cursor = f1.stats().cursor;
        assert!(cursor > 0);
        drop(f1);

        // Reopen over the same storage: the cursor is in the manifest.
        let f2 = Follower::reopen(
            &src,
            "repl",
            LdcDb::builder().options(Options::small_for_tests()),
            dst,
        )
        .unwrap();
        assert_eq!(f2.stats().cursor, cursor);
        assert_eq!(f2.poll().unwrap(), 0, "nothing new must re-apply");
        for i in 0..200 {
            assert_eq!(f2.db().get(&key(i)).unwrap(), Some(value(i)), "{i}");
        }
    }

    #[test]
    fn empty_poll_counts_and_lag_is_zero_without_new_records() {
        let src = storage();
        let db = primary(&src);
        db.put(b"k", b"v").unwrap();
        db.drain_background();
        db.backup_begin("repl").unwrap();
        let follower = Follower::bootstrap(
            &src,
            "repl",
            LdcDb::builder().options(Options::small_for_tests()),
            storage(),
        )
        .unwrap();
        assert_eq!(follower.poll().unwrap(), 0);
        let stats = follower.stats();
        assert_eq!(stats.polls_empty, 1);
        assert_eq!(stats.lag_edits, 0);
    }
}
