//! Internal diagnostic probe (not a paper figure): prints engine/task
//! structure statistics while driving an RWB workload, to sanity-check the
//! background-lane dynamics.

use ldc_bench::prelude::*;
use ldc_workload::KvInterface;

fn main() {
    let args = CommonArgs::parse(40_000);
    for system in [System::Udc, System::Ldc] {
        let config = StoreConfig::new(system);
        let spec = WorkloadSpec::read_write_balanced(args.ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        let db = match system {
            System::Ldc => LdcDb::builder().options(config.options.clone()).build(),
            System::Udc => LdcDb::builder()
                .options(config.options.clone())
                .udc_baseline()
                .build(),
        }
        .unwrap();
        let mut adapter = DbAdapter::new(db);
        ldc_workload::preload_workload(&spec, &mut adapter).unwrap();
        adapter.db_mut().drain_background();

        // Manual measured loop with stall tracking.
        let clock = adapter.db().device().clock().clone();
        let stats0 = adapter.db().stats();
        let mut worst: u64 = 0;
        let mut worst_at = 0u64;
        let codec = spec.codec.clone();
        let mut max_slices = 0usize;
        for i in 0..spec.ops {
            let t0 = clock.now();
            if i % 2 == 0 {
                adapter
                    .insert(&codec.key(i % spec.key_space), &codec.value(i, 1))
                    .unwrap();
            } else {
                adapter.get(&codec.key(i % spec.key_space)).unwrap();
            }
            let lat = clock.now() - t0;
            if lat > worst {
                worst = lat;
                worst_at = i;
            }
            if i % 500 == 0 {
                let v = adapter.db().engine_ref().version();
                let m = v
                    .levels
                    .iter()
                    .flat_map(|fs| fs.iter())
                    .map(|f| f.slices.len())
                    .max()
                    .unwrap_or(0);
                max_slices = max_slices.max(m);
            }
        }
        let stats1 = adapter.db().stats();
        let v = adapter.db().engine_ref().version();
        println!(
            "{}: worst op latency {:.1} ms at op {} | stalls {} ({:.1} ms) slowdowns {} | \
             flushes {} merges {} links {} ldc_merges {} trivial {} | max slices/file seen {} | \
             levels {:?} frozen {} links_live {}",
            system.label(),
            worst as f64 / 1e6,
            worst_at,
            stats1.stalls - stats0.stalls,
            (stats1.stall_nanos - stats0.stall_nanos) as f64 / 1e6,
            stats1.slowdowns - stats0.slowdowns,
            stats1.flushes - stats0.flushes,
            stats1.merges - stats0.merges,
            stats1.links - stats0.links,
            stats1.ldc_merges - stats0.ldc_merges,
            stats1.trivial_moves - stats0.trivial_moves,
            max_slices,
            (0..v.num_levels())
                .map(|l| v.level_files(l))
                .collect::<Vec<_>>(),
            v.frozen_files(),
            v.total_slice_links(),
        );
        println!(
            "\n{} engine report:\n{}",
            system.label(),
            adapter.db().stats_report()
        );
    }
}
