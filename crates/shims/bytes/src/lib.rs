//! Offline drop-in subset of the `bytes` crate.
//!
//! The vendored-dependency mirror is unavailable in this build environment,
//! so the workspace ships the minimal API surface it actually uses:
//! [`Bytes`] as a cheaply cloneable, sliceable, immutable byte buffer.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice (copies in this shim; the semantics match).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::copy_from_slice(slice)
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(slice);
        Self {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range inverted: {begin} > {end}");
        assert!(end <= len, "slice range {end} out of bounds ({len})");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        Self {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Self::copy_from_slice(slice)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
