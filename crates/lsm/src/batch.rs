//! Write batches: the unit of atomic application and the WAL payload.
//!
//! Wire format matches LevelDB: an 8-byte starting sequence number, a 4-byte
//! record count, then per record a type byte followed by length-prefixed key
//! (and value for puts).

use crate::encoding::{
    get_fixed32, get_fixed64, get_length_prefixed, put_fixed32, put_length_prefixed,
};
use crate::error::{corruption, Result};
use crate::types::{SequenceNumber, ValueType};

const HEADER: usize = 12;

/// An atomic group of puts/deletes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    rep: Vec<u8>,
}

impl WriteBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self {
            rep: vec![0; HEADER],
        }
    }

    /// Queues a put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.bump_count();
        self.rep.push(ValueType::Value as u8);
        put_length_prefixed(&mut self.rep, key);
        put_length_prefixed(&mut self.rep, value);
    }

    /// Queues a delete.
    pub fn delete(&mut self, key: &[u8]) {
        self.bump_count();
        self.rep.push(ValueType::Deletion as u8);
        put_length_prefixed(&mut self.rep, key);
    }

    /// Number of queued operations.
    pub fn count(&self) -> u32 {
        get_fixed32(&self.rep, 8)
    }

    /// Whether no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Starting sequence number (assigned by the engine at commit).
    pub fn sequence(&self) -> SequenceNumber {
        get_fixed64(&self.rep, 0)
    }

    /// Stamps the starting sequence number.
    pub fn set_sequence(&mut self, seq: SequenceNumber) {
        self.rep[0..8].copy_from_slice(&seq.to_le_bytes());
    }

    /// Serialized length in bytes.
    pub fn byte_size(&self) -> usize {
        self.rep.len()
    }

    /// Payload bytes written to the WAL.
    pub fn encoded(&self) -> &[u8] {
        &self.rep
    }

    /// Parses a WAL payload back into a batch.
    pub fn decode(data: &[u8]) -> Result<WriteBatch> {
        if data.len() < HEADER {
            return Err(corruption("write batch shorter than header"));
        }
        let batch = WriteBatch { rep: data.to_vec() };
        // Validate structure eagerly so corrupt batches fail loudly.
        batch.iter().collect::<Result<Vec<_>>>()?;
        Ok(batch)
    }

    /// Iterates `(offset_in_batch, op)`; each op gets `sequence() + offset`.
    pub fn iter(&self) -> BatchIter<'_> {
        BatchIter {
            data: &self.rep[HEADER..],
            remaining: self.count(),
            emitted: 0,
        }
    }

    fn bump_count(&mut self) {
        let c = self.count() + 1;
        let mut buf = Vec::with_capacity(4);
        put_fixed32(&mut buf, c);
        self.rep[8..12].copy_from_slice(&buf);
    }

    /// Sum of key+value payload bytes (the "user bytes" metric for write
    /// amplification accounting).
    pub fn user_bytes(&self) -> u64 {
        let mut total = 0u64;
        for op in self.iter().flatten() {
            total += match op.1 {
                BatchOp::Put { key, value } => (key.len() + value.len()) as u64,
                BatchOp::Delete { key } => key.len() as u64,
            };
        }
        total
    }
}

/// One decoded operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp<'a> {
    /// Insert/overwrite.
    Put {
        /// User key.
        key: &'a [u8],
        /// Value payload.
        value: &'a [u8],
    },
    /// Tombstone.
    Delete {
        /// User key.
        key: &'a [u8],
    },
}

/// Iterator over a batch's operations.
pub struct BatchIter<'a> {
    data: &'a [u8],
    remaining: u32,
    emitted: u32,
}

impl<'a> BatchIter<'a> {
    /// Poisons the iterator so a decode error is yielded exactly once.
    fn fail(&mut self, msg: &str) -> Option<Result<(u32, BatchOp<'a>)>> {
        self.remaining = 0;
        self.data = &[];
        Some(Err(corruption(msg.to_string())))
    }
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = Result<(u32, BatchOp<'a>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            if self.data.is_empty() {
                return None;
            }
            return self.fail("trailing bytes after last batch record");
        }
        let tag = match self.data.first() {
            Some(&t) => t,
            None => return self.fail("truncated batch record"),
        };
        self.data = &self.data[1..];
        let key = match get_length_prefixed(self.data) {
            Some((k, n)) => {
                self.data = &self.data[n..];
                k
            }
            None => return self.fail("truncated batch key"),
        };
        let op = match ValueType::from_u8(tag) {
            Some(ValueType::Value) => match get_length_prefixed(self.data) {
                Some((v, n)) => {
                    self.data = &self.data[n..];
                    BatchOp::Put { key, value: v }
                }
                None => return self.fail("truncated batch value"),
            },
            Some(ValueType::Deletion) => BatchOp::Delete { key },
            None => return self.fail("bad batch tag"),
        };
        self.remaining -= 1;
        let index = self.emitted;
        self.emitted += 1;
        Some(Ok((index, op)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrip() {
        let mut b = WriteBatch::new();
        b.put(b"k1", b"v1");
        b.delete(b"k2");
        b.put(b"k3", b"");
        b.set_sequence(42);
        assert_eq!(b.count(), 3);
        assert_eq!(b.sequence(), 42);

        let decoded = WriteBatch::decode(b.encoded()).unwrap();
        let ops: Vec<BatchOp> = decoded.iter().map(|r| r.unwrap().1).collect();
        assert_eq!(
            ops,
            vec![
                BatchOp::Put {
                    key: b"k1",
                    value: b"v1"
                },
                BatchOp::Delete { key: b"k2" },
                BatchOp::Put {
                    key: b"k3",
                    value: b""
                },
            ]
        );
    }

    #[test]
    fn empty_batch() {
        let b = WriteBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
        assert_eq!(b.user_bytes(), 0);
    }

    #[test]
    fn user_bytes_counts_payload() {
        let mut b = WriteBatch::new();
        b.put(b"abc", b"defg"); // 7
        b.delete(b"xy"); // 2
        assert_eq!(b.user_bytes(), 9);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WriteBatch::decode(b"short").is_err());
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        let mut bytes = b.encoded().to_vec();
        bytes.truncate(bytes.len() - 1);
        assert!(WriteBatch::decode(&bytes).is_err());
        // Bad tag byte.
        let mut bytes = b.encoded().to_vec();
        bytes[HEADER] = 99;
        assert!(WriteBatch::decode(&bytes).is_err());
    }
}
