//! Adapter wiring an [`LdcDb`] store into the workload runner.

use ldc_core::LdcDb;
use ldc_workload::KvInterface;

/// Drives an [`LdcDb`] through the [`KvInterface`] the runner expects.
pub struct DbAdapter {
    db: LdcDb,
}

impl DbAdapter {
    /// Wraps a store.
    pub fn new(db: LdcDb) -> Self {
        Self { db }
    }

    /// Borrow the store for inspection.
    pub fn db(&self) -> &LdcDb {
        &self.db
    }

    /// Mutable access to the store.
    pub fn db_mut(&mut self) -> &mut LdcDb {
        &mut self.db
    }

    /// Unwraps back into the store.
    pub fn into_inner(self) -> LdcDb {
        self.db
    }
}

impl KvInterface for DbAdapter {
    fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.db.put(key, value).map_err(|e| e.to_string())
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.db.get(key).map_err(|e| e.to_string())
    }

    fn scan(&mut self, start: &[u8], limit: usize) -> Result<usize, String> {
        self.db
            .scan(start, limit)
            .map(|rows| rows.len())
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_lsm::Options;

    #[test]
    fn adapter_roundtrip() {
        let db = LdcDb::builder()
            .options(Options::small_for_tests())
            .build()
            .unwrap();
        let mut a = DbAdapter::new(db);
        a.insert(b"k", b"v").unwrap();
        assert_eq!(a.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(a.scan(b"", 10).unwrap(), 1);
        assert_eq!(a.db().policy_name(), "ldc");
    }
}
