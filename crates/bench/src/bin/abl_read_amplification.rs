//! Ablation — Theorems 2.2 / 3.2: measured read amplification.
//!
//! LDC's worst-case read amplification is `O(k·log_k(n/b) + u)` (a lookup
//! may consult every covering slice) versus UDC's `O(log_k(n/b) + u)`, but
//! §III-C argues Bloom filters bring the *practical* value close to UDC's.
//! We measure actual device block reads per point lookup for both systems,
//! with filters on and off, on an identical preloaded store (cache
//! disabled, so every consulted block is a device read).

use ldc_bench::prelude::*;
use ldc_workload::preload_workload;

fn run(system: System, bits_per_key: usize, ops: u64, seed: u64) -> (f64, u64) {
    let spec = WorkloadSpec::read_only(ops)
        .with_codec(KeyCodec::new(16, 512))
        .with_seed(seed);
    let mut config = StoreConfig::new(system);
    config.options.bloom_bits_per_key = bits_per_key;
    config.options.block_cache_bytes = 0; // count every block read
    let db = match system {
        System::Ldc => LdcDb::builder().options(config.options.clone()).build(),
        System::Udc => LdcDb::builder()
            .options(config.options.clone())
            .udc_baseline()
            .build(),
    }
    .unwrap();
    let mut adapter = DbAdapter::new(db);
    preload_workload(&spec, &mut adapter).unwrap();
    adapter.db_mut().drain_background();
    let misses_before = adapter.db().block_cache_counters().misses;
    let clock = adapter.db().device().clock().clone();
    ldc_workload::run_measured(&spec, &mut adapter, &clock).unwrap();
    let misses_after = adapter.db().block_cache_counters().misses;
    let blocks = misses_after - misses_before;
    let slices = adapter.db().engine_ref().version().total_slice_links() as u64;
    (blocks as f64 / ops as f64, slices)
}

fn main() {
    let args = CommonArgs::parse(20_000);
    let mut rows = Vec::new();
    for (label, system, bits) in [
        ("UDC, no filters", System::Udc, 0),
        ("LDC, no filters", System::Ldc, 0),
        ("UDC, 10 bits/key", System::Udc, 10),
        ("LDC, 10 bits/key", System::Ldc, 10),
    ] {
        let (blocks_per_get, live_slices) = run(system, bits, args.ops, args.seed);
        rows.push(vec![
            label.to_string(),
            format!("{blocks_per_get:.2}"),
            live_slices.to_string(),
        ]);
    }
    print_table(
        args.csv,
        &format!(
            "Read amplification (Theorems 2.2/3.2): device block reads per GET, {} lookups",
            args.ops
        ),
        &["configuration", "blocks / lookup", "live slice links"],
        &rows,
    );
    println!(
        "\nExpectation: without filters LDC reads notably more blocks per \
         lookup (it must probe covering slices); with 10 bits/key both \
         systems converge near ~1 block per lookup — the paper's §III-C \
         argument that Bloom filters neutralize LDC's read-amplification \
         penalty in practice."
    );
}
