//! Deterministic open-loop arrival schedules.
//!
//! Closed-loop benchmarks (issue the next request when the previous one
//! completes) hide queueing: a slow store simply gets offered less load.
//! Open-loop benchmarks decide *in advance* when every request arrives —
//! the schedule does not care whether the store is ready — which is how
//! flash-friendly backpressure and admission control are actually
//! evaluated ("How to Write to SSDs", VLDB 2026). This module generates
//! those schedules deterministically: same parameters + same seed ⇒ the
//! same nanosecond offsets, so an over-the-wire run is replayable.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Uniform spacing: every gap is exactly `1/rate`.
    Fixed,
    /// Poisson arrivals: exponential gaps with mean `1/rate`, drawn from a
    /// seeded RNG (deterministic per seed).
    Poisson {
        /// RNG seed for the exponential draws.
        seed: u64,
    },
}

/// A deterministic open-loop arrival schedule: `ops` send times (in
/// nanoseconds from the start of the run) at a target `rate_per_sec`.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    rate_per_sec: f64,
    ops: u64,
    process: ArrivalProcess,
}

impl ArrivalSchedule {
    /// Fixed-rate schedule: op `i` arrives at `i / rate` seconds.
    pub fn fixed(rate_per_sec: f64, ops: u64) -> Self {
        Self {
            rate_per_sec: rate_per_sec.max(1e-9),
            ops,
            process: ArrivalProcess::Fixed,
        }
    }

    /// Poisson schedule with mean rate `rate_per_sec`, seeded.
    pub fn poisson(rate_per_sec: f64, ops: u64, seed: u64) -> Self {
        Self {
            rate_per_sec: rate_per_sec.max(1e-9),
            ops,
            process: ArrivalProcess::Poisson { seed },
        }
    }

    /// Target arrival rate (requests per second).
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Number of scheduled arrivals.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The schedule: monotone nondecreasing nanosecond offsets from the
    /// run start, one per op. Deterministic for fixed parameters.
    pub fn offsets_ns(&self) -> Vec<u64> {
        let mean_gap_ns = 1e9 / self.rate_per_sec;
        let mut out = Vec::with_capacity(self.ops as usize);
        match self.process {
            ArrivalProcess::Fixed => {
                for i in 0..self.ops {
                    out.push((i as f64 * mean_gap_ns) as u64);
                }
            }
            ArrivalProcess::Poisson { seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut t = 0.0f64;
                for _ in 0..self.ops {
                    out.push(t as u64);
                    // Inverse-CDF exponential; clamp U away from 0 so the
                    // gap is finite.
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    t += -u.ln() * mean_gap_ns;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_is_uniformly_spaced() {
        let s = ArrivalSchedule::fixed(1000.0, 5);
        assert_eq!(
            s.offsets_ns(),
            vec![0, 1_000_000, 2_000_000, 3_000_000, 4_000_000]
        );
    }

    #[test]
    fn poisson_schedule_is_deterministic_and_monotone() {
        let a = ArrivalSchedule::poisson(500.0, 1000, 42).offsets_ns();
        let b = ArrivalSchedule::poisson(500.0, 1000, 42).offsets_ns();
        assert_eq!(a, b);
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        let c = ArrivalSchedule::poisson(500.0, 1000, 43).offsets_ns();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn poisson_mean_gap_approximates_rate() {
        let rate = 10_000.0;
        let offs = ArrivalSchedule::poisson(rate, 20_000, 7).offsets_ns();
        let span_ns = *offs.last().unwrap() as f64;
        let mean_gap = span_ns / (offs.len() - 1) as f64;
        let expect = 1e9 / rate;
        assert!(
            (mean_gap - expect).abs() / expect < 0.05,
            "mean gap {mean_gap} vs expected {expect}"
        );
    }

    #[test]
    fn zero_ops_is_empty() {
        assert!(ArrivalSchedule::fixed(100.0, 0).offsets_ns().is_empty());
    }
}
