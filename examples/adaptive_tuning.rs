//! Self-adaptive SliceLink threshold in action (paper §III-B4).
//!
//! A day in the life of an analytics store: bulk ingest at night
//! (write-heavy), dashboards by day (read-heavy). A fixed SliceLink
//! threshold is right for one phase and wrong for the other; the adaptive
//! controller follows the mix. This example traces the threshold as the
//! workload shifts.
//!
//! ```text
//! cargo run --release --example adaptive_tuning
//! ```

use ldc::workload::{Distribution, Sampler};
use ldc::{LdcDb, Options};

const PHASE_OPS: u64 = 15_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = LdcDb::builder()
        .options(Options {
            memtable_bytes: 512 << 10,
            sstable_bytes: 512 << 10,
            l1_capacity_bytes: 2 << 20,
            ..Options::default()
        })
        .adaptive_threshold()
        .build()?;
    let clock = db.device().clock().clone();
    let mut chooser = Sampler::new(Distribution::Uniform, 11);
    let keys = 10_000u64;

    // Seed the store so reads hit.
    for i in 0..keys {
        db.put(key(i).as_bytes(), &vec![b'0'; 512])?;
    }

    let phases: &[(&str, f64)] = &[
        ("night bulk ingest (90% writes)", 0.9),
        ("morning mixed (50% writes)", 0.5),
        ("daytime dashboards (10% writes)", 0.1),
        ("evening backfill (70% writes)", 0.7),
    ];
    println!("phase | write ratio | ops/s (virtual) | compaction I/O MiB");
    let mut io_prev = 0u64;
    for (label, write_ratio) in phases {
        let t0 = clock.now();
        let mut flip = Sampler::new(Distribution::Uniform, 97);
        for i in 0..PHASE_OPS {
            let is_write = flip.sample(1000) < (write_ratio * 1000.0) as u64;
            let idx = chooser.sample(keys);
            if is_write {
                db.put(key(idx).as_bytes(), &vec![b'1'; 512])?;
            } else if i % 7 == 0 {
                let _ = db.scan(key(idx).as_bytes(), 20)?;
            } else {
                let _ = db.get(key(idx).as_bytes())?;
            }
        }
        let secs = (clock.now() - t0) as f64 / 1e9;
        let io = db.device().io_stats();
        let compaction = io.compaction_read_bytes() + io.compaction_write_bytes();
        println!(
            "{label:35} | {:>4.0}% | {:>8.0} | {:>8.1}",
            write_ratio * 100.0,
            PHASE_OPS as f64 / secs,
            (compaction - io_prev) as f64 / 1048576.0,
        );
        io_prev = compaction;
    }

    let stats = db.stats();
    println!(
        "\ntotals: {} links, {} ldc merges, {} flushes",
        stats.links, stats.ldc_merges, stats.flushes
    );
    println!(
        "The controller raises T_s during write bursts (bigger, rarer \
         merges) and lowers it when reads dominate (fewer slices to check), \
         per the paper's self-adaption design."
    );
    Ok(())
}

fn key(i: u64) -> String {
    format!("metric:{:012x}", i.wrapping_mul(0x9e3779b97f4a7c15))
}
