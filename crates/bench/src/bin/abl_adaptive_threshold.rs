//! Ablation — self-adaptive SliceLink threshold (§III-B4) vs fixed
//! settings under a workload whose mix shifts over time.
//!
//! Not a paper figure: this checks the design choice that the threshold
//! should track the read/write ratio. We run a write-heavy phase followed
//! by a read-heavy phase and compare (a) fixed small, (b) fixed large,
//! (c) paper default `T_s = k`, and (d) the adaptive controller.

use ldc_bench::prelude::*;
use ldc_workload::{run_measured, run_workload};

fn run_phases(config: &StoreConfig, ops: u64, codec: &KeyCodec, seed: u64) -> (f64, u64) {
    let db = match config.system {
        System::Ldc => {
            let mut b = LdcDb::builder().options(config.options.clone());
            if config.adaptive_threshold {
                b = b.adaptive_threshold();
            } else if let Some(t) = config.slice_link_threshold {
                b = b.slice_link_threshold(t);
            }
            b.build().unwrap()
        }
        System::Udc => LdcDb::builder()
            .options(config.options.clone())
            .udc_baseline()
            .build()
            .unwrap(),
    };
    let device = db.device().clone();
    let mut adapter = DbAdapter::new(db);

    // Phase 1: write-heavy (preloads via the spec).
    let phase1 = WorkloadSpec::write_heavy(ops)
        .with_codec(codec.clone())
        .with_seed(seed);
    run_workload(&phase1, &mut adapter, device.clock()).unwrap();
    // Phase 2: read-heavy over the same population (no second preload).
    let mut phase2 = WorkloadSpec::read_heavy(ops)
        .with_codec(codec.clone())
        .with_seed(seed ^ 1);
    phase2.preload = phase1.preload.max(phase1.key_space);
    phase2.key_space = phase2.preload;
    let t0 = device.clock().now();
    let ops_before = 2; // placeholder to keep shape clear
    let _ = ops_before;
    let report2 = run_measured(&phase2, &mut adapter, device.clock()).unwrap();
    let total_ops = phase1.ops + report2.ops;
    let elapsed = device.clock().now();
    let _ = t0;
    (
        total_ops as f64 * 1e9 / elapsed as f64,
        device.io_stats().compaction_read_bytes() + device.io_stats().compaction_write_bytes(),
    )
}

fn main() {
    let args = CommonArgs::parse(25_000);
    let codec = args.codec();
    let variants: Vec<(&str, StoreConfig)> = vec![
        ("fixed T_s=2", {
            let mut c = StoreConfig::new(System::Ldc);
            c.slice_link_threshold = Some(2);
            c
        }),
        ("fixed T_s=20", {
            let mut c = StoreConfig::new(System::Ldc);
            c.slice_link_threshold = Some(20);
            c
        }),
        ("fixed T_s=k (paper default)", StoreConfig::new(System::Ldc)),
        ("adaptive", {
            let mut c = StoreConfig::new(System::Ldc);
            c.adaptive_threshold = true;
            c
        }),
        ("UDC baseline", StoreConfig::new(System::Udc)),
    ];
    let mut rows = Vec::new();
    for (label, config) in variants {
        let (throughput, compaction_io) = run_phases(&config, args.ops, &codec, args.seed);
        rows.push(vec![
            label.to_string(),
            format!("{throughput:.0}"),
            mib(compaction_io),
        ]);
    }
    print_table(
        args.csv,
        &format!(
            "Ablation: adaptive T_s under a shifting mix (WH then RH, {} ops each)",
            args.ops
        ),
        &[
            "variant",
            "overall throughput (ops/s)",
            "compaction I/O (MiB)",
        ],
        &rows,
    );
    println!(
        "\nExpectation: the adaptive controller lands at or near the best \
         fixed setting across the phase change, without hand-tuning."
    );
}
