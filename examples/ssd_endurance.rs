//! SSD lifetime: how much flash endurance does compaction policy buy?
//!
//! The paper's §IV-D argues LDC "can extend the SSD lifetimes by reducing
//! writes caused by compactions". This example runs the same ingest against
//! UDC and LDC on identical simulated devices and reads the wear out of the
//! FTL: NAND pages programmed, erase cycles consumed, and the projected
//! device lifetime under sustained load.
//!
//! ```text
//! cargo run --release --example ssd_endurance
//! ```

use ldc::{LdcDb, Options, SsdConfig};

const OPS: u64 = 60_000;
const KEYS: u64 = 15_000;

fn run(udc: bool) -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately small device so wear is visible quickly.
    let ssd = SsdConfig {
        capacity_bytes: 256 << 20,
        endurance_cycles: 3_000,
        ..SsdConfig::default()
    };
    let mut builder = LdcDb::builder()
        .options(Options {
            memtable_bytes: 512 << 10,
            sstable_bytes: 512 << 10,
            l1_capacity_bytes: 2 << 20,
            ..Options::default()
        })
        .ssd_config(ssd);
    if udc {
        builder = builder.udc_baseline();
    }
    let db = builder.build()?;

    // Sustained overwrite-heavy ingest (the painful case for flash).
    for i in 0..OPS {
        let key = format!("k{:014x}", (i % KEYS).wrapping_mul(0x9e3779b97f4a7c15));
        db.put(key.as_bytes(), &vec![b'v'; 1024])?;
    }
    db.drain_background();

    let snap = db.device().snapshot();
    let io = snap.io;
    let user_mib = (OPS * (16 + 1024)) as f64 / 1048576.0;
    let device_writes_mib = snap.ftl.host_pages_written as f64 * 4096.0 / 1048576.0;
    println!("== {} ==", if udc { "UDC baseline" } else { "LDC" });
    println!("  user payload written   : {user_mib:>9.1} MiB");
    println!(
        "  store writes (wal+flush+compaction): {:>9.1} MiB  (LSM write amp {:.2}x)",
        io.total_write_bytes() as f64 / 1048576.0,
        io.total_write_bytes() as f64 / (user_mib * 1048576.0)
    );
    println!(
        "  NAND pages programmed  : {:>9.1} MiB host + {:>7.1} MiB GC relocation (device WAF {:.3})",
        device_writes_mib,
        snap.ftl.gc_pages_relocated as f64 * 4096.0 / 1048576.0,
        snap.ftl.write_amplification()
    );
    println!(
        "  erase cycles           : mean {:.2} / max {} per block ({:.3}% of rated endurance)",
        snap.mean_erase_count,
        snap.max_erase_count,
        snap.wear_fraction * 100.0
    );
    // Project lifetime: how many times could we repeat this ingest before
    // the rated endurance is gone?
    if snap.wear_fraction > 0.0 {
        let repeats = 1.0 / snap.wear_fraction;
        println!("  projected lifetime     : {repeats:>9.0} x this workload before wear-out\n");
    } else {
        println!("  projected lifetime     : no measurable wear\n");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "SSD endurance comparison: {OPS} overwrite-heavy puts on a 256 MiB \
         simulated device (3k P/E cycles)\n"
    );
    run(true)?;
    run(false)?;
    println!(
        "Expectation: LDC roughly halves compaction writes (paper §IV-D), \
         so erase-cycle consumption drops and projected lifetime grows \
         accordingly."
    );
    Ok(())
}
