//! Error type for the simulated storage stack.

use std::fmt;

/// Result alias for the SSD substrate.
pub type SsdResult<T> = Result<T, SsdError>;

/// Errors produced by the simulated device and storage backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// The named file does not exist.
    NotFound(String),
    /// A file with the given name already exists.
    AlreadyExists(String),
    /// The logical address space of the device is exhausted.
    DeviceFull,
    /// A read past the end of a file was requested.
    OutOfRange {
        /// File that was being read.
        file: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file size.
        size: u64,
    },
    /// The file handle was already finished/closed.
    Closed(String),
    /// Catch-all for invalid arguments (zero-sized config values, etc.).
    InvalidArgument(String),
    /// An I/O failure surfaced by the backend (host errno, injected fault,
    /// simulated power loss). The engine must propagate these, never panic.
    Io(String),
    /// A read failure the device reports as retryable: the same request may
    /// succeed on a later attempt (controller busy, recoverable ECC pass,
    /// link reset). Callers may retry with backoff; everything else in this
    /// enum is permanent for the request that produced it.
    TransientIo(String),
}

impl SsdError {
    /// Whether retrying the same request may succeed. Only
    /// [`SsdError::TransientIo`] qualifies; all other variants describe
    /// conditions a retry cannot fix (missing files, exhausted capacity,
    /// bad arguments, permanent media errors).
    pub fn is_transient(&self) -> bool {
        matches!(self, SsdError::TransientIo(_))
    }
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::NotFound(name) => write!(f, "file not found: {name}"),
            SsdError::AlreadyExists(name) => write!(f, "file already exists: {name}"),
            SsdError::DeviceFull => write!(f, "simulated device is full"),
            SsdError::OutOfRange {
                file,
                offset,
                len,
                size,
            } => write!(
                f,
                "read out of range: {file} offset={offset} len={len} size={size}"
            ),
            SsdError::Closed(name) => write!(f, "file handle closed: {name}"),
            SsdError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SsdError::Io(msg) => write!(f, "io error: {msg}"),
            SsdError::TransientIo(msg) => write!(f, "transient io error: {msg}"),
        }
    }
}

impl std::error::Error for SsdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SsdError::OutOfRange {
            file: "000001.sst".to_string(),
            offset: 100,
            len: 10,
            size: 50,
        };
        let s = e.to_string();
        assert!(s.contains("000001.sst"));
        assert!(s.contains("offset=100"));
        assert!(SsdError::DeviceFull.to_string().contains("full"));
    }

    #[test]
    fn only_transient_io_is_transient() {
        assert!(SsdError::TransientIo("ecc retry".into()).is_transient());
        for e in [
            SsdError::NotFound("f".into()),
            SsdError::AlreadyExists("f".into()),
            SsdError::DeviceFull,
            SsdError::Closed("f".into()),
            SsdError::InvalidArgument("x".into()),
            SsdError::Io("hard".into()),
        ] {
            assert!(!e.is_transient(), "{e} must be permanent");
        }
    }
}
