//! Self-adaptation of the SliceLink threshold (paper §III-B4).
//!
//! A small threshold merges early: fewer linked slices to consult on reads
//! (better read performance) but more lower-level rewriting per upper-level
//! byte (worse write performance). A large threshold is the reverse. The
//! paper therefore tunes `T_s` to the workload's read/write mix: larger for
//! write-dominated workloads, smaller for read-dominated ones.
//!
//! This controller observes the foreground mix over fixed-size windows and
//! steps the threshold one unit per window toward a target interpolated
//! between 1 (read-only) and `2 * fan_out` (write-only), passing through
//! `fan_out` at a balanced mix — the paper's measured optimum (Fig 12).

/// Workload-driven `T_s` controller.
#[derive(Debug)]
pub struct AdaptiveThreshold {
    fan_out: u64,
    window: u64,
    writes: u64,
    reads: u64,
    current: usize,
}

impl AdaptiveThreshold {
    /// Creates a controller starting at the paper's default (`T_s = k`).
    pub fn new(fan_out: u64, window: u64) -> Self {
        Self {
            fan_out: fan_out.max(1),
            window: window.max(1),
            writes: 0,
            reads: 0,
            current: fan_out.max(1) as usize,
        }
    }

    /// Smallest allowed threshold.
    pub fn min_threshold(&self) -> usize {
        1
    }

    /// Largest allowed threshold.
    pub fn max_threshold(&self) -> usize {
        (2 * self.fan_out) as usize
    }

    /// The currently effective threshold.
    pub fn threshold(&self) -> usize {
        self.current
    }

    /// Records one foreground operation; may close a window and adjust.
    /// Returns `(old, new)` when the closing window actually moved the
    /// threshold, so callers can trace adaptation decisions.
    pub fn observe(&mut self, is_write: bool) -> Option<(usize, usize)> {
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if self.writes + self.reads >= self.window {
            let old = self.current;
            self.adjust();
            self.writes = 0;
            self.reads = 0;
            if self.current != old {
                return Some((old, self.current));
            }
        }
        None
    }

    /// Target threshold for a write ratio: linear between the read-only
    /// optimum (1) and the write-only optimum (2k), hitting exactly k at a
    /// balanced mix.
    fn target_for(&self, write_ratio: f64) -> usize {
        let t = 2.0 * self.fan_out as f64 * write_ratio;
        (t.round() as usize).clamp(self.min_threshold(), self.max_threshold())
    }

    fn adjust(&mut self) {
        let total = self.writes + self.reads;
        if total == 0 {
            return;
        }
        let ratio = self.writes as f64 / total as f64;
        let target = self.target_for(ratio);
        // One step per window: conservative hill-climbing, so a transient
        // burst does not whipsaw the compaction shape.
        self.current = match self.current.cmp(&target) {
            std::cmp::Ordering::Less => self.current + 1,
            std::cmp::Ordering::Greater => self.current - 1,
            std::cmp::Ordering::Equal => self.current,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_fan_out() {
        let a = AdaptiveThreshold::new(10, 100);
        assert_eq!(a.threshold(), 10);
        assert_eq!(a.min_threshold(), 1);
        assert_eq!(a.max_threshold(), 20);
    }

    #[test]
    fn write_heavy_workload_raises_threshold() {
        let mut a = AdaptiveThreshold::new(10, 10);
        for _ in 0..200 {
            a.observe(true);
        }
        assert!(a.threshold() > 10, "got {}", a.threshold());
        assert!(a.threshold() <= 20);
    }

    #[test]
    fn read_heavy_workload_lowers_threshold() {
        let mut a = AdaptiveThreshold::new(10, 10);
        for _ in 0..200 {
            a.observe(false);
        }
        assert!(a.threshold() < 10, "got {}", a.threshold());
        assert!(a.threshold() >= 1);
    }

    #[test]
    fn balanced_workload_stays_at_fan_out() {
        let mut a = AdaptiveThreshold::new(10, 10);
        for i in 0..500 {
            a.observe(i % 2 == 0);
        }
        assert_eq!(a.threshold(), 10);
    }

    #[test]
    fn converges_to_extremes_and_saturates() {
        let mut a = AdaptiveThreshold::new(10, 10);
        for _ in 0..1000 {
            a.observe(true);
        }
        assert_eq!(a.threshold(), 20);
        for _ in 0..1000 {
            a.observe(false);
        }
        assert_eq!(a.threshold(), 1);
    }

    #[test]
    fn shifting_mix_moves_one_step_per_window() {
        let mut a = AdaptiveThreshold::new(10, 10);
        for _ in 0..10 {
            a.observe(true);
        }
        assert_eq!(a.threshold(), 11);
        for _ in 0..10 {
            a.observe(false);
        }
        assert_eq!(a.threshold(), 10);
    }

    #[test]
    fn observe_reports_threshold_changes() {
        let mut a = AdaptiveThreshold::new(10, 10);
        let mut changes = Vec::new();
        for _ in 0..9 {
            assert_eq!(a.observe(true), None, "mid-window ops never adjust");
        }
        if let Some(change) = a.observe(true) {
            changes.push(change);
        }
        assert_eq!(changes, vec![(10, 11)]);
        // A window that lands on the current value reports nothing.
        let mut balanced = AdaptiveThreshold::new(10, 10);
        for i in 0..10 {
            assert_eq!(balanced.observe(i % 2 == 0), None);
        }
    }
}
