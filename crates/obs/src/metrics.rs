//! Per-level gauges and per-operation latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::lockcheck::Mutex;

use crate::trace::Blame;

/// The operation types the engine times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Point lookup.
    Get,
    /// Insert or overwrite.
    Put,
    /// Range scan.
    Scan,
    /// Tombstone write.
    Delete,
}

impl OpType {
    /// Every op type, in a stable order.
    pub const ALL: [OpType; 4] = [OpType::Get, OpType::Put, OpType::Scan, OpType::Delete];

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            OpType::Get => "get",
            OpType::Put => "put",
            OpType::Scan => "scan",
            OpType::Delete => "delete",
        }
    }

    /// Stable index into [`OpType::ALL`]-shaped arrays.
    pub fn index(&self) -> usize {
        match self {
            OpType::Get => 0,
            OpType::Put => 1,
            OpType::Scan => 2,
            OpType::Delete => 3,
        }
    }
}

/// Point-in-time state of one LSM level.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelGauge {
    /// Live files in the level.
    pub files: u64,
    /// Live bytes in the level.
    pub bytes: u64,
    /// Compaction pressure (>= 1.0 means the level is overfull).
    pub score: f64,
}

const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5;

/// Log-linear latency histogram: 64 power-of-two magnitude bands, each
/// split into 32 linear sub-buckets (<= ~3% relative error). The full
/// range of `u64` nanoseconds is representable, so p999/p9999 queries at
/// any magnitude come out of the same buckets.
///
/// This is the workspace's single histogram implementation: `ldc-workload`
/// re-exports it as `Histogram` (the layering rule allows workload → obs,
/// so the old duplicate there is gone).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 64 * SUB_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn index_for(value: u64) -> usize {
        let v = value.max(1);
        let magnitude = 63 - v.leading_zeros();
        if magnitude < SUB_BITS {
            return v as usize;
        }
        let shift = magnitude - SUB_BITS;
        let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        ((magnitude - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let band = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        let shift = (band - 1) as u32;
        ((SUB_BUCKETS + sub) as u64) << shift
    }

    /// Records one nanosecond sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index_for(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at percentile `p` in [0, 100], to bucket resolution.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Self::bucket_value(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

/// Monotonic counters for the degraded-mode machinery: transient-read
/// retries, scrub coverage, corruption findings, and quarantined files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedCounters {
    /// Transient read errors that were retried at the storage boundary.
    pub transient_retries: u64,
    /// Blocks the online scrubber has CRC-verified.
    pub scrub_blocks_verified: u64,
    /// Corruption findings reported by the scrubber.
    pub scrub_corruptions: u64,
    /// SSTables quarantined (renamed and dropped from the live version).
    pub files_quarantined: u64,
}

/// Monotonic counters for the network service layer (`ldc-server`):
/// admission decisions and wire traffic. All zero for embedded stores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Requests admitted into a shard queue.
    pub accepted: u64,
    /// Requests rejected with retry-after because a shard queue was full.
    pub rejected: u64,
    /// Request bytes read off the wire (frame payloads).
    pub bytes_in: u64,
    /// Response bytes written to the wire (frame payloads).
    pub bytes_out: u64,
}

/// Monotonic counters (plus one gauge) for the checkpoint/backup/
/// replication machinery. All zero for stores that never checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationCounters {
    /// Online checkpoints created.
    pub checkpoints: u64,
    /// Version edits shipped onto incremental backup streams.
    pub edits_shipped: u64,
    /// Version edits applied from a backup stream (follower side).
    pub edits_applied: u64,
    /// Gauge: stream records the primary has shipped but this follower
    /// has not yet applied.
    pub lag_edits: u64,
}

/// Shared registry: per-level gauges plus one latency histogram per
/// operation type. All methods take `&self`; interior locking keeps the
/// registry shareable behind an `Arc` across the whole engine.
pub struct MetricsRegistry {
    levels: Mutex<Vec<LevelGauge>>,
    latencies: [Mutex<LatencyHistogram>; 4],
    ops: [AtomicU64; 4],
    degraded: [AtomicU64; 4],
    /// Net-layer counters: accepted, rejected, bytes in, bytes out.
    net: [AtomicU64; 4],
    /// Replication counters: checkpoints, edits shipped, edits applied,
    /// lag gauge.
    repl: [AtomicU64; 4],
    /// Per-op × per-blame attributed nanoseconds (fed by the tracing
    /// layer; all zero when tracing is off).
    blame: [[AtomicU64; Blame::COUNT]; 4],
    /// Accumulated transient-retry backoff nanoseconds (lets the tracing
    /// layer carve retry time out of coarser I/O spans).
    retry_backoff_ns: AtomicU64,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately lock-free: Debug must be safe to call while the
        // registry is being updated.
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self {
            levels: Mutex::new("obs/metrics::levels", Vec::new()),
            latencies: std::array::from_fn(|_| {
                Mutex::new("obs/metrics::latencies", LatencyHistogram::new())
            }),
            ops: std::array::from_fn(|_| AtomicU64::new(0)),
            degraded: std::array::from_fn(|_| AtomicU64::new(0)),
            net: std::array::from_fn(|_| AtomicU64::new(0)),
            repl: std::array::from_fn(|_| AtomicU64::new(0)),
            blame: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            retry_backoff_ns: AtomicU64::new(0),
        }
    }

    /// Records one retried transient read error.
    pub fn record_transient_retry(&self) {
        self.degraded[0].fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates `nanos` of transient-retry backoff charged to the
    /// virtual clock.
    pub fn record_retry_backoff(&self, nanos: u64) {
        self.retry_backoff_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total transient-retry backoff nanoseconds so far. Trace hooks read
    /// this before/after an I/O phase to attribute the delta to
    /// [`Blame::Retry`].
    pub fn retry_backoff_ns(&self) -> u64 {
        self.retry_backoff_ns.load(Ordering::Relaxed)
    }

    /// Adds a traced op's blame breakdown (indexed per [`Blame::ALL`]) to
    /// the per-op totals.
    pub fn record_blame(&self, op: OpType, breakdown: &[u64; Blame::COUNT]) {
        if let Some(row) = self.blame.get(op.index()) {
            for (slot, add) in row.iter().zip(breakdown) {
                if *add > 0 {
                    slot.fetch_add(*add, Ordering::Relaxed);
                }
            }
        }
    }

    /// Total attributed nanoseconds per blame bucket for `op`, indexed
    /// per [`Blame::ALL`].
    pub fn blame_totals(&self, op: OpType) -> [u64; Blame::COUNT] {
        let mut out = [0u64; Blame::COUNT];
        if let Some(row) = self.blame.get(op.index()) {
            for (slot, v) in out.iter_mut().zip(row) {
                *slot = v.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Records `blocks` scrubbed blocks.
    pub fn record_scrub_blocks(&self, blocks: u64) {
        self.degraded[1].fetch_add(blocks, Ordering::Relaxed);
    }

    /// Records one scrub corruption finding.
    pub fn record_scrub_corruption(&self) {
        self.degraded[2].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one quarantined SSTable.
    pub fn record_quarantine(&self) {
        self.degraded[3].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request admitted into a shard queue.
    pub fn record_net_accept(&self) {
        self.net[0].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request rejected by admission control (queue full).
    pub fn record_net_reject(&self) {
        self.net[1].fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates request bytes read off the wire.
    pub fn record_net_bytes_in(&self, bytes: u64) {
        self.net[2].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Accumulates response bytes written to the wire.
    pub fn record_net_bytes_out(&self, bytes: u64) {
        self.net[3].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Snapshot of the net-layer counters.
    pub fn net_counters(&self) -> NetCounters {
        NetCounters {
            accepted: self.net[0].load(Ordering::Relaxed),
            rejected: self.net[1].load(Ordering::Relaxed),
            bytes_in: self.net[2].load(Ordering::Relaxed),
            bytes_out: self.net[3].load(Ordering::Relaxed),
        }
    }

    /// Records one completed online checkpoint.
    pub fn record_checkpoint(&self) {
        self.repl[0].fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the total edits shipped onto backup streams. Set-style rather
    /// than increment: the shipper owns the authoritative count and the
    /// engine mirrors it here at report boundaries.
    pub fn set_edits_shipped(&self, total: u64) {
        self.repl[1].store(total, Ordering::Relaxed);
    }

    /// Records one version edit applied from a backup stream.
    pub fn record_repl_apply(&self) {
        self.repl[2].fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the replication-lag gauge (shipped-but-unapplied records).
    pub fn set_repl_lag(&self, lag_edits: u64) {
        self.repl[3].store(lag_edits, Ordering::Relaxed);
    }

    /// Snapshot of the replication counters.
    pub fn replication_counters(&self) -> ReplicationCounters {
        ReplicationCounters {
            checkpoints: self.repl[0].load(Ordering::Relaxed),
            edits_shipped: self.repl[1].load(Ordering::Relaxed),
            edits_applied: self.repl[2].load(Ordering::Relaxed),
            lag_edits: self.repl[3].load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the degraded-mode counters.
    pub fn degraded_counters(&self) -> DegradedCounters {
        DegradedCounters {
            transient_retries: self.degraded[0].load(Ordering::Relaxed),
            scrub_blocks_verified: self.degraded[1].load(Ordering::Relaxed),
            scrub_corruptions: self.degraded[2].load(Ordering::Relaxed),
            files_quarantined: self.degraded[3].load(Ordering::Relaxed),
        }
    }

    /// Replaces the per-level gauges (one entry per level, L0 first).
    pub fn set_level_gauges(&self, gauges: Vec<LevelGauge>) {
        *self.levels.lock() = gauges;
    }

    /// Snapshot of the per-level gauges.
    pub fn level_gauges(&self) -> Vec<LevelGauge> {
        self.levels.lock().clone()
    }

    /// Records one operation latency.
    pub fn record_latency(&self, op: OpType, nanos: u64) {
        self.latencies[op.index()].lock().record(nanos);
        self.ops[op.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of one op type's latency histogram.
    pub fn latency(&self, op: OpType) -> LatencyHistogram {
        self.latencies[op.index()].lock().clone()
    }

    /// Total operations recorded for `op`.
    pub fn op_count(&self, op: OpType) -> u64 {
        self.ops[op.index()].load(Ordering::Relaxed)
    }

    /// Clears gauges and histograms.
    pub fn reset(&self) {
        self.levels.lock().clear();
        for h in &self.latencies {
            *h.lock() = LatencyHistogram::new();
        }
        for c in &self.ops {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.degraded {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.net {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.repl {
            c.store(0, Ordering::Relaxed);
        }
        for row in &self.blame {
            for c in row {
                c.store(0, Ordering::Relaxed);
            }
        }
        self.retry_backoff_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_snapshots_roundtrip() {
        let reg = MetricsRegistry::new();
        assert!(reg.level_gauges().is_empty());
        reg.set_level_gauges(vec![
            LevelGauge {
                files: 4,
                bytes: 4096,
                score: 1.5,
            },
            LevelGauge {
                files: 10,
                bytes: 1 << 20,
                score: 0.25,
            },
        ]);
        let snap = reg.level_gauges();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].files, 4);
        assert_eq!(snap[1].bytes, 1 << 20);
        assert!((snap[0].score - 1.5).abs() < 1e-9);
        // A new snapshot replaces, not appends.
        reg.set_level_gauges(vec![LevelGauge::default()]);
        assert_eq!(reg.level_gauges().len(), 1);
    }

    #[test]
    fn latencies_tracked_per_op() {
        let reg = MetricsRegistry::new();
        reg.record_latency(OpType::Get, 100);
        reg.record_latency(OpType::Get, 200);
        reg.record_latency(OpType::Put, 5000);
        assert_eq!(reg.latency(OpType::Get).count(), 2);
        assert_eq!(reg.latency(OpType::Put).count(), 1);
        assert_eq!(reg.latency(OpType::Scan).count(), 0);
        assert_eq!(reg.op_count(OpType::Get), 2);
        assert_eq!(reg.op_count(OpType::Delete), 0);
        assert!((reg.latency(OpType::Get).mean() - 150.0).abs() < 1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = MetricsRegistry::new();
        reg.record_latency(OpType::Scan, 42);
        reg.set_level_gauges(vec![LevelGauge::default()]);
        reg.record_transient_retry();
        reg.reset();
        assert!(reg.level_gauges().is_empty());
        assert_eq!(reg.latency(OpType::Scan).count(), 0);
        assert_eq!(reg.op_count(OpType::Scan), 0);
        assert_eq!(reg.degraded_counters(), DegradedCounters::default());
    }

    #[test]
    fn degraded_counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.record_transient_retry();
        reg.record_transient_retry();
        reg.record_scrub_blocks(10);
        reg.record_scrub_blocks(5);
        reg.record_scrub_corruption();
        reg.record_quarantine();
        let c = reg.degraded_counters();
        assert_eq!(c.transient_retries, 2);
        assert_eq!(c.scrub_blocks_verified, 15);
        assert_eq!(c.scrub_corruptions, 1);
        assert_eq!(c.files_quarantined, 1);
    }

    #[test]
    fn histogram_layout_matches_workload_crate() {
        // Same spot-checks as ldc-workload's tests: bounded relative error.
        for magnitude in [5u64, 50, 500, 5_000, 50_000, 500_000, 5_000_000] {
            let mut h = LatencyHistogram::new();
            h.record(magnitude);
            let got = h.percentile(50.0);
            let err = (got as f64 - magnitude as f64).abs() / magnitude as f64;
            assert!(err <= 0.04, "value {magnitude}: got {got} (err {err})");
        }
    }

    #[test]
    fn histogram_edge_cases() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(100.0) == u64::MAX);
        let mut other = LatencyHistogram::new();
        other.record(1);
        h.merge(&other);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn replication_counters_mix_monotonic_and_gauges() {
        let reg = MetricsRegistry::new();
        reg.record_checkpoint();
        reg.record_repl_apply();
        reg.record_repl_apply();
        reg.set_edits_shipped(5);
        reg.set_repl_lag(3);
        let c = reg.replication_counters();
        assert_eq!(c.checkpoints, 1);
        assert_eq!(c.edits_shipped, 5);
        assert_eq!(c.edits_applied, 2);
        assert_eq!(c.lag_edits, 3);
        // Set-style fields overwrite, not accumulate.
        reg.set_edits_shipped(7);
        reg.set_repl_lag(0);
        let c = reg.replication_counters();
        assert_eq!(c.edits_shipped, 7);
        assert_eq!(c.lag_edits, 0);
        reg.reset();
        assert_eq!(reg.replication_counters(), ReplicationCounters::default());
    }

    #[test]
    fn op_labels_are_stable() {
        let labels: Vec<_> = OpType::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["get", "put", "scan", "delete"]);
    }

    #[test]
    fn percentile_bounds_p0_p100_single_sample() {
        let mut h = LatencyHistogram::new();
        h.record(12_345);
        // A single sample dominates every rank, including the extremes.
        assert_eq!(h.percentile(100.0), 12_345, "p100 is the exact max");
        let p0 = h.percentile(0.0);
        assert!(
            (h.min()..=h.max()).contains(&p0),
            "p0 clamps into the observed range: {p0}"
        );
        let p50 = h.percentile(50.0);
        let err = (p50 as f64 - 12_345.0).abs() / 12_345.0;
        assert!(err <= 0.04, "single-sample p50 within bucket error: {p50}");
    }

    #[test]
    fn merge_with_empty_propagates_min_max() {
        // Non-empty <- empty: nothing changes, and the empty side's
        // u64::MAX min sentinel must not leak through.
        let mut a = LatencyHistogram::new();
        a.record(500);
        a.record(9_000);
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 500);
        assert_eq!(a.max(), 9_000);
        // Empty <- non-empty: adopts the other's extremes.
        let mut b = LatencyHistogram::new();
        b.merge(&a);
        assert_eq!(b.count(), 2);
        assert_eq!(b.min(), 500);
        assert_eq!(b.max(), 9_000);
        assert_eq!(b.percentile(100.0), 9_000);
    }

    #[test]
    fn bucket_boundary_rounding_is_monotone_and_bounded() {
        // Values straddling power-of-two band boundaries: each must land
        // in a bucket whose representative value is within the layout's
        // ~3% relative error, and bucket indices must be monotone.
        let mut last_idx = 0usize;
        for v in [
            31u64,
            32,
            33,
            63,
            64,
            65,
            1_023,
            1_024,
            1_025,
            (1 << 40) - 1,
            1 << 40,
        ] {
            let idx = LatencyHistogram::index_for(v);
            assert!(idx >= last_idx, "index_for must be monotone at {v}");
            last_idx = idx;
            let rep = LatencyHistogram::bucket_value(idx);
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(
                err <= 0.04,
                "boundary {v}: representative {rep} (err {err})"
            );
        }
        // Sub-32 values are exact (one bucket per integer); zero shares
        // bucket 1 (`index_for` clamps to 1 before taking the magnitude).
        for v in 1u64..32 {
            assert_eq!(
                LatencyHistogram::bucket_value(LatencyHistogram::index_for(v)),
                v
            );
        }
        assert_eq!(
            LatencyHistogram::index_for(0),
            LatencyHistogram::index_for(1)
        );
    }

    #[test]
    fn blame_totals_accumulate_and_reset() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.blame_totals(OpType::Get), [0; Blame::COUNT]);
        let mut bd = [0u64; Blame::COUNT];
        bd[Blame::CacheMissIo.index()] = 1_000;
        bd[Blame::Engine.index()] = 200;
        reg.record_blame(OpType::Get, &bd);
        reg.record_blame(OpType::Get, &bd);
        let got = reg.blame_totals(OpType::Get);
        assert_eq!(got[Blame::CacheMissIo.index()], 2_000);
        assert_eq!(got[Blame::Engine.index()], 400);
        assert_eq!(reg.blame_totals(OpType::Put), [0; Blame::COUNT]);
        reg.record_retry_backoff(77);
        assert_eq!(reg.retry_backoff_ns(), 77);
        reg.reset();
        assert_eq!(reg.blame_totals(OpType::Get), [0; Blame::COUNT]);
        assert_eq!(reg.retry_backoff_ns(), 0);
    }
}
