// Fixture (checked as crates/lsm/src/compaction.rs): downward references
// and test-only upward references are allowed.
use ldc_obs::sink::EventSink;
use ldc_ssd::IoClass;

fn record(sink: &dyn EventSink) {
    let _ = (sink, IoClass::CompactionWrite);
}

#[cfg(test)]
mod tests {
    use ldc_core::policy::CompactionPolicy; // test code: exempt

    #[test]
    fn t() {
        let _ = core::any::type_name::<dyn CompactionPolicy>();
    }
}
