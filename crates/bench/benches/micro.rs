//! Criterion microbenchmarks for the engine's hot paths: memtable ops,
//! Bloom filters, block encode/seek, CRC, table building, and end-to-end
//! put/get through both compaction policies.
//!
//! ```text
//! cargo bench -p ldc-bench
//! ```

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ldc_core::LdcDb;
use ldc_lsm::block::{Block, BlockBuilder};
use ldc_lsm::crc32c;
use ldc_lsm::filter::BloomFilter;
use ldc_lsm::memtable::MemTable;
use ldc_lsm::table::TableBuilder;
use ldc_lsm::types::{encode_internal_key, ValueType};
use ldc_lsm::Options;

fn ik(i: u64) -> Vec<u8> {
    encode_internal_key(format!("key{i:012}").as_bytes(), i + 1, ValueType::Value)
}

fn bench_memtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("memtable");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("insert_1k", |b| {
        b.iter_batched(
            || MemTable::new(7),
            |mem| {
                for i in 0..1000u64 {
                    mem.add(
                        i + 1,
                        ValueType::Value,
                        format!("key{i:012}").as_bytes(),
                        b"value",
                    );
                }
                mem
            },
            BatchSize::SmallInput,
        )
    });
    let mem = MemTable::new(7);
    for i in 0..10_000u64 {
        mem.add(
            i + 1,
            ValueType::Value,
            format!("key{i:012}").as_bytes(),
            b"value",
        );
    }
    group.throughput(Throughput::Elements(1));
    group.bench_function("get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(mem.get(format!("key{i:012}").as_bytes(), u64::MAX))
        })
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    let keys: Vec<Vec<u8>> = (0..10_000u64)
        .map(|i| format!("key{i:012}").into_bytes())
        .collect();
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("build_10k_keys_10bpk", |b| {
        b.iter(|| BloomFilter::build(black_box(&keys), 10))
    });
    let filter = BloomFilter::build(&keys, 10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("query_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % keys.len();
            black_box(filter.may_contain(&keys[i]))
        })
    });
    group.bench_function("query_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(filter.may_contain(format!("absent{i:010}").as_bytes()))
        })
    });
    group.finish();
}

fn bench_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("block");
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..256u64).map(|i| (ik(i), vec![b'v'; 100])).collect();
    group.throughput(Throughput::Elements(256));
    group.bench_function("build_256_entries", |b| {
        b.iter(|| {
            let mut builder = BlockBuilder::new(16);
            for (k, v) in &entries {
                builder.add(k, v);
            }
            black_box(builder.finish())
        })
    });
    let block = {
        let mut builder = BlockBuilder::new(16);
        for (k, v) in &entries {
            builder.add(k, v);
        }
        Block::new(bytes::Bytes::from(builder.finish())).unwrap()
    };
    group.throughput(Throughput::Elements(1));
    group.bench_function("seek", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 97) % 256;
            let mut it = block.iter();
            it.seek(&ik(i));
            black_box(it.valid())
        })
    });
    group.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32c");
    let data = vec![0xabu8; 4096];
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("4kib", |b| b.iter(|| crc32c::crc32c(black_box(&data))));
    group.finish();
}

fn bench_table_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("table");
    group.sample_size(20);
    group.throughput(Throughput::Elements(2000));
    group.bench_function("build_2k_entries", |b| {
        b.iter(|| {
            let mut builder = TableBuilder::new(4096, 16, 10);
            for i in 0..2000u64 {
                builder.add(&ik(i), &vec![b'v'; 256]);
            }
            black_box(builder.finish())
        })
    });
    group.finish();
}

fn bench_db_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("db");
    group.sample_size(10);
    let options = || Options {
        memtable_bytes: 64 << 10,
        sstable_bytes: 64 << 10,
        l1_capacity_bytes: 256 << 10,
        ..Options::default()
    };
    group.throughput(Throughput::Elements(5000));
    for (label, udc) in [("ldc_put_5k", false), ("udc_put_5k", true)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut builder = LdcDb::builder().options(options());
                    if udc {
                        builder = builder.udc_baseline();
                    }
                    builder.build().unwrap()
                },
                |db| {
                    for i in 0..5000u64 {
                        let key = format!("k{:014x}", i.wrapping_mul(0x9e3779b97f4a7c15));
                        db.put(key.as_bytes(), &[b'v'; 128]).unwrap();
                    }
                    db
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_memtable,
    bench_bloom,
    bench_block,
    bench_crc,
    bench_table_build,
    bench_db_end_to_end
);
criterion_main!(benches);
