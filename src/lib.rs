//! # ldc — Lower-level Driven Compaction for SSD-oriented key-value stores
//!
//! Umbrella crate for the reproduction of the ICDE 2019 paper *"LDC: A
//! Lower-Level Driven Compaction Method to Optimize SSD-Oriented Key-Value
//! Stores"* (Chai et al.). It re-exports the five layers:
//!
//! * [`obs`] — observability: structured event tracing, per-level metrics,
//!   latency histograms (every other layer reports into it);
//! * [`ssd`] — simulated SSD substrate (virtual clock, FTL, wear, storage);
//! * [`lsm`] — a from-scratch LevelDB-class LSM engine with the UDC
//!   baseline compaction policy;
//! * [`core`] — the LDC mechanism itself (link & merge, slice links,
//!   adaptive threshold) and the high-level [`LdcDb`] store;
//! * [`workload`] — YCSB-style workload generation and measurement;
//!
//! plus the network tier (DESIGN.md §13): [`client`] (wire protocol and
//! TCP clients) and [`server`] (multi-shard hosting with admission
//! control), and the replication tier (DESIGN.md §14): [`sync`] (a
//! read-only follower bootstrapped from an online checkpoint that tails
//! the primary's incremental backup stream).
//!
//! ```
//! use ldc::LdcDb;
//!
//! let mut db = LdcDb::builder().build().unwrap();
//! db.put(b"hello", b"world").unwrap();
//! assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use ldc_client as client;
pub use ldc_core as core;
pub use ldc_lsm as lsm;
pub use ldc_obs as obs;
pub use ldc_server as server;
pub use ldc_ssd as ssd;
pub use ldc_sync as sync;
pub use ldc_workload as workload;

pub use ldc_core::{AdaptiveThreshold, CompactionMode, LdcConfig, LdcDb, LdcDbBuilder, LdcPolicy};
pub use ldc_lsm::{
    repair_db, repair_db_with_sink, CorruptionInfo, CorruptionPolicy, Options, QuarantinedFile,
    RepairReport, ScrubReport, WriteBatch,
};
pub use ldc_ssd::SsdConfig;
