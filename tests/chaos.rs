//! Full-stack chaos tests: deterministic crash points, bit flips, and
//! injected I/O errors driven through `ldc-chaos`, for both the LDC
//! mechanism and the UDC baseline.
//!
//! Every run derives from a pinned seed; a failure's panic message
//! carries the `(seed, crash point)` replay recipe. To replay locally:
//!
//! ```text
//! ChaosHarness::new(ChaosConfig::quick(SEED, mode)).run_crash_point(K)
//! ```

use std::sync::Arc;

use proptest::prelude::*;

use ldc::ssd::{IoClass, MemStorage, SsdDevice, StorageBackend};
use ldc::{CompactionMode, LdcConfig, LdcDb, Options};
use ldc_chaos::{BitFlipOutcome, BitFlipTarget, ChaosConfig, ChaosHarness};

fn mode(ldc: bool) -> CompactionMode {
    if ldc {
        CompactionMode::Ldc(LdcConfig::default())
    } else {
        CompactionMode::Udc
    }
}

fn harness(seed: u64, ldc: bool) -> ChaosHarness {
    ChaosHarness::new(ChaosConfig::quick(seed, mode(ldc)))
}

/// Crash points to test for one workload: the first few storage ops (db
/// creation and first appends) plus points spread across the whole run.
fn sweep_points(total_ops: u64) -> Vec<u64> {
    let mut points: Vec<u64> = (1..=6).collect();
    let step = (total_ops / 12).max(1);
    points.extend((1..=12).map(|i| i * step));
    points.push(total_ops + 100); // past the end: no crash fires
    points
}

fn run_sweep(ldc: bool, seed: u64) {
    let h = harness(seed, ldc);
    let total = h.measure_storage_ops().unwrap_or_else(|f| panic!("{f}"));
    let reports = h
        .crash_sweep(sweep_points(total))
        .unwrap_or_else(|f| panic!("{f}"));
    // The sweep must include real crashes mid-data, and the past-the-end
    // point must complete the workload.
    assert!(reports.iter().any(|r| r.crashed && r.acked_writes > 0));
    let last = reports.last().unwrap();
    assert!(!last.crashed);
    assert_eq!(last.acked_writes, h.config().ops);
    // Some crash point must exercise torn/un-synced tail discarding.
    assert!(
        reports
            .iter()
            .any(|r| r.crashed && r.power_cycle.bytes_discarded > 0),
        "no crash point discarded un-synced bytes"
    );
}

#[test]
fn crash_sweep_udc() {
    run_sweep(false, 0xC0FFEE);
}

#[test]
fn crash_sweep_ldc() {
    run_sweep(true, 0xC0FFEE);
}

#[test]
fn crash_point_replay_is_deterministic() {
    for ldc in [false, true] {
        let a = harness(7, ldc)
            .run_crash_point(33)
            .unwrap_or_else(|f| panic!("{f}"));
        let b = harness(7, ldc)
            .run_crash_point(33)
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(a.acked_writes, b.acked_writes);
        assert_eq!(a.power_cycle, b.power_cycle);
        assert_eq!(a.recovery, b.recovery);
    }
}

#[test]
fn bit_flip_in_wal_is_detected_or_masked() {
    for seed in [1u64, 2, 3] {
        for ldc in [false, true] {
            harness(seed, ldc)
                .run_bit_flip(BitFlipTarget::Wal)
                .unwrap_or_else(|f| panic!("{f}"));
        }
    }
}

#[test]
fn bit_flip_in_sstable_never_serves_wrong_data() {
    for seed in [4u64, 5, 6] {
        for ldc in [false, true] {
            let report = harness(seed, ldc)
                .run_bit_flip(BitFlipTarget::Sstable)
                .unwrap_or_else(|f| panic!("{f}"));
            // A flipped SSTable bit always lands in some checksummed
            // region, so the damage must be *detectable* somewhere even
            // when every point read happens to dodge it.
            let detected = match &report.outcome {
                BitFlipOutcome::DetectedAtOpen(_) => true,
                BitFlipOutcome::Reopened {
                    detected_reads,
                    integrity_ok,
                    ..
                } => *detected_reads > 0 || !integrity_ok,
            };
            assert!(
                detected,
                "sstable flip in {} (byte {}, bit {}) went undetected",
                report.file, report.offset, report.bit
            );
        }
    }
}

#[test]
fn bit_flip_in_manifest_is_detected_or_masked() {
    for seed in [8u64, 9, 10] {
        for ldc in [false, true] {
            harness(seed, ldc)
                .run_bit_flip(BitFlipTarget::Manifest)
                .unwrap_or_else(|f| panic!("{f}"));
        }
    }
}

#[test]
fn injected_io_errors_fail_stop_and_recover() {
    for ldc in [false, true] {
        let report = harness(11, ldc)
            .run_io_errors(0.02)
            .unwrap_or_else(|f| panic!("{f}"));
        assert!(report.injected_errors > 0, "no error was injected");
        assert!(report.first_error_op.is_some());
    }
}

/// Mid-log WAL corruption must quarantine the bad log (and everything
/// after it) and recover to the last consistent point in time — here the
/// corruption hits the first record, so that point is "before this log".
#[test]
fn mid_wal_corruption_quarantines_and_recovers_point_in_time() {
    let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::with_defaults());
    let options = Options::small_for_tests();
    let open = |storage: &Arc<dyn StorageBackend>| {
        LdcDb::builder()
            .options(options.clone())
            .udc_baseline()
            .storage(Arc::clone(storage))
            .build()
    };
    {
        let db = open(&storage).unwrap();
        for k in 0..10u32 {
            db.put(format!("k{k}").as_bytes(), b"unflushed").unwrap();
        }
    } // crash with all writes in the WAL only
    let log = storage
        .list()
        .into_iter()
        .find(|n| n.ends_with(".log"))
        .expect("a WAL must exist");
    // Corrupt the first record's payload (header is 7 bytes).
    let mut data = storage.read_all(&log, IoClass::Other).unwrap().to_vec();
    data[10] ^= 0xff;
    storage.write_file(&log, &data, IoClass::Other).unwrap();

    let db = open(&storage).unwrap();
    let recovery = db.recovery_summary();
    assert_eq!(
        recovery.records_replayed, 0,
        "corrupt head must stop replay"
    );
    assert_eq!(recovery.files_quarantined, 1);
    assert!(
        storage.list().iter().any(|n| n.ends_with(".quarantined")),
        "bad log must be set aside, not deleted: {:?}",
        storage.list()
    );
    // Point-in-time state: the store is empty, not serving garbage.
    for k in 0..10u32 {
        assert_eq!(db.get(format!("k{k}").as_bytes()).unwrap(), None);
    }
    // And the recovery is reported in the stats block.
    let report = db.stats_report();
    assert!(report.contains("Recovery:"), "{report}");
    assert!(report.contains("1 files quarantined"), "{report}");
}

/// The per-recovery summary line surfaces real counts after a normal
/// (torn-tail) crash recovery.
#[test]
fn recovery_summary_surfaces_in_stats_report() {
    let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::with_defaults());
    let open = |storage: &Arc<dyn StorageBackend>| {
        LdcDb::builder()
            .options(Options::small_for_tests())
            .storage(Arc::clone(storage))
            .build()
            .unwrap()
    };
    {
        let db = open(&storage);
        for k in 0..25u32 {
            db.put(format!("key{k:04}").as_bytes(), b"wal-resident")
                .unwrap();
        }
    }
    let db = open(&storage);
    let summary = db.recovery_summary();
    assert_eq!(summary.records_replayed, 25);
    assert!(summary.wals_replayed >= 1);
    let report = db.stats_report();
    assert!(
        report.contains(&format!(
            "Recovery: {} records replayed from {} logs",
            summary.records_replayed, summary.wals_replayed
        )),
        "{report}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Any crash point under any seed recovers to exactly the
    /// acknowledged state (the harness panics with a replay recipe
    /// otherwise). The offline proptest shim generates fresh cases per
    /// run; failures found here get pinned as plain tests.
    #[test]
    fn any_crash_point_recovers_exactly(
        seed in 0u64..1_000,
        crash_op in 1u64..700,
        ldc in any::<bool>(),
    ) {
        let h = ChaosHarness::new(ChaosConfig {
            ops: 150,
            ..ChaosConfig::quick(seed, mode(ldc))
        });
        let report = h.run_crash_point(crash_op);
        prop_assert!(report.is_ok(), "{}", report.err().unwrap());
    }
}
