//! Property tests over the on-device formats: blocks, tables, logs, and
//! version edits must round-trip arbitrary well-formed inputs, and the
//! readers must reject corruption rather than return wrong data.

use std::sync::Arc;

use proptest::prelude::*;

use ldc_lsm::block::{Block, BlockBuilder};
use ldc_lsm::cache::BlockCache;
use ldc_lsm::table::{Table, TableBuilder};
use ldc_lsm::types::{
    compare_internal_keys, encode_internal_key, KeyRange, ValueType, MAX_SEQUENCE,
};
use ldc_lsm::version::{FileMeta, SliceLink, VersionEdit};
use ldc_lsm::wal::{LogReader, LogWriter};
use ldc_ssd::{IoClass, MemStorage, SsdConfig, SsdDevice, StorageBackend};

fn sorted_entries() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    // Unique user keys with values; sorted by internal key order.
    prop::collection::btree_map(
        prop::collection::vec(any::<u8>(), 1..24),
        (prop::collection::vec(any::<u8>(), 0..64), 1u64..1000),
        1..120,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(ukey, (value, seq))| (encode_internal_key(&ukey, seq, ValueType::Value), value))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn block_roundtrips_arbitrary_entries(
        entries in sorted_entries(),
        restart_interval in 1usize..20,
    ) {
        let mut builder = BlockBuilder::new(restart_interval);
        for (k, v) in &entries {
            builder.add(k, v);
        }
        let block = Block::new(bytes::Bytes::from(builder.finish())).unwrap();
        let mut it = block.iter();
        it.seek_to_first();
        for (k, v) in &entries {
            prop_assert!(it.valid());
            prop_assert_eq!(it.key(), k.as_slice());
            prop_assert_eq!(it.value(), v.as_slice());
            it.next();
        }
        prop_assert!(!it.valid());
        // Seeking to each key finds exactly that entry.
        for (k, v) in &entries {
            it.seek(k);
            prop_assert!(it.valid());
            prop_assert_eq!(it.key(), k.as_slice());
            prop_assert_eq!(it.value(), v.as_slice());
        }
    }

    #[test]
    fn table_roundtrips_and_serves_gets(
        entries in sorted_entries(),
        block_bytes in 64usize..2048,
    ) {
        let mut builder = TableBuilder::new(block_bytes, 8, 10);
        for (k, v) in &entries {
            builder.add(k, v);
        }
        let finished = builder.finish();
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::default()));
        storage.write_file("t.sst", &finished.bytes, IoClass::FlushWrite).unwrap();
        let table = Table::open(
            storage,
            "t.sst",
            1,
            Arc::new(BlockCache::new(1 << 20)),
        )
        .unwrap();
        // Every entry is retrievable.
        for (k, v) in &entries {
            let ukey = ldc_lsm::types::user_key(k);
            let hit = table.get(ukey, MAX_SEQUENCE, IoClass::UserRead).unwrap();
            let (_, vt, value) = hit.expect("present key");
            prop_assert_eq!(vt, ValueType::Value);
            prop_assert_eq!(value.as_ref(), v.as_slice());
        }
        // Full iteration preserves order and content.
        let mut it = table.iter(IoClass::UserRead);
        it.seek_to_first();
        let mut n = 0;
        let mut prev: Option<Vec<u8>> = None;
        while it.valid() {
            if let Some(p) = &prev {
                prop_assert!(compare_internal_keys(p, it.key()).is_lt());
            }
            prev = Some(it.key().to_vec());
            n += 1;
            it.next();
        }
        prop_assert_eq!(n, entries.len());
    }

    #[test]
    fn table_range_iterators_respect_bounds(
        entries in sorted_entries(),
        lo in prop::collection::vec(any::<u8>(), 0..8),
        hi in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        prop_assume!(!entries.is_empty());
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut builder = TableBuilder::new(512, 8, 10);
        for (k, v) in &entries {
            builder.add(k, v);
        }
        let finished = builder.finish();
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::default()));
        storage.write_file("t.sst", &finished.bytes, IoClass::FlushWrite).unwrap();
        let table = Table::open(storage, "t.sst", 1, Arc::new(BlockCache::new(1 << 20))).unwrap();
        let range = KeyRange::new(lo.clone(), hi.clone());
        let mut it = table.range_iter(range, IoClass::UserRead);
        it.seek_to_first();
        let mut seen = 0usize;
        while it.valid() {
            let ukey = ldc_lsm::types::user_key(it.key());
            prop_assert!(ukey >= lo.as_slice() && ukey < hi.as_slice());
            seen += 1;
            it.next();
        }
        let expected = entries
            .iter()
            .filter(|(k, _)| {
                let u = ldc_lsm::types::user_key(k);
                u >= lo.as_slice() && u < hi.as_slice()
            })
            .count();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn log_roundtrips_arbitrary_records(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..5000), 1..40),
    ) {
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::default()));
        let mut writer = LogWriter::new(storage.clone(), "p.log", IoClass::WalWrite);
        for r in &records {
            writer.add_record(r).unwrap();
        }
        let mut reader = LogReader::open(storage.as_ref(), "p.log").unwrap();
        for r in &records {
            let got = reader.read_record().unwrap().expect("record");
            prop_assert_eq!(&got, r);
        }
        prop_assert_eq!(reader.read_record().unwrap(), None);
    }

    #[test]
    fn log_truncation_never_yields_garbage(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..600), 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::default()));
        let mut writer = LogWriter::new(storage.clone(), "p.log", IoClass::WalWrite);
        for r in &records {
            writer.add_record(r).unwrap();
        }
        let bytes = storage.read_all("p.log", IoClass::Other).unwrap().to_vec();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let mut reader = LogReader::from_bytes(bytes[..cut].to_vec());
        // Every record read back must be a prefix of the original stream.
        let mut i = 0;
        while let Some(got) = reader.read_record().unwrap() {
            prop_assert!(i < records.len());
            prop_assert_eq!(&got, &records[i]);
            i += 1;
        }
    }

    #[test]
    fn version_edit_roundtrips(
        log_number in prop::option::of(any::<u64>()),
        files in prop::collection::vec((0u32..7, any::<u64>(), any::<u64>()), 0..10),
        links in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(),
             prop::collection::vec(any::<u8>(), 0..8),
             prop::option::of(prop::collection::vec(any::<u8>(), 0..8))),
            0..8,
        ),
    ) {
        let mut edit = VersionEdit {
            log_number,
            ..Default::default()
        };
        for (level, number, size) in files {
            edit.new_files.push((
                level,
                FileMeta {
                    number,
                    size,
                    smallest: encode_internal_key(b"a", 1, ValueType::Value),
                    largest: encode_internal_key(b"z", 1, ValueType::Value),
                    slices: Vec::new(),
                },
            ));
        }
        for (target, source, seq, bytes, lo, hi) in links {
            edit.new_links.push((
                target,
                SliceLink {
                    source_file: source,
                    range: KeyRange { lo, hi },
                    link_seq: seq,
                    approx_bytes: bytes,
                },
            ));
        }
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        prop_assert_eq!(decoded, edit);
    }

    #[test]
    fn corrupt_table_bytes_never_return_wrong_data(
        entries in sorted_entries(),
        flip_at in any::<prop::sample::Index>(),
    ) {
        prop_assume!(entries.len() >= 4);
        let mut builder = TableBuilder::new(256, 4, 10);
        for (k, v) in &entries {
            builder.add(k, v);
        }
        let mut bytes = builder.finish().bytes;
        let idx = flip_at.index(bytes.len());
        bytes[idx] ^= 0xff;
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::default()));
        storage.write_file("bad.sst", &bytes, IoClass::FlushWrite).unwrap();
        // Opening may fail (footer/index corruption) — that is fine. If it
        // opens, every get must either error or return the original value.
        if let Ok(table) = Table::open(storage, "bad.sst", 1, Arc::new(BlockCache::new(0))) {
            for (k, v) in entries.iter().take(16) {
                let ukey = ldc_lsm::types::user_key(k);
                match table.get(ukey, MAX_SEQUENCE, IoClass::UserRead) {
                    Ok(Some((_, _, value))) => prop_assert_eq!(value.as_ref(), v.as_slice()),
                    Ok(None) => {} // bloom bit flipped: a miss is safe
                    Err(_) => {}   // detected corruption is safe
                }
            }
        }
    }
}
