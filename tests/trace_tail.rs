//! Tail-attribution invariants, end to end.
//!
//! Two properties anchor the tracing layer:
//!
//! 1. **Exact blame accounting** — for any span tree a request can build
//!    (arbitrary nesting, unclosed spans, carve-outs), the per-blame
//!    self-time buckets sum to the trace's total latency *exactly*. The
//!    proptests here drive [`TraceCtx`] through generated operation
//!    sequences; the engine tests check the same invariant on traces the
//!    real read/write paths produced.
//! 2. **Deterministic capture** — the worst-K reservoir is part of the
//!    reproducibility contract: two runs with the same seed and workload
//!    must capture byte-identical reservoirs, and a store built without
//!    tracing must behave identically to one that never heard of it.

use ldc_core::LdcDb;
use ldc_lsm::Options;
use ldc_obs::{Blame, OpType, TraceCtx};
use proptest::prelude::*;

/// One generated step of trace construction.
#[derive(Debug, Clone)]
enum Step {
    /// Open a child span under the innermost open span.
    Enter { blame: usize, dt: u64 },
    /// Close the innermost open span.
    Exit { dt: u64 },
    /// Closed leaf span of the given width.
    Leaf { blame: usize, dt: u64, width: u64 },
    /// Reclassify trailing nanos of the last closed span.
    Carve { blame: usize, nanos: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..Blame::COUNT, 0u64..2_000).prop_map(|(blame, dt)| Step::Enter { blame, dt }),
        (0u64..2_000).prop_map(|dt| Step::Exit { dt }),
        (0..Blame::COUNT, 0u64..2_000, 0u64..2_000).prop_map(|(blame, dt, width)| Step::Leaf {
            blame,
            dt,
            width
        }),
        (0..Blame::COUNT, 0u64..4_000).prop_map(|(blame, nanos)| Step::Carve { blame, nanos }),
    ]
}

proptest! {
    /// Whatever shape the span tree takes — including carves larger than
    /// their parent and spans left open at finish — the blame buckets sum
    /// to the root's duration exactly.
    #[test]
    fn blame_buckets_sum_to_total_for_generated_span_trees(
        start in 0u64..1_000_000,
        steps in prop::collection::vec(step_strategy(), 0..64),
        tail_dt in 0u64..2_000,
    ) {
        let mut now = start;
        let mut ctx = TraceCtx::new(OpType::Get, now);
        for step in steps {
            match step {
                Step::Enter { blame, dt } => {
                    now += dt;
                    ctx.enter(Blame::ALL[blame], "enter", now);
                }
                Step::Exit { dt } => {
                    now += dt;
                    ctx.exit(now);
                }
                Step::Leaf { blame, dt, width } => {
                    now += dt;
                    ctx.span(Blame::ALL[blame], "leaf", now, now + width);
                    now += width;
                }
                Step::Carve { blame, nanos } => {
                    ctx.carve_from_last(Blame::ALL[blame], "carve", nanos);
                }
            }
        }
        now += tail_dt;
        let trace = ctx.finish(now, 0);
        prop_assert_eq!(trace.total, now - start);
        let sum: u64 = trace.blame_breakdown().iter().sum();
        prop_assert_eq!(sum, trace.total, "blame sum must equal total exactly");
    }

    /// Folded stacks carry the same exact accounting: leaf weights are
    /// self-times, so they also sum to the total.
    #[test]
    fn folded_stack_weights_sum_to_total(
        steps in prop::collection::vec(step_strategy(), 0..48),
    ) {
        let mut now = 0u64;
        let mut ctx = TraceCtx::new(OpType::Put, now);
        for step in steps {
            match step {
                Step::Enter { blame, dt } => {
                    now += dt;
                    ctx.enter(Blame::ALL[blame], "enter", now);
                }
                Step::Exit { dt } => {
                    now += dt;
                    ctx.exit(now);
                }
                Step::Leaf { blame, dt, width } => {
                    now += dt;
                    ctx.span(Blame::ALL[blame], "leaf", now, now + width);
                    now += width;
                }
                Step::Carve { blame, nanos } => {
                    ctx.carve_from_last(Blame::ALL[blame], "carve", nanos);
                }
            }
        }
        let trace = ctx.finish(now + 1, 0);
        let folded: u64 = trace.folded_stacks().iter().map(|(_, w)| w).sum();
        prop_assert_eq!(folded, trace.total);
    }
}

/// Runs a small deterministic mixed workload against a traced store.
fn traced_run(seed: u64) -> LdcDb {
    let db = LdcDb::builder()
        .options(Options {
            seed,
            ..Options::small_for_tests()
        })
        .trace_worst_k(6)
        .build()
        .expect("open");
    for i in 0..400u64 {
        let key = format!("key{:05}", i % 97);
        if i % 3 == 0 {
            db.put(key.as_bytes(), vec![b'v'; 128].as_slice()).unwrap();
        } else {
            db.get(key.as_bytes()).unwrap();
        }
        if i % 31 == 0 {
            db.scan(key.as_bytes(), 5).unwrap();
        }
    }
    db
}

#[test]
fn engine_traces_blame_sums_equal_total_exactly() {
    let db = traced_run(7);
    let worst = db.worst_traces();
    assert!(!worst.is_empty(), "reservoir captured nothing");
    for trace in &worst {
        let sum: u64 = trace.blame_breakdown().iter().sum();
        assert_eq!(
            sum,
            trace.total,
            "trace {} #{} lost nanoseconds in attribution",
            trace.op.label(),
            trace.op_index
        );
        let span_count = trace.spans.len();
        assert!(span_count >= 1, "root span missing");
    }
}

#[test]
fn same_seed_reruns_reproduce_the_reservoir_byte_identically() {
    let render = |db: &LdcDb| {
        let mut out = String::new();
        for t in db.worst_traces() {
            out.push_str(&format!(
                "{} #{} total={}\n",
                t.op.label(),
                t.op_index,
                t.total
            ));
            for s in &t.spans {
                out.push_str(&format!(
                    "  {} {} {}..{} parent={}\n",
                    s.blame.label(),
                    s.label,
                    s.start,
                    s.end,
                    s.parent
                ));
            }
        }
        out.push_str(&db.trace_folded_report());
        out.push_str(&db.tail_report());
        out
    };
    let a = traced_run(42);
    let b = traced_run(42);
    let ra = render(&a);
    assert_eq!(ra, render(&b), "same seed must reproduce the reservoir");
    assert!(!ra.is_empty());
}

#[test]
fn tracing_off_store_knows_nothing_of_traces() {
    let db = LdcDb::builder()
        .options(Options::small_for_tests())
        .build()
        .expect("open");
    db.put(b"k", b"v").unwrap();
    assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
    assert!(db.worst_traces().is_empty());
    assert!(db.trace_folded_report().is_empty());
    // Blame totals stay zero: nothing traced, nothing attributed.
    let totals = db.metrics().blame_totals(OpType::Get);
    assert_eq!(totals.iter().sum::<u64>(), 0);
}

#[test]
fn reset_traces_clears_reservoir_and_restarts_op_indices() {
    let db = traced_run(9);
    assert!(!db.worst_traces().is_empty());
    db.reset_traces();
    assert!(db.worst_traces().is_empty());
    db.put(b"after-reset", b"v").unwrap();
    let worst = db.worst_traces();
    assert_eq!(worst.len(), 1);
    assert_eq!(worst[0].op_index, 0, "arrival counters must restart");
}

/// Threaded-mode writes: stall time spent parked on the worker pool's
/// gates lands in the `worker_queue` blame bucket, and the exact-sum
/// invariant holds for traces produced by the threaded write path too.
#[test]
fn threaded_writes_attribute_stalls_to_worker_queue() {
    let db = LdcDb::builder()
        .options(Options {
            memtable_bytes: 4 << 10,
            sstable_bytes: 4 << 10,
            l1_capacity_bytes: 16 << 10,
            block_bytes: 1 << 10,
            ..Options::small_for_tests()
        })
        .background_workers(1)
        .trace_worst_k(8)
        .build()
        .expect("open");

    // Hammer one lagging worker until a write actually parks on a gate
    // (bounded so a fast machine can't spin forever).
    let value = vec![b'w'; 512];
    let mut stalled = false;
    for i in 0..40_000u64 {
        db.put(format!("key{i:08}").as_bytes(), &value).unwrap();
        if i % 256 == 0 && db.stats().stalls > 0 {
            stalled = true;
            break;
        }
    }
    db.drain_background();

    let worst = db.worst_traces();
    assert!(!worst.is_empty(), "reservoir captured nothing");
    for trace in &worst {
        let sum: u64 = trace.blame_breakdown().iter().sum();
        assert_eq!(
            sum, trace.total,
            "threaded trace lost nanoseconds in attribution"
        );
    }
    assert!(
        stalled,
        "one lagging worker never forced a gate stall in 40k writes"
    );
    if stalled {
        let totals = db.metrics().blame_totals(OpType::Put);
        assert!(
            totals[Blame::WorkerQueue.index()] > 0,
            "stalls recorded ({}) but no worker_queue blame: {totals:?}",
            db.stats().stalls
        );
    }
}
