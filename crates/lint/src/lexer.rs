//! A small Rust "lexer" sufficient for invariant linting.
//!
//! This is deliberately not a full parser: the rules only need a view of
//! the source with comments and string/char literals blanked out (so token
//! searches never match inside them), a per-line map of which lines belong
//! to test code (`#[cfg(test)]` items, `#[test]` functions, `mod tests`
//! blocks), and the set of `// ldc-lint: allow(<rule>) — <reason>`
//! suppression comments. Byte offsets and line numbers are preserved
//! exactly: blanked regions are replaced with spaces, newlines are kept.

/// One `// ldc-lint: allow(rule) — reason` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on. A suppression covers its own
    /// line (trailing comment) and the next line (comment-above style).
    pub line: usize,
    /// The rule id inside `allow(...)`.
    pub rule: String,
    /// Free-text justification after the closing parenthesis. A
    /// suppression with an empty reason is ignored (the violation it
    /// tried to hide is reported), which enforces the convention.
    pub reason: String,
}

/// A lexed source file: blanked code plus line metadata.
#[derive(Debug, Clone)]
pub struct SourceView {
    /// Same length as the original source; comment and literal contents
    /// replaced by spaces.
    pub code: String,
    /// The original, unblanked source. Rules that need the *contents* of
    /// a literal (e.g. the lock-id string at a `Mutex::new("…", …)` call
    /// found via `code` offsets) read it from here; offsets are shared.
    pub raw: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
    /// `true` for lines inside test-only regions (0-indexed).
    test_lines: Vec<bool>,
    /// All suppression comments found, in file order.
    pub suppressions: Vec<Suppression>,
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl SourceView {
    /// Lexes `src` into a blanked view.
    pub fn new(src: &str) -> SourceView {
        let bytes = src.as_bytes();
        let mut out = bytes.to_vec();
        let mut suppressions = Vec::new();
        let mut line_starts = vec![0usize];
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let line_of = |pos: usize| match line_starts.binary_search(&pos) {
            Ok(l) => l + 1,
            Err(l) => l,
        };

        let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
            for slot in out.iter_mut().take(to).skip(from) {
                if *slot != b'\n' {
                    *slot = b' ';
                }
            }
        };

        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    let end = bytes[i..]
                        .iter()
                        .position(|&b| b == b'\n')
                        .map(|p| i + p)
                        .unwrap_or(bytes.len());
                    let text = &src[i..end];
                    if let Some(s) = parse_suppression(text, line_of(i)) {
                        suppressions.push(s);
                    }
                    blank(&mut out, i, end);
                    i = end;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    let start = i;
                    let mut depth = 1;
                    i += 2;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    blank(&mut out, start, i);
                }
                b'"' => {
                    let end = scan_string(bytes, i);
                    blank(&mut out, i, end);
                    i = end;
                }
                b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                    let end = scan_prefixed_string(bytes, i);
                    blank(&mut out, i, end);
                    i = end;
                }
                b'\'' => {
                    if let Some(end) = scan_char_literal(bytes, i) {
                        blank(&mut out, i, end);
                        i = end;
                    } else {
                        i += 1; // lifetime: leave as-is
                    }
                }
                _ => i += 1,
            }
        }

        let code = String::from_utf8_lossy(&out).into_owned();
        let test_lines = mark_test_regions(&code, line_starts.len());
        SourceView {
            code,
            raw: src.to_string(),
            line_starts,
            test_lines,
            suppressions,
        }
    }

    /// 1-based line number of a byte offset into `code`.
    pub fn line_of(&self, byte: usize) -> usize {
        match self.line_starts.binary_search(&byte) {
            Ok(l) => l + 1,
            Err(l) => l,
        }
    }

    /// Whether a 1-based line lies inside a test-only region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Whether `rule` is suppressed at `line` (a suppression comment on
    /// the same line or the line directly above, with a non-empty reason).
    pub fn is_suppressed(&self, line: usize, rule: &str) -> bool {
        self.suppressions.iter().any(|s| {
            s.rule == rule && !s.reason.is_empty() && (s.line == line || s.line + 1 == line)
        })
    }
}

/// Parses `ldc-lint: allow(rule) — reason` out of a line comment.
fn parse_suppression(comment: &str, line: usize) -> Option<Suppression> {
    let marker = "ldc-lint:";
    let at = comment.find(marker)?;
    let rest = comment[at + marker.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
        .trim()
        .to_string();
    Some(Suppression { line, rule, reason })
}

/// Does `bytes[i..]` begin a raw/byte string (`r"`, `r#"`, `b"`, `br#"`, ...)?
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // Must not be the tail of a longer identifier.
    if i > 0 && is_ident_char(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    j > i && bytes.get(j) == Some(&b'"')
}

/// Scans a plain `"..."` string starting at the opening quote; returns the
/// offset one past the closing quote.
fn scan_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Scans `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##` starting at the
/// prefix; returns the offset one past the end.
fn scan_prefixed_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) == Some(&b'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1; // opening quote
    if !raw {
        // Byte string with escapes.
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                _ => i += 1,
            }
        }
        return bytes.len();
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    bytes.len()
}

/// Distinguishes a char literal from a lifetime at a `'`. Returns the end
/// offset for a literal, `None` for a lifetime.
fn scan_char_literal(bytes: &[u8], start: usize) -> Option<usize> {
    let next = *bytes.get(start + 1)?;
    if next == b'\\' {
        // `'\x'`: the backslash escapes exactly the one char after it
        // (`\u{…}` sequences contain no quotes), so skip the quote, the
        // backslash, and the escaped char, then run to the closing quote.
        // Crucially `'\\'` must not treat its *second* backslash as a new
        // escape — that used to swallow the closing quote and blank real
        // code until the next stray `'`. A literal never spans a line, so
        // an unmatched quote before the newline is not a literal.
        let mut i = start + 3;
        while i < bytes.len() && bytes[i] != b'\n' {
            if bytes[i] == b'\'' {
                return Some(i + 1);
            }
            i += 1;
        }
        return None;
    }
    // `'x'` is a literal; `'a` (no closing quote right after one char) is a
    // lifetime. Multi-byte UTF-8 chars: find the quote within 5 bytes —
    // but any *ASCII* byte after the first position means this is a
    // lifetime (a one-ASCII-char literal closes at offset 1), which keeps
    // consecutive lifetimes like `<'a, 'b>` from being eaten as one
    // literal (`'a, '` — the old desync).
    for (off, &b) in bytes[start + 1..].iter().take(5).enumerate() {
        if b == b'\'' {
            return if off == 0 {
                None
            } else {
                Some(start + 1 + off + 1)
            };
        }
        if off == 0 && !(is_ident_char(b) || b >= 0x80) {
            // `'}` cannot start a lifetime: it is a punctuation char
            // literal if (and only if) it closes immediately (`'}'`) —
            // otherwise a stray quote. Either way brace-significant
            // punctuation must not leak into blanked code.
            return (bytes.get(start + 2) == Some(&b'\'')).then_some(start + 3);
        }
        if off > 0 && b < 0x80 {
            return None; // lifetime followed by ASCII punctuation
        }
    }
    None
}

/// Marks lines covered by `#[cfg(test)]` items, `#[test]` functions and
/// `mod tests { .. }` blocks. Operates on blanked code, so braces inside
/// strings cannot confuse the matcher.
fn mark_test_regions(code: &str, num_lines: usize) -> Vec<bool> {
    let mut test = vec![false; num_lines];
    let bytes = code.as_bytes();
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |pos: usize| match line_starts.binary_search(&pos) {
        Ok(l) => l,
        Err(l) => l - 1,
    };

    for marker in ["#[cfg(test)]", "#[test]", "mod tests"] {
        let mut from = 0;
        while let Some(rel) = code[from..].find(marker) {
            let at = from + rel;
            from = at + marker.len();
            if marker == "mod tests" {
                // Require a word boundary (`mod tests_util` is not a match).
                let after = bytes.get(at + marker.len());
                if after.is_some_and(|&b| is_ident_char(b)) {
                    continue;
                }
            }
            // Find the item's extent: a brace block or a `;`-terminated item,
            // whichever comes first after the marker.
            let rest = &bytes[at + marker.len()..];
            let mut end = at + marker.len();
            let mut found = false;
            for (off, &b) in rest.iter().enumerate() {
                if b == b';' {
                    end = at + marker.len() + off;
                    found = true;
                    break;
                }
                if b == b'{' {
                    let open = at + marker.len() + off;
                    end = match_brace(bytes, open);
                    found = true;
                    break;
                }
            }
            if !found {
                end = bytes.len();
            }
            let (a, b) = (line_of(at), line_of(end.min(bytes.len().saturating_sub(1))));
            for slot in test.iter_mut().take(b + 1).skip(a) {
                *slot = true;
            }
        }
    }
    test
}

/// Given the offset of a `{`, returns the offset of its matching `}` (or
/// the end of input).
pub fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

/// Iterator over whole-word occurrences of `needle` in `haystack`
/// (neither neighbour is an identifier character).
pub fn token_positions(haystack: &str, needle: &str) -> Vec<usize> {
    let hb = haystack.as_bytes();
    let nb = needle.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let at = from + rel;
        from = at + 1;
        let before_ok = at == 0 || !is_ident_char(hb[at - 1]);
        let after = at + nb.len();
        let after_ok = after >= hb.len() || !is_ident_char(hb[after]);
        // For needles that start/end with non-ident chars (e.g. `.expect(`)
        // the boundary checks are trivially satisfied in the direction of
        // the punctuation.
        let before_ok = before_ok || !is_ident_char(nb[0]);
        let after_ok = after_ok || !is_ident_char(nb[nb.len() - 1]);
        if before_ok && after_ok {
            out.push(at);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let v = SourceView::new(r#"let x = "Instant::now"; // Instant::now in comment"#);
        assert!(!v.code.contains("Instant::now"));
        assert!(v.code.contains("let x ="));
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let v =
            SourceView::new("let a = r#\"panic!()\"#; let b = b\"unwrap()\"; let c = br#\"x\"#;");
        assert!(!v.code.contains("panic!"));
        assert!(!v.code.contains("unwrap"));
    }

    #[test]
    fn lifetimes_survive_char_literals_blanked() {
        let v = SourceView::new("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(v.code.contains("&'a str"));
        assert!(!v.code.contains("'x'"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn prod() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\n";
        let v = SourceView::new(src);
        assert!(!v.is_test_line(1));
        assert!(v.is_test_line(2));
        assert!(v.is_test_line(3));
        assert!(v.is_test_line(4));
        assert!(v.is_test_line(5));
    }

    #[test]
    fn cfg_test_on_braceless_item_stops_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { x(); }\n";
        let v = SourceView::new(src);
        assert!(v.is_test_line(2));
        assert!(!v.is_test_line(3));
    }

    #[test]
    fn suppressions_parse_and_scope() {
        let src = "// ldc-lint: allow(determinism) — fixture needs it\nlet t = 1;\nlet u = 2; // ldc-lint: allow(panic_safety) - trailing\n// ldc-lint: allow(lock_order)\nlet v = 3;\n";
        let v = SourceView::new(src);
        assert_eq!(v.suppressions.len(), 3);
        assert!(v.is_suppressed(2, "determinism"));
        assert!(!v.is_suppressed(2, "panic_safety"));
        assert!(v.is_suppressed(3, "panic_safety"));
        // Reason-less suppression is inert.
        assert!(!v.is_suppressed(5, "lock_order"));
    }

    #[test]
    fn consecutive_lifetimes_are_not_a_char_literal() {
        let v = SourceView::new("fn f<'a, 'b>(x: &'a str, y: &'b [u8]) -> Instant {}");
        assert!(v.code.contains("<'a, 'b>"));
        assert!(v.code.contains("Instant"));
    }

    #[test]
    fn escaped_backslash_char_literal_does_not_desync() {
        // `'\\'` used to swallow its own closing quote, blanking real
        // code (including allow-comments) until the next stray quote.
        let src =
            "let c = '\\\\';\nlet t = Instant::now(); // ldc-lint: allow(determinism) — why\n";
        let v = SourceView::new(src);
        assert!(v.code.contains("Instant::now"));
        assert!(v.is_suppressed(2, "determinism"));
    }

    #[test]
    fn raw_string_hash_runs_and_quotes_inside_do_not_desync() {
        let src = "let a = r##\"one \"# two\"##; let t = Instant::now(); // ldc-lint: allow(determinism) — why";
        let v = SourceView::new(src);
        assert!(!v.code.contains("one"));
        assert!(!v.code.contains("two"));
        assert!(v.code.contains("Instant::now"));
        assert!(v.is_suppressed(1, "determinism"));
    }

    #[test]
    fn nested_block_comments_keep_line_numbers_aligned() {
        let src = "/* outer /* inner */ still comment */\nlet t = Instant::now();\n// ldc-lint: allow(determinism) — why\nlet u = SystemTime::now();\n";
        let v = SourceView::new(src);
        assert!(v.code.contains("Instant::now"));
        let at = v.code.find("Instant").unwrap();
        assert_eq!(v.line_of(at), 2);
        assert!(v.is_suppressed(4, "determinism"));
    }

    #[test]
    fn raw_source_is_retained_with_shared_offsets() {
        let src = "let m = Mutex::new(\"lsm/db::core\", 7);";
        let v = SourceView::new(src);
        assert!(!v.code.contains("lsm/db::core"));
        let open = v.code.find('(').unwrap();
        assert_eq!(&v.raw[open + 1..open + 15], "\"lsm/db::core\"");
    }

    #[test]
    fn token_positions_respect_word_boundaries() {
        assert_eq!(token_positions("now nowhere now", "now"), vec![0, 12]);
        assert_eq!(
            token_positions("a.expect(x).expect_err(y)", ".expect(").len(),
            1
        );
    }
}
