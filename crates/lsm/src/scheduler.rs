//! Background worker pool for flush and compaction.
//!
//! With `Options::background_workers >= 1`, the engine stops executing
//! background work inline on the write path ([`crate::db::Db`]'s
//! `pump_background`) and instead signals this scheduler: N dedicated
//! worker threads plan one job at a time under the core lock, run its
//! reads/merge/writes without any engine lock held, and install the
//! result under the core lock as one atomic `VersionEdit`. Large merges
//! are carved into range-partitioned subcompactions (bounded by
//! `Options::max_subcompactions`) that idle workers execute in parallel.
//!
//! # Conflict tracking
//!
//! Two jobs must never touch overlapping key ranges of the same output
//! level, and no file may be the input of two jobs at once. [`SchedState`]
//! tracks both: `inflight_inputs` holds every claimed input file number,
//! and `claims` holds the `[lo, hi]` user-key interval each running job
//! owns per level. A picked task that conflicts is simply dropped — the
//! policy re-picks it once the running job's install bumps `completed`
//! and re-arms `work_hint`.
//!
//! # Determinism contract
//!
//! `background_workers == 0` keeps the pool dormant: the inline pump runs
//! in the exact pre-pool order and same-seed runs stay byte-identical.
//! With workers, runs promise linearizability, not timing reproducibility
//! — the same contract as multi-threaded group commit (see the module
//! docs on `crate::db`).
//!
//! # Lock ranks (crates/lint/lock_order.toml)
//!
//! * `lsm/scheduler::threads` (rank 55) — join handles; never nested.
//! * `lsm/scheduler::state` (rank 65) — sits *above* `lsm/db::core`
//!   (rank 60): the foreground signals the pool while holding the core
//!   lock. Workers therefore must drop the state guard before locking
//!   the core; waking from `work_cv` and then planning a job re-acquires
//!   core first, state second.
//!
//! Condvar pairing: `work_cv` and `subs_cv` pair with `state`; `done_cv`
//! pairs with the **core** mutex — foreground stall gates wait on it via
//! `MutexGuard::wait_timeout` so workers can take the core and install.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ldc_obs::lockcheck::{Condvar, Mutex};

use crate::error::Result;
use crate::types::KeyRange;
use crate::version::FileMeta;

/// A user-key interval claimed at `level` by running job `job`.
#[derive(Debug, Clone)]
pub(crate) struct RangeClaim {
    pub(crate) job: u64,
    pub(crate) level: usize,
    pub(crate) lo: Vec<u8>,
    pub(crate) hi: Vec<u8>,
}

/// Shared description of a split merge: every subcompaction unit opens
/// the same input tables, restricted to its own key range.
#[derive(Debug)]
pub(crate) struct MergeUnitSpec {
    /// Input table numbers (all full-table inputs; slice-carrying merges
    /// never split).
    pub(crate) inputs: Vec<u64>,
    pub(crate) drop_tombstones: bool,
    /// Whether outputs are cut at the target SSTable size.
    pub(crate) split_outputs: bool,
    /// Snapshot floor captured at plan time (a lower bound for the whole
    /// job: snapshots taken later are always newer).
    pub(crate) smallest_snapshot: u64,
}

/// One queued subcompaction unit; `range == None` means the full key
/// space (the unsplit case and the first unit of a split).
#[derive(Debug)]
pub(crate) struct SubUnit {
    pub(crate) idx: usize,
    pub(crate) range: Option<KeyRange>,
}

/// What one subcompaction unit produced; merged into the job's single
/// `VersionEdit` by the coordinating worker.
#[derive(Debug, Default)]
pub(crate) struct UnitOutput {
    pub(crate) metas: Vec<FileMeta>,
    pub(crate) write_nanos: u64,
    pub(crate) output_files: u32,
    pub(crate) output_bytes: u64,
}

/// The in-flight split merge (at most one at a time; a second split-able
/// job runs its units sequentially on its own coordinator instead).
pub(crate) struct SubBatch {
    pub(crate) spec: Arc<MergeUnitSpec>,
    /// Units not yet posted to `results`.
    pub(crate) remaining: usize,
    pub(crate) results: Vec<(usize, Result<UnitOutput>)>,
}

/// Everything the pool synchronizes on, guarded by `lsm/scheduler::state`.
pub(crate) struct SchedState {
    /// Set by foreground signals and job installs; consumed (one plan
    /// attempt) per worker wakeup.
    pub(crate) work_hint: bool,
    /// A worker owns the pending immutable-memtable flush.
    pub(crate) flush_inflight: bool,
    /// Compaction jobs currently claimed (planned but not yet installed).
    pub(crate) compactions_inflight: usize,
    /// Input file numbers of running jobs (live tables and frozen slice
    /// sources alike).
    pub(crate) inflight_inputs: HashSet<u64>,
    /// Per-level output/input range claims of running jobs.
    pub(crate) claims: Vec<RangeClaim>,
    /// The policy returned no task against the version current at
    /// `completed`; cleared by every install. Stall gates use this to
    /// detect "no progress possible" (the inline pump's break condition).
    pub(crate) policy_idle: bool,
    /// Monotone count of installed (or aborted) jobs.
    pub(crate) completed: u64,
    /// Next job id.
    next_job: u64,
    /// Queued subcompaction units of `sub`.
    pub(crate) subqueue: VecDeque<SubUnit>,
    /// The active split merge, if any.
    pub(crate) sub: Option<SubBatch>,
}

impl SchedState {
    pub(crate) fn next_job(&mut self) -> u64 {
        self.next_job += 1;
        self.next_job
    }

    /// Any job claimed or unit outstanding?
    pub(crate) fn busy(&self) -> bool {
        self.flush_inflight
            || self.compactions_inflight > 0
            || self.sub.is_some()
            || !self.subqueue.is_empty()
    }

    /// Would a job over `inputs` with per-level `ranges` overlap a
    /// running job? `ranges` entries are `(level, lo, hi)` inclusive
    /// user-key intervals.
    pub(crate) fn conflicts(&self, inputs: &[u64], ranges: &[(usize, Vec<u8>, Vec<u8>)]) -> bool {
        if inputs.iter().any(|n| self.inflight_inputs.contains(n)) {
            return true;
        }
        ranges.iter().any(|(level, lo, hi)| {
            self.claims.iter().any(|c| {
                c.level == *level
                    && c.lo.as_slice() <= hi.as_slice()
                    && lo.as_slice() <= c.hi.as_slice()
            })
        })
    }

    /// Claims `inputs` and `ranges` for a new job, returning its id.
    /// Callers must have checked [`SchedState::conflicts`] first.
    pub(crate) fn claim(&mut self, inputs: &[u64], ranges: Vec<(usize, Vec<u8>, Vec<u8>)>) -> u64 {
        let job = self.next_job();
        self.inflight_inputs.extend(inputs.iter().copied());
        self.compactions_inflight += 1;
        for (level, lo, hi) in ranges {
            self.claims.push(RangeClaim { job, level, lo, hi });
        }
        job
    }

    /// Releases a job's claims (on install, abort, or failure).
    pub(crate) fn release(&mut self, job: u64, inputs: &[u64]) {
        for n in inputs {
            self.inflight_inputs.remove(n);
        }
        self.claims.retain(|c| c.job != job);
        self.compactions_inflight = self.compactions_inflight.saturating_sub(1);
    }
}

/// The worker pool. Lives on every [`crate::db::Db`]; dormant (no threads,
/// `active() == false`, zero steady-state overhead beyond one relaxed
/// atomic load per write) unless `Options::background_workers >= 1` *and*
/// the owner called `Db::start_workers`.
pub struct CompactionScheduler {
    /// Configured thread count.
    pub(crate) workers: usize,
    /// Threads are running; checked (relaxed) on every write to pick the
    /// inline vs. pool path.
    pub(crate) started: AtomicBool,
    /// Ask the workers to exit at their next park point.
    pub(crate) shutdown: AtomicBool,
    pub(crate) state: Mutex<SchedState>,
    /// Workers park here for job signals (paired with `state`).
    pub(crate) work_cv: Condvar,
    /// A split-merge coordinator parks here for unit results (paired with
    /// `state`).
    pub(crate) subs_cv: Condvar,
    /// Foreground stall gates park here for job installs (paired with the
    /// `lsm/db::core` mutex, *not* `state`).
    pub(crate) done_cv: Condvar,
    /// Join handles; populated by `start`, drained by `shutdown`.
    pub(crate) threads: Mutex<Vec<JoinHandle<()>>>,
}

impl CompactionScheduler {
    pub(crate) fn new(workers: usize) -> CompactionScheduler {
        CompactionScheduler {
            workers,
            started: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            state: Mutex::new(
                "lsm/scheduler::state",
                SchedState {
                    work_hint: false,
                    flush_inflight: false,
                    compactions_inflight: 0,
                    inflight_inputs: HashSet::new(),
                    claims: Vec::new(),
                    policy_idle: false,
                    completed: 0,
                    next_job: 0,
                    subqueue: VecDeque::new(),
                    sub: None,
                },
            ),
            work_cv: Condvar::new(),
            subs_cv: Condvar::new(),
            done_cv: Condvar::new(),
            threads: Mutex::new("lsm/scheduler::threads", Vec::new()),
        }
    }

    /// Whether worker threads are running (the write path's mode switch).
    pub(crate) fn active(&self) -> bool {
        self.started.load(Ordering::Relaxed)
    }

    /// Asks every worker to exit, wakes them, and joins. Idempotent; safe
    /// to call with no pool started.
    pub(crate) fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        {
            let _st = self.state.lock();
            self.work_cv.notify_all();
            self.subs_cv.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            // A worker that panicked (e.g. a lockcheck violation) already
            // latched nothing we can save; don't double-panic the caller.
            let _ = h.join();
        }
        self.started.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st() -> SchedState {
        SchedState {
            work_hint: false,
            flush_inflight: false,
            compactions_inflight: 0,
            inflight_inputs: HashSet::new(),
            claims: Vec::new(),
            policy_idle: false,
            completed: 0,
            next_job: 0,
            subqueue: VecDeque::new(),
            sub: None,
        }
    }

    #[test]
    fn conflicts_on_shared_inputs() {
        let mut s = st();
        s.claim(&[7, 9], vec![]);
        assert!(s.conflicts(&[9], &[]));
        assert!(!s.conflicts(&[8], &[]));
    }

    #[test]
    fn conflicts_on_overlapping_ranges_same_level_only() {
        let mut s = st();
        let job = s.claim(&[1], vec![(2, b"d".to_vec(), b"m".to_vec())]);
        // Overlap at the claimed level conflicts.
        assert!(s.conflicts(&[2], &[(2, b"a".to_vec(), b"e".to_vec())]));
        assert!(s.conflicts(&[2], &[(2, b"m".to_vec(), b"z".to_vec())]));
        // Disjoint interval at the same level is fine.
        assert!(!s.conflicts(&[2], &[(2, b"n".to_vec(), b"z".to_vec())]));
        // Same interval at another level is fine.
        assert!(!s.conflicts(&[2], &[(3, b"d".to_vec(), b"m".to_vec())]));
        s.release(job, &[1]);
        assert!(!s.conflicts(&[1], &[(2, b"a".to_vec(), b"e".to_vec())]));
        assert!(!s.busy());
    }

    #[test]
    fn release_only_drops_own_claims() {
        let mut s = st();
        let a = s.claim(&[1], vec![(1, b"a".to_vec(), b"c".to_vec())]);
        let b = s.claim(&[2], vec![(1, b"x".to_vec(), b"z".to_vec())]);
        s.release(a, &[1]);
        assert!(!s.conflicts(&[1], &[(1, b"a".to_vec(), b"c".to_vec())]));
        assert!(s.conflicts(&[3], &[(1, b"y".to_vec(), b"y".to_vec())]));
        s.release(b, &[2]);
        assert_eq!(s.compactions_inflight, 0);
    }
}
