//! Device configuration.

use crate::error::{SsdError, SsdResult};

/// Parameters of the simulated SSD.
///
/// The defaults model an enterprise PCIe NVMe drive of the class the paper
/// evaluated on (Memblaze Q520): fast reads, writes roughly 5x slower, 4 KiB
/// pages, 256-page erase blocks, 7% over-provisioning, and a few thousand
/// program/erase cycles of endurance per block.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Usable (logical) capacity in bytes.
    pub capacity_bytes: u64,
    /// Flash page size in bytes; the unit of reads and programs.
    pub page_bytes: u64,
    /// Pages per erase block; the unit of erases.
    pub pages_per_block: u64,
    /// Extra physical capacity reserved for garbage collection, as a
    /// fraction of logical capacity (e.g. `0.07` = 7%).
    pub over_provisioning: f64,
    /// Sequential read bandwidth, bytes per second.
    pub read_bandwidth: u64,
    /// Sequential write (program) bandwidth, bytes per second.
    pub write_bandwidth: u64,
    /// Fixed setup latency charged per random read call, nanoseconds.
    pub read_latency_ns: u64,
    /// Setup latency for *sequential* reads (next block of a stream the
    /// device/OS readahead already fetched), nanoseconds.
    pub seq_read_latency_ns: u64,
    /// Fixed setup latency charged per write call, nanoseconds.
    pub write_latency_ns: u64,
    /// Modelled kernel/file-system overhead charged per file metadata
    /// operation (create/sync/delete/rename), nanoseconds.
    pub fs_op_latency_ns: u64,
    /// Modelled kernel overhead charged per read/write call (the syscall +
    /// page-cache path), nanoseconds; booked to the file-system time
    /// category (Table I).
    pub syscall_overhead_ns: u64,
    /// Program/erase cycles each block endures before wearing out.
    pub endurance_cycles: u64,
    /// Number of free blocks below which garbage collection kicks in.
    pub gc_free_block_threshold: usize,
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 8 << 30, // 8 GiB keeps simulated runs light
            page_bytes: 4 << 10,
            pages_per_block: 256,
            over_provisioning: 0.07,
            read_bandwidth: 2_000 << 20, // 2.0 GiB/s
            write_bandwidth: 400 << 20,  // 0.4 GiB/s — 5x asymmetry
            read_latency_ns: 60_000,     // 60 us (random 4 KiB class)
            seq_read_latency_ns: 4_000,  // 4 us (readahead hit)
            write_latency_ns: 20_000,    // 20 us
            fs_op_latency_ns: 50_000,    // 50 us per metadata op
            syscall_overhead_ns: 3_000,  // 3 us per I/O call
            endurance_cycles: 5_000,
            gc_free_block_threshold: 4,
        }
    }
}

impl SsdConfig {
    /// A small device for unit tests: 4 MiB logical, 4 KiB pages, 16-page
    /// blocks — enough to exercise GC quickly.
    pub fn tiny_for_tests() -> Self {
        Self {
            capacity_bytes: 4 << 20,
            page_bytes: 4 << 10,
            pages_per_block: 16,
            over_provisioning: 0.25,
            gc_free_block_threshold: 2,
            ..Self::default()
        }
    }

    /// Number of logical pages exposed by the device.
    pub fn logical_pages(&self) -> u64 {
        self.capacity_bytes / self.page_bytes
    }

    /// Number of physical erase blocks (logical capacity plus
    /// over-provisioning, rounded up to whole blocks, plus one spare so GC
    /// always has an open block to relocate into).
    pub fn physical_blocks(&self) -> u64 {
        let physical_bytes =
            (self.capacity_bytes as f64 * (1.0 + self.over_provisioning)).ceil() as u64;
        let block_bytes = self.page_bytes * self.pages_per_block;
        physical_bytes.div_ceil(block_bytes) + 1
    }

    /// Bytes in one erase block.
    pub fn block_bytes(&self) -> u64 {
        self.page_bytes * self.pages_per_block
    }

    /// Validates internal consistency; called by [`crate::SsdDevice::new`].
    pub fn validate(&self) -> SsdResult<()> {
        if self.page_bytes == 0 || self.pages_per_block == 0 {
            return Err(SsdError::InvalidArgument(
                "page_bytes and pages_per_block must be nonzero".into(),
            ));
        }
        if self.capacity_bytes < self.block_bytes() {
            return Err(SsdError::InvalidArgument(
                "capacity must hold at least one erase block".into(),
            ));
        }
        if self.read_bandwidth == 0 || self.write_bandwidth == 0 {
            return Err(SsdError::InvalidArgument(
                "bandwidths must be nonzero".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.over_provisioning) {
            return Err(SsdError::InvalidArgument(
                "over_provisioning must be within [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SsdConfig::default().validate().unwrap();
        SsdConfig::tiny_for_tests().validate().unwrap();
    }

    #[test]
    fn geometry_math() {
        let cfg = SsdConfig::tiny_for_tests();
        assert_eq!(cfg.logical_pages(), (4 << 20) / (4 << 10));
        assert_eq!(cfg.block_bytes(), 16 * (4 << 10));
        // 4 MiB * 1.25 = 5 MiB = 80 blocks of 64 KiB, plus one spare.
        assert_eq!(cfg.physical_blocks(), 81);
    }

    #[test]
    fn physical_exceeds_logical() {
        let cfg = SsdConfig::default();
        let physical_pages = cfg.physical_blocks() * cfg.pages_per_block;
        assert!(physical_pages > cfg.logical_pages());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.page_bytes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.read_bandwidth = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.over_provisioning = 2.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.capacity_bytes = 1;
        assert!(cfg.validate().is_err());
    }
}
