//! Engine error type.

use std::fmt;

use ldc_ssd::SsdError;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Structured description of a corruption finding: which file, where in
/// it, and what failed validation. Quarantine decisions, obs events, and
/// chaos replay recipes all need the exact file name, so corruption is
/// never reported as a bare string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionInfo {
    /// File the corruption was detected in (empty when unknown, e.g. a
    /// cross-file invariant violation).
    pub file: String,
    /// Byte offset of the corrupt region, when known.
    pub offset: Option<u64>,
    /// What failed validation (CRC mismatch, bad magic, ...).
    pub detail: String,
}

impl CorruptionInfo {
    /// Corruption not attributable to a single file/offset.
    pub fn message(detail: impl Into<String>) -> Self {
        Self {
            file: String::new(),
            offset: None,
            detail: detail.into(),
        }
    }

    /// Corruption in `file` at an unknown offset.
    pub fn in_file(file: impl Into<String>, detail: impl Into<String>) -> Self {
        Self {
            file: file.into(),
            offset: None,
            detail: detail.into(),
        }
    }

    /// Corruption in `file` at byte `offset`.
    pub fn at(file: impl Into<String>, offset: u64, detail: impl Into<String>) -> Self {
        Self {
            file: file.into(),
            offset: Some(offset),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CorruptionInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.detail)?;
        if !self.file.is_empty() {
            write!(f, " (file={}", self.file)?;
            if let Some(offset) = self.offset {
                write!(f, ", offset={offset}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Errors surfaced by the LSM engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Underlying storage/device error.
    Storage(SsdError),
    /// On-disk data failed validation (bad CRC, malformed block, ...).
    Corruption(CorruptionInfo),
    /// The database is in a state that forbids the operation.
    InvalidState(String),
    /// Caller error (bad options, empty key, ...).
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::Corruption(info) => write!(f, "corruption: {info}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SsdError> for Error {
    fn from(e: SsdError) -> Self {
        Error::Storage(e)
    }
}

/// Shorthand for corruption errors with no file attribution.
pub fn corruption(msg: impl Into<String>) -> Error {
    Error::Corruption(CorruptionInfo::message(msg))
}

/// Shorthand for corruption errors attributed to `file` at `offset`.
pub fn corruption_at(file: impl Into<String>, offset: u64, detail: impl Into<String>) -> Error {
    Error::Corruption(CorruptionInfo::at(file, offset, detail))
}

/// Shorthand for corruption errors attributed to `file`.
pub fn corruption_in(file: impl Into<String>, detail: impl Into<String>) -> Error {
    Error::Corruption(CorruptionInfo::in_file(file, detail))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: Error = SsdError::DeviceFull.into();
        assert!(e.to_string().contains("full"));
        assert!(corruption("bad crc").to_string().contains("bad crc"));
    }

    #[test]
    fn corruption_display_names_file_and_offset() {
        let plain = corruption("bad magic");
        assert_eq!(plain.to_string(), "corruption: bad magic");
        let filed = corruption_in("000007.sst", "bad footer");
        assert_eq!(
            filed.to_string(),
            "corruption: bad footer (file=000007.sst)"
        );
        let exact = corruption_at("000007.sst", 4096, "block crc mismatch");
        assert_eq!(
            exact.to_string(),
            "corruption: block crc mismatch (file=000007.sst, offset=4096)"
        );
        if let Error::Corruption(info) = exact {
            assert_eq!(info.file, "000007.sst");
            assert_eq!(info.offset, Some(4096));
        } else {
            unreachable!();
        }
    }
}
