//! Rule `lock_order`: lock acquisitions must follow the ranks declared in
//! `crates/lint/lock_order.toml`, and the may-hold-while-acquiring graph
//! must be acyclic.
//!
//! The same table drives the *runtime* sanitizer
//! (`ldc_obs::lockcheck`) — this rule shares its parser, so the static
//! and dynamic checkers can never drift apart.
//!
//! The analysis is lexical but liveness-aware:
//!
//! 1. **Lock discovery** — every `Mutex<...>`/`RwLock<...>` field declared
//!    in the scoped files becomes a lock named `<crate>/<file-stem>::<field>`
//!    (e.g. `lsm/db::core`).
//! 2. **Acquisition sites** — `.lock()`, `.read()`, `.write()` calls whose
//!    receiver's last path segment names a known lock field. A guard bound
//!    with `let` lives until its enclosing block closes or it is `drop`ped;
//!    a temporary guard lives to the end of its statement.
//! 3. **May-hold-while-acquiring edges** — lock B acquired (directly, or
//!    transitively through a call to another scoped function) while a guard
//!    on lock A is live adds edge A → B.
//! 4. **Checking** — every discovered lock must appear in the table; every
//!    edge must climb strictly in rank (a self-edge on a non-sharded lock
//!    is a re-entrant acquisition; sharded locks may nest across
//!    *instances*, which only the runtime checker can tell apart); the
//!    edge graph must be acyclic even where declarations are missing; and
//!    every `lockcheck::Mutex::new("<id>", ..)` constructor must name an
//!    id from the table that matches the file it lives in.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::{match_brace, SourceView};
use ldc_obs::lockcheck::{parse_lock_table, LockDef};

/// Stable rule id.
pub const RULE: &str = "lock_order";

/// Workspace-relative path of the shared lock table.
pub const TABLE_PATH: &str = "crates/lint/lock_order.toml";

/// Files whose locks participate in the ordered hierarchy.
pub const SCOPED_FILES: &[&str] = &[
    "crates/lsm/src/db.rs",
    "crates/lsm/src/scheduler.rs",
    "crates/lsm/src/commit.rs",
    "crates/lsm/src/memtable.rs",
    "crates/lsm/src/cache.rs",
    "crates/obs/src/sink.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/trace.rs",
    "crates/server/src/server.rs",
    "crates/sync/src/tailer.rs",
];

/// Is `path` (workspace-relative) in this rule's scope?
pub fn in_scope(path: &str) -> bool {
    SCOPED_FILES.contains(&path)
}

/// `crates/lsm/src/db.rs` → `lsm/db`.
fn lock_file_key(path: &str) -> String {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path);
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("?");
    format!("{crate_name}/{stem}")
}

#[derive(Debug, Clone)]
struct Acquisition {
    lock: String,
    /// Byte offset of the call in the function body.
    pos: usize,
    /// Byte offset where the guard dies.
    live_until: usize,
    line: usize,
}

#[derive(Debug, Clone)]
struct FnInfo {
    file: String,
    acquisitions: Vec<Acquisition>,
    /// `(callee name, position in body, 1-based line)` triples.
    calls: Vec<(String, usize, usize)>,
}

/// One may-hold-while-acquiring edge, with the site that witnesses it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Held lock.
    pub from: String,
    /// Lock acquired while `from` is held.
    pub to: String,
    /// Witness file.
    pub file: String,
    /// Witness line (of the inner acquisition or the call reaching it).
    pub line: usize,
}

/// Runs the rule over `(path, view)` pairs plus the text of
/// [`TABLE_PATH`] (the same TOML the runtime sanitizer embeds).
pub fn check(files: &[(String, SourceView)], table_text: &str) -> Vec<Diagnostic> {
    let scoped: Vec<&(String, SourceView)> = files.iter().filter(|(p, _)| in_scope(p)).collect();
    let mut out = Vec::new();

    // 1. Discover locks.
    let mut locks: BTreeMap<String, (String, usize)> = BTreeMap::new(); // id -> (file, line)
    for (path, view) in &scoped {
        for (field, line) in lock_fields(&view.code, view) {
            locks.insert(
                format!("{}::{field}", lock_file_key(path)),
                (path.clone(), line),
            );
        }
    }

    // 2. Declared table, via the runtime sanitizer's own parser.
    let declared: Vec<LockDef> = match parse_lock_table(table_text) {
        Ok(d) => d,
        Err(e) => {
            out.push(Diagnostic::error(
                TABLE_PATH,
                0,
                RULE,
                format!("lock table does not parse: {e}"),
                "fix the [[lock]] entries; the runtime sanitizer reads the same file",
            ));
            Vec::new()
        }
    };
    let rank: BTreeMap<&str, u32> = declared.iter().map(|d| (d.id.as_str(), d.rank)).collect();
    let sharded: BTreeSet<&str> = declared
        .iter()
        .filter(|d| d.sharded)
        .map(|d| d.id.as_str())
        .collect();
    for (lock, (file, line)) in &locks {
        if !rank.contains_key(lock.as_str()) && !declared.is_empty() {
            out.push(Diagnostic::error(
                file,
                *line,
                RULE,
                format!("lock `{lock}` is not declared in {TABLE_PATH}"),
                "add a [[lock]] entry at its hierarchy rank so the runtime \
                 sanitizer knows about it too",
            ));
        }
    }
    for def in &declared {
        if !locks.contains_key(&def.id) {
            out.push(Diagnostic::info(
                TABLE_PATH,
                0,
                RULE,
                format!(
                    "declared lock `{}` was not found in the scanned sources",
                    def.id
                ),
                "remove the stale [[lock]] entry",
            ));
        }
    }

    // 2b. Constructor ids: every `Mutex::new("<id>", ..)` /
    // `RwLock::new("<id>", ..)` in scope must name a declared id whose
    // `<crate>/<file-stem>` prefix matches the file. String literals are
    // blanked in `code`, so the literal is read out of `raw` (offsets are
    // shared between the two views).
    for (path, view) in &scoped {
        let key = lock_file_key(path);
        for (ctor, line, id) in ctor_ids(view) {
            let Some(id) = id else {
                out.push(Diagnostic::error(
                    path,
                    line,
                    RULE,
                    format!("`{ctor}::new(..)` does not name its lock id as a string literal"),
                    "pass the `<crate>/<file-stem>::<field>` id from lock_order.toml \
                     as the first argument",
                ));
                continue;
            };
            if !rank.contains_key(id.as_str()) && !declared.is_empty() {
                out.push(Diagnostic::error(
                    path,
                    line,
                    RULE,
                    format!("constructor names lock id `{id}`, which is not in {TABLE_PATH}"),
                    "add the [[lock]] entry or fix the id string",
                ));
            } else if id.split("::").next() != Some(key.as_str()) {
                out.push(Diagnostic::error(
                    path,
                    line,
                    RULE,
                    format!("lock id `{id}` does not match this file's key `{key}`"),
                    "ids are `<crate>/<file-stem>::<field>`; name the lock after \
                     the file that owns it",
                ));
            }
        }
    }

    // 3. Per-function acquisition/call extraction. A field name may be
    // declared by several files (`state` lives in commit, scheduler, and
    // server); the resolver disambiguates per use site.
    let mut lock_field_names: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for id in locks.keys() {
        let field = id.rsplit("::").next().unwrap_or(id).to_string();
        lock_field_names.entry(field).or_default().push(id.clone());
    }
    let mut fns: BTreeMap<String, FnInfo> = BTreeMap::new();
    for (path, view) in &scoped {
        for info in extract_functions(path, view, &lock_field_names) {
            fns.insert(info.0, info.1);
        }
    }

    // 4. Transitive acquire sets.
    let mut transitive: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for name in fns.keys() {
        let mut seen = BTreeSet::new();
        let mut acc = BTreeSet::new();
        collect_transitive(name, &fns, &mut seen, &mut acc);
        transitive.insert(name.clone(), acc);
    }

    // 5. Edges.
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    for info in fns.values() {
        for a in &info.acquisitions {
            // Direct nesting.
            for b in &info.acquisitions {
                if b.pos > a.pos && b.pos < a.live_until {
                    edges.insert(Edge {
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        file: info.file.clone(),
                        line: b.line,
                    });
                }
            }
            // Nesting through calls.
            for (callee, pos, call_line) in &info.calls {
                if *pos > a.pos && *pos < a.live_until {
                    if let Some(set) = transitive.get(callee) {
                        for b in set {
                            edges.insert(Edge {
                                from: a.lock.clone(),
                                to: b.clone(),
                                file: info.file.clone(),
                                line: *call_line,
                            });
                        }
                    }
                }
            }
        }
    }

    // 6. Check edges against the order, with suppression at the witness line.
    let find_view = |file: &str| files.iter().find(|(p, _)| p == file).map(|(_, v)| v);
    for e in &edges {
        let suppressed = find_view(&e.file).is_some_and(|v| v.is_suppressed(e.line, RULE));
        if suppressed {
            continue;
        }
        if e.from == e.to {
            // Sharded locks may nest across distinct instances; only the
            // runtime sanitizer can tell instances apart, so the static
            // rule stays quiet there.
            if !sharded.contains(e.from.as_str()) {
                out.push(Diagnostic::error(
                    &e.file,
                    e.line,
                    RULE,
                    format!(
                        "lock `{}` may be acquired while already held (re-entrant deadlock)",
                        e.from
                    ),
                    "scope the first guard so it drops before the second acquisition",
                ));
            }
            continue;
        }
        if let (Some(&ra), Some(&rb)) = (rank.get(e.from.as_str()), rank.get(e.to.as_str())) {
            if ra >= rb {
                out.push(Diagnostic::error(
                    &e.file,
                    e.line,
                    RULE,
                    format!(
                        "lock `{}` acquired while holding `{}` violates the declared order \
                         ({TABLE_PATH} ranks it lower)",
                        e.to, e.from
                    ),
                    "acquire locks in rank order, restructure to drop the outer guard first, \
                     or suppress with `// ldc-lint: allow(lock_order) — <proof it cannot deadlock>`",
                ));
            }
        }
    }

    // 7. Cycle detection on the raw edge graph (covers undeclared locks).
    if let Some(cycle) = find_cycle(&edges) {
        out.push(Diagnostic::error(
            TABLE_PATH,
            0,
            RULE,
            format!("lock acquisition graph has a cycle: {}", cycle.join(" -> ")),
            "break the cycle by restructuring guard scopes",
        ));
    }
    out
}

/// `Mutex<`/`RwLock<` struct-field declarations: `(field name, line)`.
fn lock_fields(code: &str, view: &SourceView) -> Vec<(String, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for kind in ["Mutex", "RwLock"] {
        for at in crate::lexer::token_positions(code, kind) {
            let mut after = at + kind.len();
            while bytes.get(after).is_some_and(|b| b.is_ascii_whitespace()) {
                after += 1;
            }
            if bytes.get(after) != Some(&b'<') {
                continue; // `Mutex::new(...)` etc.
            }
            let line = view.line_of(at);
            if view.is_test_line(line) {
                continue;
            }
            let stmt_start = code[..at]
                .rfind([';', '{', '(', ','])
                .map(|p| p + 1)
                .unwrap_or(0);
            let prefix = &code[stmt_start..at];
            let Some(colon) = prefix.find(':') else {
                continue;
            };
            let name = prefix[..colon]
                .trim()
                .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("")
                .to_string();
            if !name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit()) {
                out.push((name, line));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// `Mutex::new(` / `RwLock::new(` constructor sites outside test code:
/// `(ctor kind, line, first-argument string literal if present)`. The
/// literal comes from `raw`; `code` has it blanked.
fn ctor_ids(view: &SourceView) -> Vec<(&'static str, usize, Option<String>)> {
    let code = &view.code;
    let raw = view.raw.as_bytes();
    let mut out = Vec::new();
    for kind in ["Mutex", "RwLock"] {
        for at in crate::lexer::token_positions(code, kind) {
            let rest = &code[at + kind.len()..];
            let Some(after) = rest.strip_prefix("::new") else {
                continue;
            };
            if !after.trim_start().starts_with('(') {
                continue;
            }
            let line = view.line_of(at);
            if view.is_test_line(line) {
                continue;
            }
            // First argument, read from the raw text.
            let open = at + kind.len() + rest.len() - after.trim_start().len();
            let mut i = open + 1;
            while raw.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
                i += 1;
            }
            let lit = if raw.get(i) == Some(&b'"') {
                let start = i + 1;
                let mut j = start;
                while raw.get(j).is_some_and(|&b| b != b'"' && b != b'\n') {
                    j += 1;
                }
                (raw.get(j) == Some(&b'"'))
                    .then(|| String::from_utf8_lossy(&raw[start..j]).into_owned())
            } else {
                None
            };
            out.push((kind, line, lit));
        }
    }
    out
}

/// Extracts every `fn` in the file with its acquisitions and calls.
/// Returned key is the bare function name (collisions across files merge
/// conservatively at the call-resolution step).
fn extract_functions(
    path: &str,
    view: &SourceView,
    lock_fields: &BTreeMap<String, Vec<String>>,
) -> Vec<(String, FnInfo)> {
    let code = &view.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for at in crate::lexer::token_positions(code, "fn") {
        let line = view.line_of(at);
        if view.is_test_line(line) {
            continue;
        }
        // Name.
        let mut i = at + 2;
        while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
            i += 1;
        }
        let name_start = i;
        while bytes
            .get(i)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = code[name_start..i].to_string();
        // Body: first `{` after the signature (trait methods end with `;`).
        let mut j = i;
        let mut body_open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    body_open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(open) = body_open else { continue };
        let close = match_brace(bytes, open);
        let body = &code[open..close];
        let info = analyse_body(path, view, open, body, lock_fields);
        out.push((name, info));
    }
    out
}

/// Scans one function body for lock acquisitions (with guard liveness) and
/// calls to named functions.
fn analyse_body(
    path: &str,
    view: &SourceView,
    body_start: usize,
    body: &str,
    lock_fields: &BTreeMap<String, Vec<String>>,
) -> FnInfo {
    let bytes = body.as_bytes();
    let mut acquisitions: Vec<Acquisition> = Vec::new();
    let mut calls = Vec::new();

    // Acquisition sites: `<field> . (lock|read|write) ( )`.
    for (field, ids) in lock_fields {
        for at in crate::lexer::token_positions(body, field) {
            let rest = &body[at + field.len()..];
            let trimmed = rest.trim_start();
            let Some(m) = ["lock", "read", "write"].iter().find_map(|m| {
                trimmed
                    .strip_prefix('.')
                    .map(|t| t.trim_start())
                    .and_then(|t| t.strip_prefix(m))
                    .map(|t| (m, t))
            }) else {
                continue;
            };
            if !m.1.trim_start().starts_with('(') {
                continue;
            }
            let lock_id = resolve_lock_id(path, body, at, ids);
            let pos = at;
            // Statement bounds.
            let stmt_start = body[..at].rfind(';').map(|p| p + 1).unwrap_or(0);
            let stmt_head = &body[stmt_start..at];
            let bound = stmt_head.contains("let ");
            let live_until = if bound {
                guard_scope_end(bytes, at).unwrap_or(body.len())
            } else {
                body[at..].find(';').map(|p| at + p).unwrap_or(body.len())
            };
            // `drop(<binding>)` shortens a bound guard's life.
            let live_until = if bound {
                binding_name(stmt_head)
                    .and_then(|g| {
                        crate::lexer::token_positions(&body[at..live_until], "drop")
                            .into_iter()
                            .find(|&d| {
                                body[at + d..]
                                    .trim_start_matches("drop")
                                    .trim_start()
                                    .trim_start_matches('(')
                                    .trim_start()
                                    .starts_with(&g)
                            })
                            .map(|d| at + d)
                    })
                    .unwrap_or(live_until)
            } else {
                live_until
            };
            acquisitions.push(Acquisition {
                lock: lock_id,
                pos,
                live_until,
                line: view.line_of(body_start + at),
            });
        }
    }

    // Call sites: `name (` — resolved against the scoped function set later,
    // so record every identifier-followed-by-paren that is not a definition
    // or macro. Lines are resolved here.
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &body[start..i];
            let mut k = i;
            while bytes.get(k).is_some_and(|b| b.is_ascii_whitespace()) {
                k += 1;
            }
            if bytes.get(k) == Some(&b'(')
                && !matches!(word, "if" | "while" | "match" | "for" | "fn" | "return")
            {
                // Only bare calls (`helper(..)`) and `self.` method calls
                // are followed — `container.get(..)` would otherwise
                // collide with any scoped `fn get`.
                let before = body[..start].trim_end();
                let is_method = before.ends_with('.');
                let is_self_method = before.ends_with("self.");
                let preceded_by_fn = before.ends_with("fn");
                if (!is_method || is_self_method) && !preceded_by_fn {
                    calls.push((word.to_string(), start, view.line_of(body_start + start)));
                }
            }
        } else {
            i += 1;
        }
    }

    FnInfo {
        file: path.to_string(),
        acquisitions,
        calls,
    }
}

/// Picks which declared lock a use of `<field>.lock()` refers to when
/// several files declare a field of that name. Preference order:
///
/// 1. The receiver segment before the field (`self.scheduler.state` →
///    `scheduler`, `db.tables` → `db`) matched against the ids' file
///    stems — fields reached through a named component belong to that
///    component's file.
/// 2. A lock declared in the *current* file (`self.state` in server.rs
///    is server's own field).
/// 3. The lexicographically first candidate (deterministic fallback).
fn resolve_lock_id(path: &str, body: &str, at: usize, ids: &[String]) -> String {
    if ids.len() == 1 {
        return ids[0].clone();
    }
    fn stem_of(id: &str) -> Option<&str> {
        id.split("::").next().and_then(|k| k.split('/').nth(1))
    }
    let before = body[..at].trim_end();
    if let Some(prev) = before.strip_suffix('.') {
        let owner: String = prev
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !owner.is_empty() && owner != "self" {
            if let Some(id) = ids.iter().find(|id| stem_of(id) == Some(owner.as_str())) {
                return id.clone();
            }
        }
    }
    let key = lock_file_key(path);
    if let Some(id) = ids
        .iter()
        .find(|id| id.split("::").next() == Some(key.as_str()))
    {
        return id.clone();
    }
    ids[0].clone()
}

/// For a `let`-bound guard acquired at `at`, the guard lives until the
/// enclosing block closes: scan forward tracking depth; when depth goes
/// negative the block closed.
fn guard_scope_end(bytes: &[u8], at: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate().skip(at) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// `let mut name = ...` → `name`.
fn binding_name(stmt_head: &str) -> Option<String> {
    let after_let = stmt_head.rfind("let ").map(|p| &stmt_head[p + 4..])?;
    let after_let = after_let
        .trim_start()
        .trim_start_matches("mut ")
        .trim_start();
    let name: String = after_let
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

fn collect_transitive(
    name: &str,
    fns: &BTreeMap<String, FnInfo>,
    seen: &mut BTreeSet<String>,
    acc: &mut BTreeSet<String>,
) {
    if !seen.insert(name.to_string()) {
        return;
    }
    let Some(info) = fns.get(name) else { return };
    for a in &info.acquisitions {
        acc.insert(a.lock.clone());
    }
    for (callee, _, _) in &info.calls {
        collect_transitive(callee, fns, seen, acc);
    }
}

/// DFS cycle detection; returns one cycle's node list if present.
fn find_cycle(edges: &BTreeSet<Edge>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        if e.from != e.to {
            adj.entry(&e.from).or_default().push(&e.to);
        }
    }
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        if visited.contains(start) {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        // Iterative DFS with explicit backtracking markers.
        enum Op<'a> {
            Enter(&'a str),
            Leave(&'a str),
        }
        let mut ops = vec![Op::Enter(start)];
        while let Some(op) = ops.pop() {
            match op {
                Op::Enter(n) => {
                    if on_path.contains(n) {
                        let from = path.iter().position(|&p| p == n).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[from..].iter().map(|s| s.to_string()).collect();
                        cycle.push(n.to_string());
                        return Some(cycle);
                    }
                    if !visited.insert(n) {
                        continue;
                    }
                    on_path.insert(n);
                    path.push(n);
                    ops.push(Op::Leave(n));
                    for &next in adj.get(n).into_iter().flatten() {
                        ops.push(Op::Enter(next));
                    }
                }
                Op::Leave(n) => {
                    on_path.remove(n);
                    path.pop();
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORDER: &str = "[[lock]]\nid = \"lsm/db::tables\"\nrank = 10\n\n\
                         [[lock]]\nid = \"lsm/cache::inner\"\nrank = 20\nsharded = true\n";

    fn run(db_src: &str, cache_src: &str) -> Vec<Diagnostic> {
        let files = vec![
            ("crates/lsm/src/db.rs".to_string(), SourceView::new(db_src)),
            (
                "crates/lsm/src/cache.rs".to_string(),
                SourceView::new(cache_src),
            ),
            ("crates/obs/src/sink.rs".to_string(), SourceView::new("")),
            ("crates/obs/src/metrics.rs".to_string(), SourceView::new("")),
        ];
        check(&files, ORDER)
    }

    const DB_OK: &str = "struct Db { tables: Mutex<u32> }\nimpl Db {\n  fn table(&self) {\n    { let t = self.tables.lock(); use_it(t); }\n    other();\n  }\n}\n";
    const CACHE_OK: &str = "struct C { inner: Mutex<u32> }\nimpl C {\n  fn get(&self) { let i = self.inner.lock(); }\n}\n";

    #[test]
    fn clean_code_passes() {
        let d = run(DB_OK, CACHE_OK);
        assert!(
            d.iter().all(|d| d.severity != crate::diag::Severity::Error),
            "{d:?}"
        );
    }

    #[test]
    fn order_violation_is_flagged() {
        // cache lock held while taking the db lock: inner -> tables is backwards.
        let cache = "struct C { inner: Mutex<u32> }\nimpl C {\n  fn bad(&self, db: &Db) {\n    let i = self.inner.lock();\n    let t = db.tables.lock();\n  }\n}\n";
        let d = run(DB_OK, cache);
        assert!(
            d.iter()
                .any(|d| d.message.contains("violates the declared order")),
            "{d:?}"
        );
    }

    #[test]
    fn reentrant_acquisition_is_flagged() {
        let db = "struct Db { tables: Mutex<u32> }\nimpl Db {\n  fn bad(&self) {\n    let a = self.tables.lock();\n    let b = self.tables.lock();\n  }\n}\n";
        let d = run(db, CACHE_OK);
        assert!(d.iter().any(|d| d.message.contains("re-entrant")), "{d:?}");
    }

    #[test]
    fn scoped_guard_does_not_leak() {
        let db = "struct Db { tables: Mutex<u32> }\nimpl Db {\n  fn good(&self) {\n    { let a = self.tables.lock(); }\n    let b = self.tables.lock();\n  }\n}\n";
        let d = run(db, CACHE_OK);
        assert!(d.iter().all(|d| !d.message.contains("re-entrant")), "{d:?}");
    }

    #[test]
    fn interprocedural_edge_through_call() {
        // db fn holds tables and calls cache fn that locks inner: forward
        // order, fine. The reverse direction must fail.
        let db = "struct Db { tables: Mutex<u32> }\nimpl Db {\n  fn outer(&self, c: &C) {\n    let t = self.tables.lock();\n    cache_get(c);\n  }\n}\n";
        let cache = "struct C { inner: Mutex<u32> }\nfn cache_get(c: &C) { let i = c.inner.lock(); }\nfn rev(c: &C, db: &Db) { let i = c.inner.lock(); grab_tables(db); }\nfn grab_tables(db: &Db) { let t = db.tables.lock(); }\n";
        let d = run(db, cache);
        assert!(
            d.iter()
                .any(|d| d.message.contains("violates the declared order")),
            "{d:?}"
        );
        // The forward edge (tables -> inner) alone must not error.
        let cache_fwd =
            "struct C { inner: Mutex<u32> }\nfn cache_get(c: &C) { let i = c.inner.lock(); }\n";
        let d = run(db, cache_fwd);
        assert!(
            d.iter().all(|d| d.severity != crate::diag::Severity::Error),
            "{d:?}"
        );
    }

    #[test]
    fn undeclared_lock_is_flagged() {
        let db = "struct Db { tables: Mutex<u32>, extra: RwLock<u8> }\n";
        let d = run(db, CACHE_OK);
        assert!(
            d.iter().any(|d| d.message.contains("is not declared in")),
            "{d:?}"
        );
    }

    #[test]
    fn drop_ends_guard_life() {
        let db = "struct Db { tables: Mutex<u32> }\nimpl Db {\n  fn good(&self) {\n    let a = self.tables.lock();\n    drop(a);\n    let b = self.tables.lock();\n  }\n}\n";
        let d = run(db, CACHE_OK);
        assert!(d.iter().all(|d| !d.message.contains("re-entrant")), "{d:?}");
    }

    #[test]
    fn malformed_table_is_an_error() {
        let files = vec![("crates/lsm/src/db.rs".to_string(), SourceView::new(""))];
        let d = check(&files, "not toml at all");
        assert!(
            d.iter().any(|d| d.message.contains("does not parse")),
            "{d:?}"
        );
    }

    #[test]
    fn sharded_self_edge_is_allowed_statically() {
        // Two cache-shard guards held together: distinct instances at
        // runtime, indistinguishable statically — must not error because
        // the table marks the lock sharded.
        let cache = "struct C { inner: Mutex<u32> }\nimpl C {\n  fn merge(&self, o: &C) {\n    let a = self.inner.lock();\n    let b = o.inner.lock();\n  }\n}\n";
        let d = run(DB_OK, cache);
        assert!(d.iter().all(|d| !d.message.contains("re-entrant")), "{d:?}");
    }

    #[test]
    fn ctor_id_must_match_table_and_file() {
        // Correct id passes.
        let ok = "struct C { inner: Mutex<u32> }\nimpl C {\n  fn new() -> C { C { inner: Mutex::new(\"lsm/cache::inner\", 0) } }\n}\n";
        let d = run(DB_OK, ok);
        assert!(
            d.iter().all(|d| d.severity != crate::diag::Severity::Error),
            "{d:?}"
        );
        // Unknown id is flagged.
        let bad = "struct C { inner: Mutex<u32> }\nimpl C {\n  fn new() -> C { C { inner: Mutex::new(\"lsm/cache::wrong\", 0) } }\n}\n";
        let d = run(DB_OK, bad);
        assert!(
            d.iter()
                .any(|d| d.message.contains("not in crates/lint/lock_order.toml")),
            "{d:?}"
        );
        // Id owned by another file is flagged.
        let wrong_file = "struct C { inner: Mutex<u32> }\nimpl C {\n  fn new() -> C { C { inner: Mutex::new(\"lsm/db::tables\", 0) } }\n}\n";
        let d = run(DB_OK, wrong_file);
        assert!(
            d.iter()
                .any(|d| d.message.contains("does not match this file's key")),
            "{d:?}"
        );
        // A missing literal is flagged.
        let no_lit = "struct C { inner: Mutex<u32> }\nimpl C {\n  fn new() -> C { C { inner: Mutex::new(0) } }\n}\n";
        let d = run(DB_OK, no_lit);
        assert!(
            d.iter()
                .any(|d| d.message.contains("does not name its lock id")),
            "{d:?}"
        );
    }
}
