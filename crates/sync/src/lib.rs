//! # ldc-sync — read-only follower replication
//!
//! Tails the incremental backup stream a primary ships (see
//! `ldc_core::lsm::backup` and `Db::backup_begin`) into a live, read-only
//! follower [`LdcDb`](ldc_core::LdcDb):
//!
//! 1. **bootstrap** — restore the backup's base checkpoint plus the
//!    stream's clean prefix into the follower's storage, then open it;
//! 2. **poll** — read stream records past the follower's persisted
//!    replication cursor, copy any SSTables they add, and apply each edit
//!    through `Db::apply_remote_edit` (which stamps the advanced cursor
//!    into the follower's own manifest, so a restarted follower resumes
//!    exactly where it left off);
//! 3. **lag** — `shipped - applied` records, surfaced as stats, the
//!    `set_repl_lag` metrics gauge, and the server tier's stats report.
//!
//! Every step is idempotent under crash: a torn stream tail is a clean
//! end, table copies skip files already present, and a crash between a
//! copy and its apply is healed by the next poll re-reading from the
//! durable cursor. The follower never writes through its own WAL — its
//! only mutations are replicated manifest edits — so it is consistent
//! with a prefix of the primary's acknowledged history at all times.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod tailer;

pub use tailer::{Follower, FollowerStats};
