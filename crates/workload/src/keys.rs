//! Key and value construction.
//!
//! The paper's setup (§IV-A): 16-byte keys, 1-KiB values. Keys are built
//! from an item index through an avalanche hash so that logically
//! sequential inserts land uniformly across the key space (YCSB's
//! "scrambled" behaviour), which is what makes SSTables overlap and
//! compaction non-trivial.

/// Builds fixed-width keys/values from item indices.
#[derive(Debug, Clone)]
pub struct KeyCodec {
    key_bytes: usize,
    value_bytes: usize,
}

impl KeyCodec {
    /// The paper's configuration: 16-byte keys, 1-KiB values.
    pub fn paper_default() -> Self {
        Self::new(16, 1024)
    }

    /// Custom sizes (keys are at least 8 bytes).
    pub fn new(key_bytes: usize, value_bytes: usize) -> Self {
        Self {
            key_bytes: key_bytes.max(8),
            value_bytes,
        }
    }

    /// Key width in bytes.
    pub fn key_bytes(&self) -> usize {
        self.key_bytes
    }

    /// Value width in bytes.
    pub fn value_bytes(&self) -> usize {
        self.value_bytes
    }

    /// The key for item `index` (deterministic, scrambled).
    pub fn key(&self, index: u64) -> Vec<u8> {
        let h = splitmix64(index);
        let mut out = format!("{h:016x}").into_bytes();
        while out.len() < self.key_bytes {
            out.push(b'k');
        }
        out.truncate(self.key_bytes);
        out
    }

    /// A deterministic value for item `index` at version `version`.
    /// Embeds both so tests can verify freshness after overwrites.
    pub fn value(&self, index: u64, version: u64) -> Vec<u8> {
        let mut out = format!("v{version:08}i{index:016}").into_bytes();
        out.resize(self.value_bytes, b'.');
        out
    }

    /// Parses the version back out of a value (test helper).
    pub fn parse_version(value: &[u8]) -> Option<u64> {
        let s = std::str::from_utf8(value.get(1..9)?).ok()?;
        s.parse().ok()
    }
}

/// SplitMix64: a fast avalanche permutation of u64.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_defaults_match_setup() {
        let c = KeyCodec::paper_default();
        assert_eq!(c.key(0).len(), 16);
        assert_eq!(c.value(0, 0).len(), 1024);
    }

    #[test]
    fn keys_are_unique_and_deterministic() {
        let c = KeyCodec::paper_default();
        let mut seen = HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(c.key(i)), "collision at {i}");
        }
        assert_eq!(c.key(123), c.key(123));
    }

    #[test]
    fn keys_are_scrambled_not_sequential() {
        let c = KeyCodec::paper_default();
        // Consecutive indices should not produce lexicographic neighbours.
        let ordered = (0..100u64)
            .map(|i| c.key(i))
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|w| w[0] < w[1])
            .count();
        assert!(
            (20..80).contains(&ordered),
            "suspiciously ordered: {ordered}"
        );
    }

    #[test]
    fn value_version_roundtrip() {
        let c = KeyCodec::new(16, 64);
        let v = c.value(42, 7);
        assert_eq!(v.len(), 64);
        assert_eq!(KeyCodec::parse_version(&v), Some(7));
    }

    #[test]
    fn minimum_key_width_enforced() {
        let c = KeyCodec::new(4, 10);
        assert_eq!(c.key(1).len(), 8);
    }
}
