//! The paper's analytical performance model (§II-B, §III-C).
//!
//! These closed forms predict amplification, throughput, and tail latency
//! from first principles; the benchmark harness prints model-vs-measured so
//! the reproduction can be sanity-checked against the theory as well as the
//! paper's empirical figures.

/// Inputs shared by the model formulas.
#[derive(Debug, Clone, Copy)]
pub struct ModelParams {
    /// Fan-out `k`.
    pub fan_out: f64,
    /// SSTable size `b` in bytes.
    pub sstable_bytes: f64,
    /// Total data amount `n` in bytes.
    pub total_bytes: f64,
    /// Unsorted Level-0 file count `u`.
    pub l0_files: f64,
}

impl ModelParams {
    /// LSM-tree height `log_k(n / b)` (at least 1).
    pub fn height(&self) -> f64 {
        let ratio = (self.total_bytes / self.sstable_bytes).max(self.fan_out);
        ratio.log(self.fan_out).max(1.0)
    }
}

/// Theorem 2.1: UDC write amplification `O(k * log_k(n/b))`.
pub fn write_amp_udc(p: &ModelParams) -> f64 {
    p.fan_out * p.height()
}

/// Theorem 3.1: LDC write amplification `O(log_k(n/b))`.
pub fn write_amp_ldc(p: &ModelParams) -> f64 {
    p.height()
}

/// Theorem 2.2: UDC read amplification `O(log_k(n/b) + u)`.
pub fn read_amp_udc(p: &ModelParams) -> f64 {
    p.height() + p.l0_files
}

/// Theorem 3.2: LDC worst-case read amplification `O(k*log_k(n/b) + u)`.
/// With effective Bloom filters the practical value approaches
/// [`read_amp_udc`].
pub fn read_amp_ldc_worst(p: &ModelParams) -> f64 {
    p.fan_out * p.height() + p.l0_files
}

/// Eq. (1): user-visible write/read throughput given device rates and
/// amplification.
pub fn lsm_throughput(device_rate: f64, amplification: f64) -> f64 {
    if amplification <= 0.0 {
        return 0.0;
    }
    device_rate / amplification
}

/// Eq. (2): total throughput of a mix with write ratio `r_w`.
pub fn total_throughput(th_write: f64, th_read: f64, write_ratio: f64) -> f64 {
    let r = write_ratio.clamp(0.0, 1.0);
    let denom = r / th_write + (1.0 - r) / th_read;
    if denom <= 0.0 {
        return 0.0;
    }
    1.0 / denom
}

/// Eq. (3): write tail latency — one round of compaction moves
/// `(k + 1) * c * b` bytes through the remaining device write bandwidth,
/// plus the constant memtable insert cost `p`.
pub fn write_tail_latency_secs(
    fan_out: f64,
    files_per_compaction: f64,
    sstable_bytes: f64,
    device_write_rate: f64,
    read_bandwidth_share: f64,
    memtable_cost_secs: f64,
) -> f64 {
    let usable = (device_write_rate - read_bandwidth_share).max(f64::EPSILON);
    (fan_out + 1.0) * files_per_compaction * sstable_bytes / usable + memtable_cost_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams {
            fan_out: 10.0,
            sstable_bytes: 2e6,
            total_bytes: 2e10, // 10^4 tables -> height 4
            l0_files: 4.0,
        }
    }

    #[test]
    fn height_matches_logarithm() {
        let p = params();
        assert!((p.height() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ldc_reduces_write_amp_by_fan_out() {
        let p = params();
        let udc = write_amp_udc(&p);
        let ldc = write_amp_ldc(&p);
        assert!((udc / ldc - p.fan_out).abs() < 1e-9);
    }

    #[test]
    fn ldc_worst_case_read_amp_exceeds_udc() {
        let p = params();
        assert!(read_amp_ldc_worst(&p) > read_amp_udc(&p));
    }

    #[test]
    fn throughput_formulas_match_paper_example() {
        // §II-C point 3: r_w=0.5, th_r=10, th_w=1 -> 1.82; th_w=2, th_r=5
        // -> 2.86 (57% better despite a lower sum).
        let slow = total_throughput(1.0, 10.0, 0.5);
        let fast = total_throughput(2.0, 5.0, 0.5);
        assert!((slow - 1.818).abs() < 0.01, "{slow}");
        assert!((fast - 2.857).abs() < 0.01, "{fast}");
        assert!(fast / slow > 1.5);
    }

    #[test]
    fn lsm_throughput_divides_by_amplification() {
        assert!((lsm_throughput(400.0, 40.0) - 10.0).abs() < 1e-9);
        assert_eq!(lsm_throughput(400.0, 0.0), 0.0);
    }

    #[test]
    fn tail_latency_scales_with_granularity() {
        // Bigger compactions (larger c) -> proportionally larger tails.
        let t1 = write_tail_latency_secs(10.0, 1.0, 2e6, 400e6, 0.0, 1e-6);
        let t4 = write_tail_latency_secs(10.0, 4.0, 2e6, 400e6, 0.0, 1e-6);
        assert!(t4 > 3.5 * t1);
        // LDC's effective fan-out of ~1 shrinks the tail ~(k+1)/2x.
        let ldc = write_tail_latency_secs(1.0, 1.0, 2e6, 400e6, 0.0, 1e-6);
        assert!(t1 / ldc > 4.0);
    }
}
