//! Fig 13 — Bloom filter accuracy vs size on a read-only workload.
//!
//! Paper: the count of data-block reads drops as bits/key grow, flattening
//! around 16 bits/key (filters are then effectively exact); the per-SSTable
//! filter grows from 11.3 KB at 8 bits/key to 67.3 KB at 128 bits/key — so
//! 8–16 bits/key (~0.5% of a 2 MB table) is the sweet spot.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(30_000);
    let bits = [0usize, 4, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    for &b in &bits {
        let spec = WorkloadSpec::read_only(args.ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        let mut config = StoreConfig::new(System::Ldc);
        config.options.bloom_bits_per_key = b;
        // No block cache: every needed block is a device read, matching the
        // paper's block-read counting.
        config.options.block_cache_bytes = 0;
        let result = run_experiment(&config, &spec);
        // Filter size for one SSTable at the paper's geometry: 2 MiB of
        // ~1 KiB entries -> ~2048 keys.
        let keys_per_table = config.options.sstable_bytes / (16 + args.value_bytes);
        let filter_kb = (keys_per_table * b) as f64 / 8.0 / 1024.0;
        rows.push(vec![
            b.to_string(),
            result.block_reads.to_string(),
            format!(
                "{:.2}",
                result.block_reads as f64 / result.report.ops as f64
            ),
            format!("{filter_kb:.1}"),
        ]);
    }
    print_table(
        args.csv,
        &format!(
            "Fig 13: Bloom accuracy, read-only, {} lookups (LDC)",
            args.ops
        ),
        &[
            "bits/key",
            "data-block reads",
            "blocks/lookup",
            "filter KB per 2MiB SSTable",
        ],
        &rows,
    );
    println!(
        "\nExpectation: block reads fall steeply up to ~16 bits/key then \
         flatten at ~1 block per lookup; filter size grows linearly \
         (paper: 11.3 KB at 8 b/k to 67.3 KB at 128 b/k)."
    );
}
