//! # ldc-core — Lower-level Driven Compaction
//!
//! Rust implementation of the ICDE 2019 paper *"LDC: A Lower-Level Driven
//! Compaction Method to Optimize SSD-Oriented Key-Value Stores"* (Chai et
//! al.). LDC replaces the traditional upper-level driven compaction of
//! LSM-tree stores with a two-phase mechanism:
//!
//! 1. **link** — instead of immediately merging an upper-level SSTable into
//!    the `O(k)` overlapping lower-level SSTables, the file is *frozen* and
//!    its key range is recorded as lightweight **slice links** on those
//!    lower files (no data I/O);
//! 2. **merge** — a lower-level SSTable that has accumulated `T_s` slices
//!    (about its own size in upper-level data) drives the actual merge,
//!    rewriting itself once per `T_s` upper-level contributions.
//!
//! The result (paper §III-C): per-round compaction granularity drops from
//! `O(k)` SSTables to `O(1)` — smaller write stalls, 2.6x lower P99.9
//! latency — and write amplification drops by a factor of `k`, which on
//! read-fast/write-slow SSDs buys 57-72% higher mixed throughput and half
//! the compaction I/O (longer device lifetime).
//!
//! Crate layout:
//! * [`LdcPolicy`] — the compaction policy (Algorithm 1) plugged into the
//!   `ldc-lsm` engine;
//! * [`AdaptiveThreshold`] — workload-driven self-tuning of `T_s` (§III-B4);
//! * [`model`] — the paper's analytical performance model (§II);
//! * [`LdcDb`] — a batteries-included store facade over the engine and the
//!   simulated SSD substrate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive;
mod facade;
pub mod model;
mod policy;

pub use adaptive::AdaptiveThreshold;
pub use facade::{CompactionMode, LdcDb, LdcDbBuilder};
pub use policy::{LdcConfig, LdcPolicy};

// Degraded-mode surface: scrub, repair, quarantine.
pub use ldc_lsm::{
    repair_db, repair_db_with_sink, CorruptionInfo, CorruptionPolicy, QuarantinedFile,
    RepairReport, ScrubReport,
};

// Re-export the layers underneath so downstream users need one dependency.
pub use ldc_lsm as lsm;
pub use ldc_ssd as ssd;
