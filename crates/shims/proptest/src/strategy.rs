//! Core [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value` from a random stream.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces one value per call.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Weighted union of same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.gen_value(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary_from(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_from(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_from(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_from(rng)
    }
}

/// Strategy for an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
