//! End-to-end tests over real loopback TCP: CRUD across shards,
//! pipelining, malformed-frame handling, admission-control overload, and
//! the drain-on-shutdown contract.

use std::io::Write as _;
use std::net::TcpStream;

use ldc_client::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, ResponseBody, Status,
    MAX_FRAME, NO_SHARD,
};
use ldc_client::{Client, NetError};
use ldc_server::{LdcServer, ServerConfig, ShardRouter};

fn start_small() -> LdcServer {
    LdcServer::start(ServerConfig::small_for_tests()).unwrap()
}

#[test]
fn crud_round_trips_across_shards() {
    let server = start_small();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    let router = ShardRouter::new(server.shard_count());
    let mut shards_hit = vec![false; server.shard_count()];
    for i in 0..200u32 {
        let key = format!("user{i:05}").into_bytes();
        let value = format!("payload-{i}").into_bytes();
        let meta = client.put(&key, &value).unwrap();
        assert_eq!(meta.shard as usize, router.shard_of(&key));
        shards_hit[meta.shard as usize] = true;
    }
    assert!(
        shards_hit.iter().all(|&h| h),
        "200 keys left a shard idle: {shards_hit:?}"
    );

    for i in (0..200u32).step_by(7) {
        let key = format!("user{i:05}").into_bytes();
        let (value, meta) = client.get(&key).unwrap();
        assert_eq!(value, Some(format!("payload-{i}").into_bytes()));
        assert_eq!(meta.shard as usize, router.shard_of(&key));
    }
    let (missing, _) = client.get(b"absent").unwrap();
    assert_eq!(missing, None);

    // Cross-shard merged scan: globally key-ordered, honors the limit.
    let (rows, meta) = client.scan(b"user", 50).unwrap();
    assert_eq!(rows.len(), 50);
    assert_eq!(meta.shard, NO_SHARD);
    assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    assert_eq!(rows[0].0, b"user00000".to_vec());

    // Batched lookup spanning shards, request order preserved.
    let keys: Vec<&[u8]> = vec![b"user00003", b"absent", b"user00199", b"user00042"];
    let (values, _) = client.multi_get(&keys).unwrap();
    assert_eq!(values[0], Some(b"payload-3".to_vec()));
    assert_eq!(values[1], None);
    assert_eq!(values[2], Some(b"payload-199".to_vec()));
    assert_eq!(values[3], Some(b"payload-42".to_vec()));

    client.delete(b"user00003").unwrap();
    assert_eq!(client.get(b"user00003").unwrap().0, None);

    let stats = client.stats().unwrap();
    assert_eq!(stats.protocol_errors, 0);
    let accepted: u64 = stats.shards.iter().map(|s| s.accepted).sum();
    let completed: u64 = stats.shards.iter().map(|s| s.completed).sum();
    assert!(accepted > 200);
    assert_eq!(stats.shards.iter().map(|s| s.rejected).sum::<u64>(), 0);
    assert!(completed >= accepted - u64::from(stats.shards.iter().map(|s| s.depth).sum::<u32>()));

    let net = server.metrics().net_counters();
    assert!(net.accepted > 200 && net.rejected == 0);
    assert!(net.bytes_in > 0 && net.bytes_out > 0);
    server.shutdown();
}

#[test]
fn pipeline_returns_in_request_order() {
    // Queues deep enough that a full-speed 120-request burst cannot trip
    // admission control (that behavior has its own test below).
    let mut config = ServerConfig::small_for_tests();
    config.queue_capacity = 256;
    let server = LdcServer::start(config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let puts: Vec<Request> = (0..120u32)
        .map(|i| Request::Put {
            key: format!("p{i:04}").into_bytes(),
            value: format!("v{i}").into_bytes(),
        })
        .collect();
    let responses = client.pipeline(&puts).unwrap();
    assert_eq!(responses.len(), 120);
    assert!(responses.iter().all(|r| r.status == Status::Ok));

    let gets: Vec<Request> = (0..120u32)
        .map(|i| Request::Get {
            key: format!("p{i:04}").into_bytes(),
        })
        .collect();
    let responses = client.pipeline(&gets).unwrap();
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(
            resp.body,
            ResponseBody::Value(Some(format!("v{i}").into_bytes())),
            "response {i} out of order or wrong"
        );
    }
    server.shutdown();
}

#[test]
fn malformed_frames_get_protocol_errors_not_crashes() {
    let server = start_small();

    // A garbage body inside a well-formed frame: server answers
    // `Protocol` and keeps the connection usable.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut garbage = 77u64.to_le_bytes().to_vec();
    garbage.push(200); // unknown opcode
    write_frame(&mut raw, &garbage).unwrap();
    raw.flush().unwrap();
    let resp = decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert_eq!(resp.status, Status::Protocol);
    assert_eq!(resp.req_id, 77, "req id should be echoed best-effort");

    // Truncated body (frame shorter than the request header).
    write_frame(&mut raw, &[1, 2, 3]).unwrap();
    raw.flush().unwrap();
    let resp = decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert_eq!(resp.status, Status::Protocol);

    // The same connection still serves valid requests afterwards.
    write_frame(&mut raw, &encode_request(5, &Request::Ping)).unwrap();
    raw.flush().unwrap();
    let resp = decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert_eq!((resp.req_id, resp.status), (5, Status::Ok));

    // An oversized length prefix cannot be resynchronized: the server
    // answers `Protocol` once and closes.
    let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
    hostile.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
    hostile.flush().unwrap();
    let resp = decode_response(&read_frame(&mut hostile).unwrap()).unwrap();
    assert_eq!(resp.status, Status::Protocol);
    assert!(matches!(
        read_frame(&mut hostile),
        Err(ldc_client::proto::FrameError::Eof)
    ));

    // Both errors were counted; the server is still healthy.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.protocol_errors, 3);
    client.put(b"still", b"alive").unwrap();
    server.shutdown();
}

#[test]
fn overload_rejects_with_retry_after_and_recovers() {
    let mut config = ServerConfig::small_for_tests();
    config.queue_capacity = 2;
    config.retry_after_ms = 25;
    let server = LdcServer::start(config).unwrap();
    let router = ShardRouter::new(server.shard_count());

    // Ten keys all owned by shard 0.
    let keys: Vec<Vec<u8>> = (0..10_000u32)
        .map(|i| format!("ov{i:06}").into_bytes())
        .filter(|k| router.shard_of(k) == 0)
        .take(10)
        .collect();
    assert_eq!(keys.len(), 10);

    // Park shard 0's worker so admitted jobs cannot drain, then fire the
    // burst: at most `capacity` (+1 if the pause sentinel still occupies
    // a slot) are admitted, the rest must be rejected immediately.
    let guard = server.pause_shard(0).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    let (mut tx, mut rx) = client.split().unwrap();
    for key in &keys {
        tx.send(&Request::Put {
            key: key.clone(),
            value: b"burst".to_vec(),
        })
        .unwrap();
    }
    tx.flush().unwrap();

    // Rejections arrive while the worker is parked.
    let mut rejected = 0usize;
    while rejected < keys.len() - 2 {
        let resp = rx.recv().unwrap().expect("connection stays open");
        assert_eq!(resp.status, Status::Overloaded, "expected a rejection");
        assert_eq!(resp.body, ResponseBody::RetryAfterMs(25));
        rejected += 1;
    }

    // A second connection still gets liveness service under overload.
    let mut probe = Client::connect(server.local_addr()).unwrap();
    probe.ping().unwrap();
    let stats = probe.stats().unwrap();
    assert!(stats.shards[0].rejected >= (keys.len() as u64) - 2);
    assert_eq!(stats.shards[0].capacity, 2);
    assert!(stats.shards[0].depth_high_water >= 1);

    // Release the shard: every admitted put completes Ok. (If the pause
    // sentinel still held a queue slot during the burst, one extra
    // rejection may trail in here.)
    drop(guard);
    let mut ok = 0;
    let remaining = keys.len() - rejected;
    for _ in 0..remaining {
        let resp = rx.recv().unwrap().expect("connection stays open");
        match resp.status {
            Status::Ok => ok += 1,
            Status::Overloaded => rejected += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert!((1..=2).contains(&ok), "admitted {ok} with capacity 2");
    assert_eq!(ok + rejected, keys.len());

    // Overload was observable, never fatal: counters add up and the
    // server keeps serving.
    let net = server.metrics().net_counters();
    assert_eq!(net.rejected, rejected as u64);
    let (value, _) = probe.get(&keys[0]).unwrap();
    // keys[0] was the first send: admitted (queue was empty), so it
    // must have been persisted on release.
    assert_eq!(value, Some(b"burst".to_vec()));

    // Admission blame shows up in the server's taxonomy.
    let blame = server.metrics().blame_totals(ldc_obs::OpType::Put);
    assert!(
        blame[ldc_obs::Blame::Admission.index()] > 0,
        "queued puts must attribute wait to the admission bucket: {blame:?}"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_and_closes_cleanly() {
    let server = start_small();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for i in 0..300u32 {
        client
            .put(format!("d{i:05}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    let (value, _) = client.get(b"d00042").unwrap();
    assert_eq!(value, Some(b"v42".to_vec()));

    server.shutdown();

    // The connection was closed after in-flight work drained; new
    // requests fail with a transport error, not a hang or a panic.
    let err = client.put(b"late", b"write").unwrap_err();
    match err {
        NetError::Io(_) | NetError::Disconnected | NetError::TornFrame => {}
        other => panic!("unexpected error after shutdown: {other}"),
    }
}

#[test]
fn shutdown_via_drop_does_not_hang() {
    let server = start_small();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.put(b"k", b"v").unwrap();
    drop(server);
    assert!(client.put(b"k2", b"v2").is_err());
}

#[test]
fn udc_mode_serves_identically() {
    let server = LdcServer::start(ServerConfig::small_for_tests().udc()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for i in 0..100u32 {
        client
            .put(format!("u{i:04}").as_bytes(), format!("w{i}").as_bytes())
            .unwrap();
    }
    let (rows, _) = client.scan(b"u", 1000).unwrap();
    assert_eq!(rows.len(), 100);
    assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    server.shutdown();
}

#[test]
fn lockcheck_sanitizer_clean_session() {
    // Turn the runtime lock-order sanitizer on for the whole process
    // (equivalent to LDC_LOCKCHECK=1) and drive a busy mixed session over
    // every shard. Any rank inversion panics the acquiring thread, which
    // surfaces here as a request error or a hung shutdown.
    ldc_obs::lockcheck::enable();
    let server = start_small();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for i in 0..300u32 {
        let key = format!("lk{i:05}").into_bytes();
        client.put(&key, format!("v{i}").as_bytes()).unwrap();
        if i % 3 == 0 {
            let (value, _) = client.get(&key).unwrap();
            assert_eq!(value, Some(format!("v{i}").into_bytes()));
        }
    }
    let (rows, _) = client.scan(b"lk", 64).unwrap();
    assert_eq!(rows.len(), 64);
    client.stats().unwrap();
    server.shutdown();
    // A clean run leaves this thread holding no ranked locks, and the
    // sanitizer is active in debug builds / compiled out in release.
    assert_eq!(ldc_obs::lockcheck::held_depth(), 0);
    assert_eq!(ldc_obs::lockcheck::is_active(), cfg!(debug_assertions));
}

#[test]
fn follower_serves_reads_rejects_writes_and_catches_up() {
    use ldc_core::lsm::Options;
    use ldc_core::ssd::{MemStorage, SsdConfig, SsdDevice, StorageBackend};
    use ldc_core::LdcDb;
    use std::sync::Arc;

    let key = |i: u32| format!("fk{i:05}").into_bytes();
    let value = |i: u32| format!("fv-{i:05}-{}", "x".repeat(48)).into_bytes();

    // A primary store (no server needed) publishes a backup on its own
    // storage; the follower server bootstraps straight from it.
    let src: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()));
    let primary = LdcDb::builder()
        .options(Options::small_for_tests())
        .storage(Arc::clone(&src))
        .build()
        .unwrap();
    for i in 0..200 {
        primary.put(&key(i), &value(i)).unwrap();
    }
    primary.drain_background();
    primary.backup_begin("e2e").unwrap();

    let server =
        LdcServer::start_follower(ServerConfig::small_for_tests(), Arc::clone(&src), "e2e")
            .unwrap();
    assert_eq!(server.shard_count(), 1, "a follower is a single shard");
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Bootstrap state served over the wire, including merged scans.
    let (v, meta) = client.get(&key(7)).unwrap();
    assert_eq!(v, Some(value(7)));
    assert_eq!(meta.shard, 0);
    let (rows, _) = client.scan(b"fk", 25).unwrap();
    assert_eq!(rows.len(), 25);
    assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));

    // Writes bounce at dispatch with the dedicated non-retryable status.
    for result in [client.put(b"w", b"x"), client.delete(&key(0))] {
        match result {
            Err(NetError::Remote { status, .. }) => {
                assert_eq!(status, Status::ReadOnly);
                assert!(!status.is_retryable());
            }
            other => panic!("expected ReadOnly rejection, got {other:?}"),
        }
    }
    let (still, _) = client.get(&key(0)).unwrap();
    assert_eq!(still, Some(value(0)), "rejected delete must not apply");

    // New primary writes flow through the stream; poll_follower gives a
    // deterministic catch-up handle (the idle poller also runs).
    for i in 200..300 {
        primary.put(&key(i), &value(i)).unwrap();
    }
    primary.flush().unwrap();
    primary.drain_background();
    let mut rounds = 0;
    loop {
        server.poll_follower().expect("poll must run on a follower");
        let (v, _) = client.get(&key(299)).unwrap();
        if v == Some(value(299)) {
            break;
        }
        rounds += 1;
        assert!(rounds < 100, "follower failed to catch up");
    }
    assert_eq!(server.replication_lag(), Some(0));

    let stats = client.stats().unwrap();
    assert!(stats.follower, "stats must mark the follower");
    assert_eq!(stats.follower_lag, 0);
    assert!(stats.follower_cursor > 0, "cursor must reflect applies");
    server.shutdown();
}
