//! Integer encodings shared by the WAL, blocks, tables, and the manifest.
//!
//! Matches LevelDB's conventions: little-endian fixed-width integers and
//! LEB128-style varints.

/// Appends a little-endian u32.
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian u32 at `offset`.
pub fn get_fixed32(src: &[u8], offset: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&src[offset..offset + 4]);
    u32::from_le_bytes(b)
}

/// Reads a little-endian u64 at `offset`.
pub fn get_fixed64(src: &[u8], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&src[offset..offset + 8]);
    u64::from_le_bytes(b)
}

/// Appends a varint-encoded u32.
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, v as u64)
}

/// Appends a varint-encoded u64.
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Decodes a varint u64 from the front of `src`, returning the value and the
/// number of bytes consumed, or `None` if `src` is truncated or overlong.
pub fn get_varint64(src: &[u8]) -> Option<(u64, usize)> {
    let mut result: u64 = 0;
    for (i, &byte) in src.iter().enumerate().take(10) {
        result |= u64::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            return Some((result, i + 1));
        }
    }
    None
}

/// Decodes a varint u32 (fails if the value exceeds `u32::MAX`).
pub fn get_varint32(src: &[u8]) -> Option<(u32, usize)> {
    let (v, n) = get_varint64(src)?;
    u32::try_from(v).ok().map(|v| (v, n))
}

/// Appends a length-prefixed byte slice.
pub fn put_length_prefixed(dst: &mut Vec<u8>, slice: &[u8]) {
    put_varint32(dst, slice.len() as u32);
    dst.extend_from_slice(slice);
}

/// Reads a length-prefixed slice from the front of `src`, returning the
/// slice and the total bytes consumed.
pub fn get_length_prefixed(src: &[u8]) -> Option<(&[u8], usize)> {
    let (len, n) = get_varint32(src)?;
    let end = n.checked_add(len as usize)?;
    if end > src.len() {
        return None;
    }
    Some((&src[n..end], end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdead_beef);
        put_fixed64(&mut buf, 0x0123_4567_89ab_cdef);
        assert_eq!(get_fixed32(&buf, 0), 0xdead_beef);
        assert_eq!(get_fixed64(&buf, 4), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (decoded, n) = get_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_lengths_match_leb128() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint64(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        put_varint64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        assert!(get_varint64(&buf[..buf.len() - 1]).is_none());
        assert!(get_varint64(&[]).is_none());
    }

    #[test]
    fn varint32_rejects_oversized() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(get_varint32(&buf).is_none());
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        let (s1, n1) = get_length_prefixed(&buf).unwrap();
        assert_eq!(s1, b"hello");
        let (s2, n2) = get_length_prefixed(&buf[n1..]).unwrap();
        assert_eq!(s2, b"");
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn length_prefixed_rejects_truncation() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        assert!(get_length_prefixed(&buf[..3]).is_none());
    }
}
