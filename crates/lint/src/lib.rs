//! `ldc-lint` — dependency-free static analysis for the LDC workspace.
//!
//! Six rule families guard the invariants the paper reproduction depends
//! on (see `crates/lint/src/rules/`):
//!
//! | rule id             | invariant                                               |
//! |---------------------|---------------------------------------------------------|
//! | `determinism`       | no wall-clock / entropy / hash-order in simulated code  |
//! | `determinism_taint` | host-derived values never flow into deterministic sinks |
//! | `panic_safety`      | production I/O paths return `Result`, ratcheted debt    |
//! | `lock_order`        | acquisitions follow `crates/lint/lock_order.toml` ranks |
//! | `must_use_result`   | storage-tier `Result`s are never silently discarded     |
//! | `layering`          | crate deps respect obs <- ssd <- lsm <- core <- tools   |
//!
//! `determinism_taint`, `must_use_result`, and `lock_order` run over a
//! workspace-wide symbol table and approximate call graph
//! ([`parse`]/[`graph`]); the rest are per-file token passes. The lock
//! table is shared with the runtime sanitizer (`ldc_obs::lockcheck`), so
//! the static hierarchy and the dynamic witness ranks cannot drift.
//!
//! Run as a binary (`cargo run -p ldc-lint -- --workspace`) or through the
//! root `tests/lint_gate.rs` integration test that gates `cargo test`.
//! Violations carry `file:line`, the rule id, and a concrete suggestion;
//! intentional exceptions are written as
//! `// ldc-lint: allow(<rule>) — <reason>` (an empty reason is inert).

use std::fs;
use std::path::{Path, PathBuf};

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use diag::{Diagnostic, Severity};
use lexer::SourceView;
use rules::panic_safety::Baseline;

/// Where the panic-safety ratchet lives, workspace-relative.
pub const BASELINE_PATH: &str = "crates/lint/baseline_panic.txt";

/// Outcome of a workspace lint run.
#[derive(Debug)]
pub struct Report {
    /// Every finding, sorted by file, line, rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files lexed.
    pub files_scanned: usize,
    /// Regenerated baseline text (only when requested).
    pub new_baseline: Option<String>,
}

impl Report {
    /// True when no error-severity findings exist.
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error)
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

/// Lints the workspace rooted at `root` (the directory holding the top
/// `Cargo.toml`). Set `update_baseline` to regenerate the panic ratchet
/// from current counts instead of checking against it.
pub fn lint_workspace(root: &Path, update_baseline: bool) -> Result<Report, String> {
    // 1. Collect sources: `crates/*/src/**/*.rs`, shims excluded.
    let mut files: Vec<(String, SourceView)> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "shims"))
        .collect();
    crate_dirs.sort();
    for dir in &crate_dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        for path in rust_files(&src)? {
            let rel = workspace_rel(root, &path);
            let text = fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
            files.push((rel, SourceView::new(&text)));
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));

    let mut diagnostics = Vec::new();

    // 2. determinism + layering source checks (per file).
    for (path, view) in &files {
        if rules::determinism::in_scope(path) {
            diagnostics.extend(rules::determinism::check_file(path, view));
        }
        diagnostics.extend(rules::layering::check_source(path, view));
    }

    // 3. layering manifest checks.
    for dir in &crate_dirs {
        let manifest_path = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest_path) {
            let rel = workspace_rel(root, &manifest_path);
            diagnostics.extend(rules::layering::check_manifest(&rel, &text));
        }
    }

    // 4. panic-safety ratchet.
    let baseline_file = root.join(BASELINE_PATH);
    let baseline: Baseline = if update_baseline {
        Baseline::new() // not consulted below
    } else {
        let text = fs::read_to_string(&baseline_file)
            .map_err(|e| format!("reading {BASELINE_PATH}: {e} (run --update-baseline once)"))?;
        rules::panic_safety::parse_baseline(&text)?
    };
    let new_baseline = if update_baseline {
        let mut b = Baseline::new();
        for (path, view) in &files {
            if rules::panic_safety::in_scope(path) {
                let (counts, _) = rules::panic_safety::count_sites(view);
                b.insert(path.clone(), counts);
            }
        }
        Some(rules::panic_safety::format_baseline(&b))
    } else {
        diagnostics.extend(rules::panic_safety::check(&files, &baseline));
        None
    };

    // 5. lock order (needs the shared lock table).
    match fs::read_to_string(root.join(rules::lock_order::TABLE_PATH)) {
        Ok(table) => diagnostics.extend(rules::lock_order::check(&files, &table)),
        Err(e) => diagnostics.push(Diagnostic::error(
            rules::lock_order::TABLE_PATH,
            0,
            rules::lock_order::RULE,
            format!("cannot read the lock table: {e}"),
            "restore crates/lint/lock_order.toml — the runtime sanitizer embeds it too",
        )),
    }

    // 6. workspace-graph rules: determinism taint + must-use.
    let ws = graph::Workspace::build(&files);
    diagnostics.extend(rules::taint::check(&ws, &files));
    diagnostics.extend(rules::must_use::check(&ws, &files));

    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        diagnostics,
        files_scanned: files.len(),
        new_baseline,
    })
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).map_err(|e| format!("reading {}: {e}", d.display()))?;
        for entry in entries.filter_map(|e| e.ok()) {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `root`-relative path with `/` separators.
fn workspace_rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks up from the current directory to the workspace root (the first
/// ancestor containing both `Cargo.toml` and `crates/`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lint must pass over the real workspace — this is the same gate
    /// CI runs, kept here so `cargo test -p ldc-lint` catches regressions
    /// without the binary.
    #[test]
    fn real_workspace_is_clean() {
        let root =
            find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let report = lint_workspace(&root, false).expect("lint runs");
        let errors: Vec<String> = report.errors().map(|d| d.render()).collect();
        assert!(errors.is_empty(), "lint errors:\n{}", errors.join("\n"));
        assert!(report.files_scanned > 20, "suspiciously few files scanned");
    }

    /// `--update-baseline` output must parse back and match current counts.
    #[test]
    fn baseline_regeneration_roundtrips() {
        let root =
            find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let report = lint_workspace(&root, true).expect("lint runs");
        let text = report.new_baseline.expect("baseline generated");
        let parsed = rules::panic_safety::parse_baseline(&text).expect("parses");
        let committed = std::fs::read_to_string(root.join(BASELINE_PATH)).expect("committed");
        let committed = rules::panic_safety::parse_baseline(&committed).expect("parses");
        for (path, counts) in &parsed {
            let allowed = committed.get(path).copied().unwrap_or_default();
            assert!(
                counts.panics <= allowed.panics && counts.indexes <= allowed.indexes,
                "{path}: counts {counts:?} exceed committed baseline {allowed:?}"
            );
        }
    }
}
