//! CRC32C (Castagnoli) with LevelDB-style masking.
//!
//! Implemented in-repo (software, table-driven) to stay within the
//! pre-approved dependency set. The mask makes CRCs of CRC-bearing data
//! (e.g. a log record embedded in another log) not look like valid CRCs.

const POLY: u32 = 0x82f6_3b78; // reflected CRC32C polynomial

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extends a running CRC with more data.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// LevelDB's CRC mask: rotate right 15 bits and add a constant.
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Inverse of [`mask`].
pub fn unmask(masked: u32) -> u32 {
    let rot = masked.wrapping_sub(MASK_DELTA);
    rot.rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32C test vectors (RFC 3720 appendix B.4 et al.).
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
    }

    #[test]
    fn extend_equals_whole() {
        let data = b"hello world";
        let partial = extend(crc32c(b"hello"), b" world");
        assert_eq!(partial, crc32c(data));
    }

    #[test]
    fn distinct_inputs_distinct_crcs() {
        assert_ne!(crc32c(b"a"), crc32c(b"b"));
        assert_ne!(crc32c(b""), crc32c(b"a"));
    }

    #[test]
    fn mask_roundtrip() {
        for data in [&b"foo"[..], b"bar", b"", b"\x00\x01\x02"] {
            let crc = crc32c(data);
            assert_eq!(unmask(mask(crc)), crc);
            assert_ne!(mask(crc), crc, "mask must change the value");
        }
    }
}
