//! `determinism_taint` — interprocedural determinism-taint analysis.
//!
//! The per-file `determinism` rule bans nondeterminism *tokens* inside the
//! engine crates outright. This rule covers the crates that legitimately
//! touch host time (`server`, `client`, `bench`) by tracking *flows*: a
//! value born from a nondeterministic source must never reach a
//! deterministic sink — the WAL/SSTable/manifest encoders, the virtual
//! clock, the wire-protocol frame encoders, or the same-seed-compared
//! bench JSON.
//!
//! Two analyses run over the workspace call graph
//! ([`Workspace`](crate::graph::Workspace)):
//!
//! * **Sink purity.** A sink function and its transitive resolved callees
//!   must not contain a source token. A sink that computes host time
//!   *internally* corrupts its output even when every caller is careful.
//! * **Tainted arguments.** Within each function, locals assigned from a
//!   source expression (or from a call to a function whose return value
//!   is host-derived) are tainted; taint spreads through further `let`
//!   bindings that mention a tainted name. Passing a tainted name to a
//!   sink — or to any function that can reach a sink — is reported.
//!
//! Both are deliberately approximate: call edges exist only when the
//! target is unambiguous, and taint does not flow through fields or
//! across function boundaries except via return values. That keeps the
//! rule quiet; genuinely intended flows (the server stamps host queue
//! times into reply frames) carry `// ldc-lint: allow(determinism_taint)`
//! comments with reasons.
//!
//! The ftl `host_pages_written` counter family is *not* a source: `host_`
//! there means "host writes vs. GC writes" (deterministic workload
//! accounting), not host wall-clock time.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::Diagnostic;
use crate::graph::{FnId, Workspace};
use crate::lexer::SourceView;

pub const RULE: &str = "determinism_taint";

/// Nondeterministic source tokens, matched against blanked code.
const SOURCES: &[&str] = &[
    "Instant::now",
    "SystemTime",
    ".elapsed(",
    "thread_rng",
    "from_entropy",
    "rand::random",
    "RandomState",
    "thread::current",
    "ThreadId",
];

/// Deterministic sinks: `(path suffix, impl qualifier, name, sink class)`.
///
/// The class names the artifact a flow would corrupt; it appears in the
/// diagnostic so the reader knows *what* would stop replaying.
const SINKS: &[(&str, Option<&str>, &str, &str)] = &[
    ("lsm/src/wal.rs", Some("LogWriter"), "add_record", "wal"),
    ("lsm/src/wal.rs", Some("LogWriter"), "emit", "wal"),
    (
        "lsm/src/table/builder.rs",
        Some("TableBuilder"),
        "add",
        "sstable",
    ),
    (
        "lsm/src/table/builder.rs",
        Some("TableBuilder"),
        "finish",
        "sstable",
    ),
    (
        "lsm/src/version.rs",
        Some("VersionEdit"),
        "encode",
        "manifest",
    ),
    (
        "lsm/src/version.rs",
        Some("VersionSet"),
        "log_and_apply",
        "manifest",
    ),
    (
        "lsm/src/version.rs",
        Some("VersionSet"),
        "write_snapshot_manifest",
        "manifest",
    ),
    (
        "ssd/src/clock.rs",
        Some("VirtualClock"),
        "advance",
        "virtual-clock",
    ),
    (
        "ssd/src/clock.rs",
        Some("VirtualClock"),
        "advance_micros",
        "virtual-clock",
    ),
    (
        "ssd/src/clock.rs",
        Some("VirtualClock"),
        "rewind_to",
        "virtual-clock",
    ),
    ("client/src/proto.rs", None, "encode_request", "wire"),
    ("client/src/proto.rs", None, "encode_response", "wire"),
    (
        "bench/src/ycsb_net.rs",
        Some("ClosedResult"),
        "json",
        "bench-json",
    ),
    (
        "bench/src/experiment.rs",
        None,
        "run_experiment",
        "bench-json",
    ),
];

/// Runs both analyses. `files` must be the same slice the workspace was
/// built from (indices align).
pub fn check(ws: &Workspace, files: &[(String, SourceView)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Locate the declared sinks. A missing sink means the function moved
    // or was renamed without updating this table — surface that loudly
    // rather than silently analysing nothing.
    let mut sink_class: BTreeMap<FnId, &'static str> = BTreeMap::new();
    for &(suffix, qual, name, class) in SINKS {
        match ws.find(suffix, qual, name) {
            Some(id) => {
                sink_class.insert(id, class);
            }
            None => {
                // Fixture runs only see a slice of the tree; only complain
                // when the sink's file is actually present.
                if files.iter().any(|(p, _)| p.ends_with(suffix)) {
                    diags.push(Diagnostic::error(
                        suffix,
                        1,
                        RULE,
                        format!(
                            "declared sink `{}{}{}` not found in {}",
                            qual.map(|q| format!("{q}::")).unwrap_or_default(),
                            "",
                            name,
                            suffix
                        ),
                        "update the SINKS table in rules/taint.rs to match the code",
                    ));
                }
            }
        }
    }

    // Resolved call edges, computed once.
    let edges: BTreeMap<FnId, Vec<FnId>> = ws.all_fns().map(|id| (id, ws.callees(id))).collect();

    // --- Analysis 1: sink purity -------------------------------------
    for (&sink, &class) in &sink_class {
        let mut members = BTreeSet::new();
        members.insert(sink);
        let mut queue: VecDeque<FnId> = edges[&sink].iter().copied().collect();
        while let Some(next) = queue.pop_front() {
            if members.insert(next) {
                queue.extend(edges[&next].iter().copied());
            }
        }
        for member in members {
            let item = ws.item(member);
            if item.is_test {
                continue;
            }
            let Some((open, close)) = item.body else {
                continue;
            };
            let view = &files[member.0].1;
            let body = &view.code[open..close.min(view.code.len())];
            for src in SOURCES {
                if let Some(at) = body.find(src) {
                    let line = view.line_of(open + at);
                    if view.is_suppressed(line, RULE) {
                        continue;
                    }
                    diags.push(Diagnostic::error(
                        ws.path(member),
                        line,
                        RULE,
                        format!(
                            "`{}` reaches deterministic sink `{}` ({} class) but uses source `{}`",
                            item.qualified(),
                            ws.item(sink).qualified(),
                            class,
                            src.trim_matches(['.', '(']),
                        ),
                        "derive the value from the virtual clock or the seeded RNG, \
                         or drop it before it reaches the sink",
                    ));
                }
            }
        }
    }

    // --- Analysis 2: tainted arguments -------------------------------
    // Functions whose *return value* is host-derived: they return
    // something and their body mentions a source (or calls another such
    // function). Fixpoint over the call graph.
    let mut tainted_ret: BTreeSet<FnId> = ws
        .all_fns()
        .filter(|&id| {
            let item = ws.item(id);
            if item.ret.is_empty() {
                return false;
            }
            item.body.is_some_and(|(open, close)| {
                let code = &files[id.0].1.code;
                let body = &code[open..close.min(code.len())];
                SOURCES.iter().any(|s| body.contains(s))
            })
        })
        .collect();
    loop {
        let grown: Vec<FnId> = ws
            .all_fns()
            .filter(|id| !tainted_ret.contains(id))
            .filter(|&id| {
                !ws.item(id).ret.is_empty() && edges[&id].iter().any(|c| tainted_ret.contains(c))
            })
            .collect();
        if grown.is_empty() {
            break;
        }
        tainted_ret.extend(grown);
    }

    // Functions that can reach a sink (including the sinks themselves):
    // reverse reachability over the resolved edges.
    let mut reaches_sink: BTreeSet<FnId> = sink_class.keys().copied().collect();
    let mut reverse: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
    for (&from, tos) in &edges {
        for &to in tos {
            reverse.entry(to).or_default().push(from);
        }
    }
    let mut queue: VecDeque<FnId> = reaches_sink.iter().copied().collect();
    while let Some(next) = queue.pop_front() {
        for &caller in reverse.get(&next).map(Vec::as_slice).unwrap_or(&[]) {
            if reaches_sink.insert(caller) {
                queue.push_back(caller);
            }
        }
    }
    // Which sink classes each sink-reaching function can hit, for the
    // diagnostic text.
    let classes_of = |id: FnId| -> String {
        let mut all = BTreeSet::new();
        if let Some(c) = sink_class.get(&id) {
            all.insert(*c);
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from(edges[&id].clone());
        while let Some(next) = queue.pop_front() {
            if seen.insert(next) {
                if let Some(c) = sink_class.get(&next) {
                    all.insert(*c);
                }
                queue.extend(edges[&next].iter().copied());
            }
        }
        all.into_iter().collect::<Vec<_>>().join(", ")
    };

    for id in ws.all_fns() {
        let item = ws.item(id);
        if item.is_test {
            continue;
        }
        let Some((open, close)) = item.body else {
            continue;
        };
        let view = &files[id.0].1;
        let code = &view.code;
        let body = &code[open..close.min(code.len())];
        let tainted = tainted_locals(body, |name| {
            ws.named(name).iter().any(|cand| tainted_ret.contains(cand))
        });
        if tainted.is_empty() {
            continue;
        }
        for call in &ws.calls[id.0][id.1] {
            let Some(target) = ws.resolve(id, call) else {
                continue;
            };
            if !reaches_sink.contains(&target) {
                continue;
            }
            // Argument text: from the opening paren after the name to its
            // matching close.
            let Some(args) = call_args(code, call.pos, close) else {
                continue;
            };
            let hit = tainted
                .iter()
                .find(|t| mentions_ident(args, t))
                .cloned()
                .or_else(|| {
                    SOURCES
                        .iter()
                        .find(|s| args.contains(*s))
                        .map(|s| s.trim_matches(['.', '(']).to_string())
                });
            let Some(hit) = hit else { continue };
            if view.is_suppressed(call.line, RULE) {
                continue;
            }
            diags.push(Diagnostic::error(
                ws.path(id),
                call.line,
                RULE,
                format!(
                    "host-derived value `{}` flows into `{}`, which reaches a \
                     deterministic sink ({})",
                    hit,
                    call.name,
                    classes_of(target),
                ),
                "replay-critical bytes must derive from the virtual clock / seeded \
                 RNG; if the flow is intentional metadata, annotate it with \
                 `// ldc-lint: allow(determinism_taint) — reason`",
            ));
        }
    }

    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Intraprocedural tainted-local inference: one forward pass over `let`
/// statements. `calls_tainted(name)` reports whether a called function's
/// return value is host-derived.
fn tainted_locals(body: &str, calls_tainted: impl Fn(&str) -> bool) -> Vec<String> {
    let mut tainted: Vec<String> = Vec::new();
    let bytes = body.as_bytes();
    for at in crate::lexer::token_positions(body, "let") {
        let mut i = at + 3;
        while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
            i += 1;
        }
        if body[i..].starts_with("mut ") {
            i += 4;
            while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
                i += 1;
            }
        }
        let name_start = i;
        while bytes
            .get(i)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            i += 1;
        }
        if i == name_start {
            continue; // destructuring — not tracked
        }
        let name = &body[name_start..i];
        // `let Some(x) = ..` / `let Foo { .. } = ..` patterns bind inner
        // names we don't model; skip rather than taint the constructor.
        let mut k = i;
        while bytes.get(k).is_some_and(|b| b.is_ascii_whitespace()) {
            k += 1;
        }
        if matches!(bytes.get(k), Some(b'(' | b'{')) {
            continue;
        }
        let Some(eq) = statement_eq(bytes, i) else {
            continue;
        };
        let rhs_end = statement_end(bytes, eq);
        let rhs = &body[eq..rhs_end];
        let is_tainted = SOURCES.iter().any(|s| rhs.contains(s))
            || tainted.iter().any(|t| mentions_ident(rhs, t))
            || called_names(rhs).iter().any(|n| calls_tainted(n));
        if is_tainted && !tainted.iter().any(|t| t == name) {
            tainted.push(name.to_string());
        }
    }
    tainted
}

/// Offset of the `=` that starts this `let`'s initializer, skipping a type
/// ascription. `None` for `let x;`.
fn statement_eq(bytes: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    let mut depth = 0i64;
    while i < bytes.len() {
        match bytes[i] {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' if i > 0 && (bytes[i - 1] == b'-' || bytes[i - 1] == b'=') => {}
            b'>' | b')' | b']' => depth -= 1,
            b'=' if depth == 0 && bytes.get(i + 1) != Some(&b'=') => return Some(i + 1),
            b';' | b'{' if depth == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Offset just past the initializer: the `;` at nesting depth zero.
fn statement_end(bytes: &[u8], from: usize) -> usize {
    let mut depth = 0i64;
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b';' if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Bare names called like `name(` within an expression (macros excluded).
fn called_names(expr: &str) -> Vec<String> {
    let bytes = expr.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        if bytes.get(i) == Some(&b'(') && bytes.get(start.wrapping_sub(1)) != Some(&b'!') {
            out.push(expr[start..i].to_string());
        }
    }
    out
}

/// Word-boundary search for an identifier inside `text`.
fn mentions_ident(text: &str, ident: &str) -> bool {
    !crate::lexer::token_positions(text, ident).is_empty()
}

/// Argument text of the call whose name starts at `pos` in `code`.
fn call_args(code: &str, pos: usize, limit: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut i = pos;
    while bytes
        .get(i)
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
    {
        i += 1;
    }
    while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
        i += 1;
    }
    if bytes.get(i) != Some(&b'(') {
        return None;
    }
    let mut depth = 0usize;
    let end = limit.min(bytes.len());
    for k in i..end {
        match bytes[k] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&code[i + 1..k]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<(String, SourceView)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), SourceView::new(s)))
            .collect();
        let ws = Workspace::build(&files);
        check(&ws, &files)
    }

    const CLOCK: &str = "pub struct VirtualClock;\nimpl VirtualClock {\n    pub fn advance(&self, d: u64) -> u64 { d }\n    pub fn advance_micros(&self, m: u64) -> u64 { m }\n    pub fn rewind_to(&self, t: u64) { let _ = t; }\n}\n";

    #[test]
    fn clean_flow_produces_no_findings() {
        let diags = run(&[
            ("crates/ssd/src/clock.rs", CLOCK),
            (
                "crates/lsm/src/io.rs",
                "fn charge(c: &VirtualClock) { let d = 5; c.advance(d); }\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn host_time_into_virtual_clock_is_flagged() {
        let diags = run(&[
            ("crates/ssd/src/clock.rs", CLOCK),
            (
                "crates/lsm/src/io.rs",
                "fn charge(c: &VirtualClock) {\n    let t0 = Instant::now();\n    let d = t0.elapsed().as_nanos() as u64;\n    c.advance(d);\n}\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("virtual-clock"), "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn taint_spreads_through_returning_helpers() {
        // helper() returns host time; the caller passes it onward through
        // an intermediate local into a sink-reaching wrapper.
        let diags = run(&[
            ("crates/ssd/src/clock.rs", CLOCK),
            (
                "crates/lsm/src/io.rs",
                "fn helper() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
                 fn wrapper(c: &VirtualClock, d: u64) { c.advance(d); }\n\
                 fn charge(c: &VirtualClock) {\n    let d = helper();\n    let e = d + 1;\n    wrapper(c, e);\n}\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`e`"), "{diags:?}");
    }

    #[test]
    fn impure_sink_body_is_flagged() {
        let diags = run(&[(
            "crates/client/src/proto.rs",
            "pub fn encode_request(id: u64) -> Vec<u8> {\n    let t = SystemTime::now();\n    let _ = t;\n    vec![]\n}\npub fn encode_response(id: u64) -> Vec<u8> { vec![] }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("uses source `SystemTime`"),
            "{diags:?}"
        );
    }

    #[test]
    fn allow_comment_suppresses_a_flow() {
        let diags = run(&[
            ("crates/ssd/src/clock.rs", CLOCK),
            (
                "crates/lsm/src/io.rs",
                "fn charge(c: &VirtualClock) {\n    let d = Instant::now().elapsed().as_nanos() as u64;\n    // ldc-lint: allow(determinism_taint) — test flow\n    c.advance(d);\n}\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_declared_sink_is_reported() {
        let diags = run(&[(
            "crates/client/src/proto.rs",
            "pub fn encode_request_v2(id: u64) -> Vec<u8> { vec![] }\n",
        )]);
        assert!(
            diags.iter().any(|d| d.message.contains("declared sink")),
            "{diags:?}"
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let diags = run(&[
            ("crates/ssd/src/clock.rs", CLOCK),
            (
                "crates/lsm/src/io.rs",
                "#[cfg(test)]\nmod tests {\n    fn charge(c: &VirtualClock) {\n        let d = Instant::now().elapsed().as_nanos() as u64;\n        c.advance(d);\n    }\n}\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
