// Fixture: none of this may be flagged by the determinism rule.
use std::collections::HashMap;
use std::time::Duration; // plain value type: allowed

struct Stats {
    per_level: HashMap<u32, u64>,
}

fn total(stats: &Stats) -> u64 {
    // Order-insensitive consumer: allowed.
    stats.per_level.values().sum()
}

fn dump_sorted(stats: &Stats) {
    // Sorted before output: allowed.
    let mut rows: Vec<_> = stats.per_level.iter().collect();
    rows.sort();
    for (level, bytes) in rows {
        println!("L{level}: {bytes}");
    }
}

fn fixture_clock() -> u64 {
    // ldc-lint: allow(determinism) — replay fixture needs a pinned epoch
    let t = Instant::now();
    let _ = Duration::from_nanos(1);
    t.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_wall_clock() {
        let _ = std::time::Instant::now();
    }
}
