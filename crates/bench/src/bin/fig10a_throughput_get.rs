//! Fig 10(a) — total throughput on point-lookup mixes, UDC vs LDC.
//!
//! Paper: LDC beats UDC by 78.0% (WO), 73.7% (WH), 80.2% (RWB), 16% (RH)
//! and is on par for RO; 56.7% average across WH/RWB/RH.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(50_000);
    let specs = [
        WorkloadSpec::write_only(args.ops),
        WorkloadSpec::write_heavy(args.ops),
        WorkloadSpec::read_write_balanced(args.ops),
        WorkloadSpec::read_heavy(args.ops),
        WorkloadSpec::read_only(args.ops),
    ];
    let paper = [78.0, 73.7, 80.2, 16.0, 0.0];
    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for (spec, paper_gain) in specs.into_iter().zip(paper) {
        let spec = spec.with_codec(args.codec()).with_seed(args.seed);
        let (udc, ldc) = run_both(&paper_scaled_options(), &SsdConfig::default(), &spec);
        let gain = 100.0 * (ldc.throughput() / udc.throughput() - 1.0);
        if spec.name != "WO" && spec.name != "RO" {
            improvements.push(gain);
        }
        rows.push(vec![
            spec.name.clone(),
            format!("{:.0}", udc.throughput()),
            format!("{:.0}", ldc.throughput()),
            format!("{gain:+.1}%"),
            format!("{paper_gain:+.1}%"),
        ]);
    }
    print_table(
        args.csv,
        &format!("Fig 10a: throughput (ops/s), {} ops per workload", args.ops),
        &["workload", "UDC", "LDC", "LDC gain", "paper gain"],
        &rows,
    );
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!(
        "\nAverage LDC gain over WH/RWB/RH: {avg:+.1}% (paper: +56.7%). \
         Expectation: big wins on write-containing mixes, parity on RO."
    );
}
