//! Workload specifications matching the paper's Table III.

use crate::distribution::Distribution;
use crate::keys::KeyCodec;

/// Kind of read operation in a mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// Point lookups (GET).
    Point,
    /// Range queries covering ~100 key-value pairs (SCAN).
    Range,
}

/// A benchmark workload: an operation mix over a key space.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Human-readable name ("WO", "RWB", "SCN-WH", ...).
    pub name: String,
    /// Number of measured operations.
    pub ops: u64,
    /// Fraction of operations that are writes (random insert/update).
    pub write_ratio: f64,
    /// What the non-write operations are.
    pub read_kind: ReadKind,
    /// Average range-query length (paper: 100).
    pub scan_length: usize,
    /// Number of distinct keys addressed.
    pub key_space: u64,
    /// Keys inserted (unmeasured) before the run so reads can hit.
    pub preload: u64,
    /// Fraction of operations that are read-modify-writes (YCSB F). An
    /// RMW reads the key, then writes back an updated value; drivers that
    /// cannot express RMW may treat these as writes. Disjoint from
    /// `write_ratio`: op classes are drawn as write / rmw / read.
    pub rmw_ratio: f64,
    /// Key-choice distribution for reads and overwrites.
    pub distribution: Distribution,
    /// Key/value shape.
    pub codec: KeyCodec,
    /// RNG seed for the op stream.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Base spec: uniform distribution, paper key/value sizes, key space
    /// sized so that roughly half the inserts are overwrites.
    fn base(name: &str, ops: u64, write_ratio: f64, read_kind: ReadKind) -> Self {
        let key_space = (ops / 2).max(1000);
        WorkloadSpec {
            name: name.to_string(),
            ops,
            write_ratio,
            read_kind,
            scan_length: 100,
            key_space,
            // Workloads with reads need data in place; write-only starts
            // cold like the paper's insertion benchmarks.
            preload: if write_ratio >= 1.0 { 0 } else { key_space },
            rmw_ratio: 0.0,
            distribution: Distribution::Uniform,
            codec: KeyCodec::paper_default(),
            seed: 0x5eed,
        }
    }

    /// WO: 100% writes.
    pub fn write_only(ops: u64) -> Self {
        Self::base("WO", ops, 1.0, ReadKind::Point)
    }

    /// WH: 70% writes, 30% point lookups.
    pub fn write_heavy(ops: u64) -> Self {
        Self::base("WH", ops, 0.7, ReadKind::Point)
    }

    /// RWB: 50% writes, 50% point lookups.
    pub fn read_write_balanced(ops: u64) -> Self {
        Self::base("RWB", ops, 0.5, ReadKind::Point)
    }

    /// RH: 30% writes, 70% point lookups.
    pub fn read_heavy(ops: u64) -> Self {
        Self::base("RH", ops, 0.3, ReadKind::Point)
    }

    /// RO: 100% point lookups.
    pub fn read_only(ops: u64) -> Self {
        Self::base("RO", ops, 0.0, ReadKind::Point)
    }

    /// SCN-WH: 70% writes, 30% range queries.
    pub fn scan_write_heavy(ops: u64) -> Self {
        Self::base("SCN-WH", ops, 0.7, ReadKind::Range)
    }

    /// SCN-RWB: 50% writes, 50% range queries.
    pub fn scan_read_write_balanced(ops: u64) -> Self {
        Self::base("SCN-RWB", ops, 0.5, ReadKind::Range)
    }

    /// SCN-RH: 30% writes, 70% range queries.
    pub fn scan_read_heavy(ops: u64) -> Self {
        Self::base("SCN-RH", ops, 0.3, ReadKind::Range)
    }

    /// YCSB core workload A: 50% reads / 50% updates, zipfian.
    pub fn ycsb_a(ops: u64) -> Self {
        Self::base("YCSB-A", ops, 0.5, ReadKind::Point)
            .with_distribution(Distribution::Zipfian { theta: 0.99 })
    }

    /// YCSB core workload B: 95% reads / 5% updates, zipfian.
    pub fn ycsb_b(ops: u64) -> Self {
        Self::base("YCSB-B", ops, 0.05, ReadKind::Point)
            .with_distribution(Distribution::Zipfian { theta: 0.99 })
    }

    /// YCSB core workload C: read-only, zipfian.
    pub fn ycsb_c(ops: u64) -> Self {
        Self::base("YCSB-C", ops, 0.0, ReadKind::Point)
            .with_distribution(Distribution::Zipfian { theta: 0.99 })
    }

    /// YCSB core workload D: 95% reads of recent items / 5% inserts.
    pub fn ycsb_d(ops: u64) -> Self {
        Self::base("YCSB-D", ops, 0.05, ReadKind::Point).with_distribution(Distribution::Latest)
    }

    /// YCSB core workload E: 95% short scans / 5% inserts, zipfian.
    pub fn ycsb_e(ops: u64) -> Self {
        let mut spec = Self::base("YCSB-E", ops, 0.05, ReadKind::Range)
            .with_distribution(Distribution::Zipfian { theta: 0.99 });
        spec.scan_length = 50;
        spec
    }

    /// YCSB core workload F: 50% reads / 50% read-modify-writes, zipfian.
    pub fn ycsb_f(ops: u64) -> Self {
        let mut spec = Self::base("YCSB-F", ops, 0.0, ReadKind::Point)
            .with_distribution(Distribution::Zipfian { theta: 0.99 });
        spec.rmw_ratio = 0.5;
        spec
    }

    /// The six YCSB core workloads A–F at `ops` operations each.
    pub fn ycsb_all(ops: u64) -> Vec<WorkloadSpec> {
        vec![
            Self::ycsb_a(ops),
            Self::ycsb_b(ops),
            Self::ycsb_c(ops),
            Self::ycsb_d(ops),
            Self::ycsb_e(ops),
            Self::ycsb_f(ops),
        ]
    }

    /// All eight workloads of Table III at `ops` operations each.
    pub fn table_iii(ops: u64) -> Vec<WorkloadSpec> {
        vec![
            Self::write_only(ops),
            Self::write_heavy(ops),
            Self::read_write_balanced(ops),
            Self::read_heavy(ops),
            Self::read_only(ops),
            Self::scan_write_heavy(ops),
            Self::scan_read_write_balanced(ops),
            Self::scan_read_heavy(ops),
        ]
    }

    /// Replaces the distribution (Fig 11's Zipf variants).
    pub fn with_distribution(mut self, distribution: Distribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces key/value shape (for scaled-down experiment runs).
    pub fn with_codec(mut self, codec: KeyCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Replaces the key-space size (and the matching preload).
    pub fn with_key_space(mut self, key_space: u64) -> Self {
        self.key_space = key_space.max(1);
        if self.preload > 0 {
            self.preload = self.key_space;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_matches_paper_mixes() {
        let all = WorkloadSpec::table_iii(1000);
        let by_name: Vec<(&str, f64, ReadKind)> = all
            .iter()
            .map(|w| (w.name.as_str(), w.write_ratio, w.read_kind))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("WO", 1.0, ReadKind::Point),
                ("WH", 0.7, ReadKind::Point),
                ("RWB", 0.5, ReadKind::Point),
                ("RH", 0.3, ReadKind::Point),
                ("RO", 0.0, ReadKind::Point),
                ("SCN-WH", 0.7, ReadKind::Range),
                ("SCN-RWB", 0.5, ReadKind::Range),
                ("SCN-RH", 0.3, ReadKind::Range),
            ]
        );
        for w in &all {
            assert_eq!(w.scan_length, 100);
            assert_eq!(w.codec.key_bytes(), 16);
            assert_eq!(w.codec.value_bytes(), 1024);
        }
    }

    #[test]
    fn write_only_runs_cold_others_preload() {
        assert_eq!(WorkloadSpec::write_only(1000).preload, 0);
        assert!(WorkloadSpec::read_only(1000).preload > 0);
        assert!(WorkloadSpec::read_write_balanced(1000).preload > 0);
    }

    #[test]
    fn ycsb_core_workloads_match_their_specs() {
        let a = WorkloadSpec::ycsb_a(1000);
        assert_eq!(a.write_ratio, 0.5);
        assert!(matches!(a.distribution, Distribution::Zipfian { .. }));
        let b = WorkloadSpec::ycsb_b(1000);
        assert_eq!(b.write_ratio, 0.05);
        let c = WorkloadSpec::ycsb_c(1000);
        assert_eq!(c.write_ratio, 0.0);
        assert!(c.preload > 0);
        let d = WorkloadSpec::ycsb_d(1000);
        assert!(matches!(d.distribution, Distribution::Latest));
        let e = WorkloadSpec::ycsb_e(1000);
        assert_eq!(e.read_kind, ReadKind::Range);
        assert_eq!(e.scan_length, 50);
        let f = WorkloadSpec::ycsb_f(1000);
        assert_eq!(f.rmw_ratio, 0.5);
        assert_eq!(f.write_ratio, 0.0);
        assert!(f.preload > 0);
        assert!(matches!(f.distribution, Distribution::Zipfian { .. }));
        let all = WorkloadSpec::ycsb_all(1000);
        assert_eq!(
            all.iter().map(|w| w.name.as_str()).collect::<Vec<_>>(),
            vec!["YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D", "YCSB-E", "YCSB-F"]
        );
    }

    #[test]
    fn builders_override_fields() {
        let w = WorkloadSpec::read_only(1000)
            .with_distribution(Distribution::Zipfian { theta: 2.0 })
            .with_key_space(5000)
            .with_seed(9);
        assert_eq!(w.key_space, 5000);
        assert_eq!(w.preload, 5000);
        assert_eq!(w.seed, 9);
        assert!(matches!(w.distribution, Distribution::Zipfian { .. }));
    }
}
