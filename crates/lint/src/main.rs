//! CLI for `ldc-lint`.
//!
//! ```text
//! cargo run -p ldc-lint -- --workspace            # human-readable, exit 1 on errors
//! cargo run -p ldc-lint -- --workspace --json     # one JSON object per line
//! cargo run -p ldc-lint -- --workspace --update-baseline
//! cargo run -p ldc-lint -- --root /path/to/repo
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ldc_lint::{find_workspace_root, lint_workspace, Severity, BASELINE_PATH};

fn main() -> ExitCode {
    let mut json = false;
    let mut update_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {} // the only mode; accepted for clarity
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: ldc-lint [--workspace] [--json] [--update-baseline] [--root <dir>]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage("could not locate the workspace root (try --root)"),
    };

    let report = match lint_workspace(&root, update_baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ldc-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(text) = &report.new_baseline {
        let path = root.join(BASELINE_PATH);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("ldc-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("ldc-lint: baseline regenerated at {BASELINE_PATH}");
        return ExitCode::SUCCESS;
    }

    let mut errors = 0usize;
    for d in &report.diagnostics {
        if d.severity == Severity::Error {
            errors += 1;
        }
        if json {
            println!("{}", d.to_json());
        } else {
            println!("{}", d.render());
        }
    }
    if !json {
        eprintln!(
            "ldc-lint: {} file(s) scanned, {} finding(s), {} error(s)",
            report.files_scanned,
            report.diagnostics.len(),
            errors
        );
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ldc-lint: {msg}");
    eprintln!("usage: ldc-lint [--workspace] [--json] [--update-baseline] [--root <dir>]");
    ExitCode::FAILURE
}
