//! Block cache and table cache.
//!
//! An LRU cache of decoded data blocks keyed by `(file number, offset)`,
//! bounded by a byte budget. The paper assumes "the cached indexes and Bloom
//! filters of active SSTables" avoid most slice-read I/O (§III-B3); in this
//! engine, index and filter blocks are pinned per open table (charged
//! against the same byte budget) while data blocks flow through the cache.
//! Hit/miss counters feed Fig 13.
//!
//! The cache is split into a power-of-two number of independently locked
//! shards keyed by a hash of the block key, so concurrent readers on
//! different shards never contend. Lookups hand out `Arc<Block>` handles:
//! block bytes are decoded (restart array parsed, CRC checked) exactly once
//! and never copied per read — values are returned as [`bytes::Bytes`]
//! slices pinning the block's backing buffer.
//!
//! [`TableCache`] bounds the set of open SSTable handles the same way the
//! old per-`Db` open-table map did, but lives in the cache layer so the
//! pinned index/filter bytes of every open table are charged to the block
//! cache budget instead of being invisible free memory (the old
//! double-accounting bug: table handles held decoded index blocks outside
//! the cache's charge).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ldc_obs::lockcheck::Mutex;

use crate::block::Block;
use crate::error::Result;
use crate::table::Table;

/// Cache key: file number + block offset within the file.
pub type BlockKey = (u64, u64);

/// Default shard count (power of two). Small enough that per-shard LRU
/// stays meaningful at test capacities, large enough that eight reader
/// threads rarely collide on one lock.
pub const DEFAULT_SHARD_COUNT: usize = 8;

/// Mixes a block key into a shard index. SplitMix64 finalizer: cheap,
/// deterministic across processes (no `RandomState`), and good avalanche
/// so consecutive offsets in one file spread across shards.
fn shard_hash(key: BlockKey) -> u64 {
    let mut z = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key.1;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct CacheEntry {
    block: Arc<Block>,
    tick: u64,
}

struct ShardInner {
    map: HashMap<BlockKey, CacheEntry>,
    lru: BTreeMap<u64, BlockKey>,
    used_bytes: usize,
    /// Bytes charged by open tables for their pinned index/filter blocks.
    /// Never evicted here — released when the table handle is dropped.
    pinned_bytes: usize,
    next_tick: u64,
}

struct Shard {
    inner: Mutex<ShardInner>,
}

impl Shard {
    fn new() -> Self {
        Self {
            inner: Mutex::new(
                "lsm/cache::inner",
                ShardInner {
                    map: HashMap::new(),
                    lru: BTreeMap::new(),
                    used_bytes: 0,
                    pinned_bytes: 0,
                    next_tick: 0,
                },
            ),
        }
    }
}

/// Byte-bounded sharded LRU cache of data blocks.
pub struct BlockCache {
    capacity_bytes: usize,
    /// Per-shard byte budget (`capacity_bytes / shards.len()`).
    shard_capacity: usize,
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard index is `hash & mask`.
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Point-in-time block-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to read the block from the device (Fig 13's
    /// y-axis).
    pub misses: u64,
    /// Blocks dropped under capacity pressure (`evict_file` drops are not
    /// counted — those blocks were deleted, not squeezed out).
    pub evictions: u64,
}

impl CacheCounters {
    /// Hits as a fraction of all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl BlockCache {
    /// Creates a cache holding at most `capacity_bytes` of block data,
    /// split across [`DEFAULT_SHARD_COUNT`] shards.
    /// A capacity of 0 disables caching (every lookup is a miss).
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_shards(capacity_bytes, DEFAULT_SHARD_COUNT)
    }

    /// Creates a cache with an explicit shard count (rounded up to a power
    /// of two, minimum 1).
    pub fn with_shards(capacity_bytes: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            capacity_bytes,
            shard_capacity: capacity_bytes / n,
            shards: (0..n).map(|_| Shard::new()).collect(),
            mask: (n - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: BlockKey) -> &Shard {
        // ldc-lint: allow(panic_safety) — index is masked to the power-of-two shard count
        &self.shards[(shard_hash(key) & self.mask) as usize]
    }

    /// Fetches the block, calling `load` on a miss and caching the result.
    /// The returned handle shares the decoded block — no bytes are copied.
    pub fn get_or_load(
        &self,
        key: BlockKey,
        load: impl FnOnce() -> Result<Block>,
    ) -> Result<Arc<Block>> {
        if self.capacity_bytes > 0 {
            let shard = self.shard(key);
            let mut inner = shard.inner.lock();
            let tick = inner.next_tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                let old_tick = entry.tick;
                entry.tick = tick;
                let block = Arc::clone(&entry.block);
                inner.next_tick += 1;
                inner.lru.remove(&old_tick);
                inner.lru.insert(tick, key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(block);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Load outside the shard lock: a slow device read must not block
        // hits on sibling blocks. Two racing loaders may both read the
        // block; last insert wins, both handles stay valid.
        let block = Arc::new(load()?);
        if self.capacity_bytes > 0 {
            let shard = self.shard(key);
            let mut inner = shard.inner.lock();
            let tick = inner.next_tick;
            inner.next_tick += 1;
            if let Some(prev) = inner.map.remove(&key) {
                inner.lru.remove(&prev.tick);
                inner.used_bytes -= prev.block.size();
            }
            inner.used_bytes += block.size();
            inner.map.insert(
                key,
                CacheEntry {
                    block: Arc::clone(&block),
                    tick,
                },
            );
            inner.lru.insert(tick, key);
            while inner.used_bytes + inner.pinned_bytes > self.shard_capacity && inner.map.len() > 1
            {
                let Some((&oldest_tick, &oldest_key)) = inner.lru.iter().next() else {
                    break;
                };
                inner.lru.remove(&oldest_tick);
                if let Some(evicted) = inner.map.remove(&oldest_key) {
                    inner.used_bytes -= evicted.block.size();
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(block)
    }

    /// Drops all blocks belonging to `file_number` (called on file delete).
    pub fn evict_file(&self, file_number: u64) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            let mut doomed: Vec<(u64, BlockKey)> = inner
                .map
                .iter()
                .filter(|((f, _), _)| *f == file_number)
                .map(|(k, e)| (e.tick, *k))
                .collect();
            doomed.sort_unstable();
            for (tick, key) in doomed {
                inner.lru.remove(&tick);
                if let Some(e) = inner.map.remove(&key) {
                    inner.used_bytes -= e.block.size();
                }
            }
        }
    }

    /// Charges `bytes` of pinned (unevictable) data against the budget —
    /// the decoded index block and Bloom filter of an open table. Pinned
    /// bytes squeeze data blocks out of their shard but are never evicted
    /// themselves; release with [`BlockCache::release_pinned`].
    pub fn charge_pinned(&self, file_number: u64, bytes: usize) {
        if self.capacity_bytes == 0 {
            return;
        }
        let shard = self.shard((file_number, u64::MAX));
        let mut inner = shard.inner.lock();
        inner.pinned_bytes += bytes;
        while inner.used_bytes + inner.pinned_bytes > self.shard_capacity && inner.map.len() > 1 {
            let Some((&oldest_tick, &oldest_key)) = inner.lru.iter().next() else {
                break;
            };
            inner.lru.remove(&oldest_tick);
            if let Some(evicted) = inner.map.remove(&oldest_key) {
                inner.used_bytes -= evicted.block.size();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Releases a pinned-byte charge made by [`BlockCache::charge_pinned`].
    pub fn release_pinned(&self, file_number: u64, bytes: usize) {
        if self.capacity_bytes == 0 {
            return;
        }
        let shard = self.shard((file_number, u64::MAX));
        let mut inner = shard.inner.lock();
        inner.pinned_bytes = inner.pinned_bytes.saturating_sub(bytes);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far — each miss is one data-block read from the
    /// device (Fig 13's y-axis).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Blocks evicted under capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// All counters as one snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
        }
    }

    /// Bytes currently cached (data blocks plus pinned index/filter
    /// charges), summed across shards.
    pub fn used_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let inner = s.inner.lock();
                inner.used_bytes + inner.pinned_bytes
            })
            .sum()
    }

    /// Pinned (index/filter) bytes currently charged, summed across shards.
    pub fn pinned_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().pinned_bytes)
            .sum()
    }
}

struct TableEntry {
    table: Arc<Table>,
    tick: u64,
}

struct TableCacheInner {
    entries: HashMap<u64, TableEntry>,
    lru: BTreeMap<u64, u64>,
    next_tick: u64,
}

/// Entry-bounded LRU cache of open SSTable handles. Replaces the old
/// per-`Db` `Mutex<HashMap<u64, (Arc<Table>, u64)>>` open-table map; each
/// resident table's decoded index block and Bloom filter are charged to the
/// shared [`BlockCache`] budget as pinned bytes, so "open table" memory and
/// "cached block" memory come out of one pool.
pub struct TableCache {
    capacity: usize,
    block_cache: Arc<BlockCache>,
    map: Mutex<TableCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TableCache {
    /// Creates a table cache bounded to `capacity` open handles (minimum
    /// 1), charging pinned bytes to `block_cache`.
    pub fn new(capacity: usize, block_cache: Arc<BlockCache>) -> Self {
        Self {
            capacity: capacity.max(1),
            block_cache,
            map: Mutex::new(
                "lsm/cache::map",
                TableCacheInner {
                    entries: HashMap::new(),
                    lru: BTreeMap::new(),
                    next_tick: 0,
                },
            ),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fetches the open handle for `file_number`, calling `open` on a miss.
    pub fn get_or_open(
        &self,
        file_number: u64,
        open: impl FnOnce() -> Result<Arc<Table>>,
    ) -> Result<Arc<Table>> {
        {
            let mut inner = self.map.lock();
            let tick = inner.next_tick;
            if let Some(entry) = inner.entries.get_mut(&file_number) {
                let old_tick = entry.tick;
                entry.tick = tick;
                let table = Arc::clone(&entry.table);
                inner.next_tick += 1;
                inner.lru.remove(&old_tick);
                inner.lru.insert(tick, file_number);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(table);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Open outside the map lock (footer/index/filter reads hit the
        // device). Two racing opens resolve to whichever inserted first.
        let table = open()?;
        let mut inner = self.map.lock();
        let tick = inner.next_tick;
        if let Some(entry) = inner.entries.get_mut(&file_number) {
            let old_tick = entry.tick;
            entry.tick = tick;
            let existing = Arc::clone(&entry.table);
            inner.next_tick += 1;
            inner.lru.remove(&old_tick);
            inner.lru.insert(tick, file_number);
            return Ok(existing);
        }
        inner.next_tick += 1;
        self.block_cache
            .charge_pinned(file_number, table.pinned_bytes());
        inner.entries.insert(
            file_number,
            TableEntry {
                table: Arc::clone(&table),
                tick,
            },
        );
        inner.lru.insert(tick, file_number);
        while inner.entries.len() > self.capacity {
            let Some((&oldest_tick, &oldest_file)) = inner.lru.iter().next() else {
                break;
            };
            inner.lru.remove(&oldest_tick);
            if let Some(e) = inner.entries.remove(&oldest_file) {
                self.block_cache
                    .release_pinned(oldest_file, e.table.pinned_bytes());
            }
        }
        Ok(table)
    }

    /// Drops the handle for a deleted file (its blocks are evicted by the
    /// caller via [`BlockCache::evict_file`]).
    pub fn remove(&self, file_number: u64) {
        let mut inner = self.map.lock();
        if let Some(e) = inner.entries.remove(&file_number) {
            inner.lru.remove(&e.tick);
            self.block_cache
                .release_pinned(file_number, e.table.pinned_bytes());
        }
    }

    /// Open handles currently resident.
    pub fn len(&self) -> usize {
        self.map.lock().entries.len()
    }

    /// True when no handles are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Table-handle cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Table-handle cache misses (each one re-read footer+index+filter).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("shards", &self.shards.len())
            .field("counters", &self.counters())
            .finish()
    }
}

impl std::fmt::Debug for TableCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use crate::types::{encode_internal_key, ValueType};
    use bytes::Bytes;

    fn make_block(tag: u8, bytes: usize) -> Block {
        let mut b = BlockBuilder::new(16);
        let key = encode_internal_key(&[tag], 1, ValueType::Value);
        b.add(&key, &vec![tag; bytes]);
        Block::new(Bytes::from(b.finish())).unwrap()
    }

    #[test]
    fn caches_loaded_blocks() {
        let cache = BlockCache::new(1 << 20);
        let mut loads = 0;
        for _ in 0..3 {
            cache
                .get_or_load((1, 0), || {
                    loads += 1;
                    Ok(make_block(1, 100))
                })
                .unwrap();
        }
        assert_eq!(loads, 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert!(cache.used_bytes() > 0);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let cache = BlockCache::new(0);
        for _ in 0..3 {
            cache.get_or_load((1, 0), || Ok(make_block(1, 10))).unwrap();
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn evicts_least_recently_used_under_pressure() {
        // Single shard so the LRU order is global; each block ~1000 bytes,
        // capacity for ~3.
        let cache = BlockCache::with_shards(3200, 1);
        for i in 0..3u8 {
            cache
                .get_or_load((i as u64, 0), || Ok(make_block(i, 1000)))
                .unwrap();
        }
        // Touch block 0 so block 1 is the LRU.
        cache.get_or_load((0, 0), || panic!("should hit")).unwrap();
        // Insert block 3, evicting block 1.
        cache
            .get_or_load((3, 0), || Ok(make_block(3, 1000)))
            .unwrap();
        let miss_before = cache.misses();
        cache.get_or_load((0, 0), || panic!("0 evicted")).unwrap();
        assert_eq!(cache.misses(), miss_before);
        cache
            .get_or_load((1, 0), || Ok(make_block(1, 1000)))
            .unwrap();
        assert_eq!(
            cache.misses(),
            miss_before + 1,
            "1 should have been evicted"
        );
        let counters = cache.counters();
        assert!(
            counters.evictions >= 1,
            "capacity evictions must be counted"
        );
        assert_eq!(counters.hits, cache.hits());
        assert_eq!(counters.misses, cache.misses());
        assert!(counters.hit_rate() > 0.0 && counters.hit_rate() < 1.0);
    }

    #[test]
    fn evict_file_is_not_a_capacity_eviction() {
        let cache = BlockCache::new(1 << 20);
        cache.get_or_load((7, 0), || Ok(make_block(1, 10))).unwrap();
        cache.evict_file(7);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }

    #[test]
    fn evict_file_drops_all_its_blocks() {
        let cache = BlockCache::new(1 << 20);
        cache.get_or_load((7, 0), || Ok(make_block(1, 10))).unwrap();
        cache
            .get_or_load((7, 100), || Ok(make_block(2, 10)))
            .unwrap();
        cache.get_or_load((8, 0), || Ok(make_block(3, 10))).unwrap();
        cache.evict_file(7);
        let misses = cache.misses();
        cache.get_or_load((8, 0), || panic!("should hit")).unwrap();
        cache.get_or_load((7, 0), || Ok(make_block(1, 10))).unwrap();
        assert_eq!(cache.misses(), misses + 1);
    }

    #[test]
    fn shards_are_a_power_of_two_and_spread_keys() {
        let cache = BlockCache::with_shards(1 << 20, 6);
        assert_eq!(cache.shard_count(), 8);
        // Blocks from many files must not all land in one shard.
        let mut seen = std::collections::BTreeSet::new();
        for f in 0..64u64 {
            seen.insert(shard_hash((f, 0)) & cache.mask);
        }
        assert!(seen.len() > 1, "hash must spread files across shards");
        // Same key always maps to the same shard (stability).
        assert_eq!(shard_hash((3, 7)), shard_hash((3, 7)));
    }

    #[test]
    fn zero_copy_handles_share_one_decode() {
        let cache = BlockCache::new(1 << 20);
        let a = cache.get_or_load((1, 0), || Ok(make_block(1, 64))).unwrap();
        let b = cache.get_or_load((1, 0), || panic!("hit")).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits must return the same Arc<Block>");
    }

    #[test]
    fn pinned_bytes_squeeze_data_blocks() {
        let cache = BlockCache::with_shards(2048, 1);
        cache
            .get_or_load((1, 0), || Ok(make_block(1, 900)))
            .unwrap();
        cache
            .get_or_load((2, 0), || Ok(make_block(2, 900)))
            .unwrap();
        assert_eq!(cache.evictions(), 0);
        // Pinning a large index charge forces data blocks out (down to the
        // keep-one floor).
        cache.charge_pinned(9, 1800);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.pinned_bytes(), 1800);
        cache.release_pinned(9, 1800);
        assert_eq!(cache.pinned_bytes(), 0);
    }
}
