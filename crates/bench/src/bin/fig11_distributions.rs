//! Fig 11 — uniform vs Zipf distributions, UDC vs LDC.
//!
//! Paper: both systems speed up as the Zipf constant grows (hotter caches,
//! more concentrated compaction), and LDC's advantage widens — +38.7% under
//! uniform up to +67.3% under Zipf-5 — because concentrated writes reach
//! the SliceLink threshold faster.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(40_000);
    let variants: Vec<(&str, Distribution)> = vec![
        ("uniform", Distribution::Uniform),
        ("zipf-1", Distribution::Zipfian { theta: 1.0 }),
        ("zipf-2", Distribution::Zipfian { theta: 2.0 }),
        ("zipf-5", Distribution::Zipfian { theta: 5.0 }),
    ];
    let paper = [38.7, f64::NAN, f64::NAN, 67.3];
    let mut rows = Vec::new();
    for ((label, dist), paper_gain) in variants.into_iter().zip(paper) {
        let spec = WorkloadSpec::read_write_balanced(args.ops)
            .with_codec(args.codec())
            .with_seed(args.seed)
            .with_distribution(dist);
        let (udc, ldc) = run_both(&paper_scaled_options(), &SsdConfig::default(), &spec);
        let gain = 100.0 * (ldc.throughput() / udc.throughput() - 1.0);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", udc.throughput()),
            format!("{:.0}", ldc.throughput()),
            format!("{gain:+.1}%"),
            if paper_gain.is_nan() {
                "-".into()
            } else {
                format!("{paper_gain:+.1}%")
            },
        ]);
    }
    print_table(
        args.csv,
        &format!(
            "Fig 11: RWB throughput by key distribution, {} ops",
            args.ops
        ),
        &[
            "distribution",
            "UDC ops/s",
            "LDC ops/s",
            "LDC gain",
            "paper gain",
        ],
        &rows,
    );
    println!(
        "\nExpectation: throughput rises with skew for both systems, and \
         LDC's relative gain grows with the Zipf constant."
    );
}
