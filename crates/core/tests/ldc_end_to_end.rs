//! End-to-end behaviour of the LDC mechanism under real write pressure:
//! link/merge lifecycles, read correctness through slices, recovery of the
//! frozen region, and the headline I/O comparison against UDC.

use std::sync::Arc;

use ldc_core::{LdcDb, LdcPolicy};
use ldc_lsm::compaction::CompactionPolicy;
use ldc_lsm::{Options, WriteBatch};
use ldc_ssd::{MemStorage, SsdConfig, SsdDevice, StorageBackend};

fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
    // Spread keys over the space so files overlap like a hashed workload.
    let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (
        format!("key{h:016x}").into_bytes(),
        format!("value-{i:08}-{}", "x".repeat(64)).into_bytes(),
    )
}

fn ldc_db() -> LdcDb {
    LdcDb::builder()
        .options(Options::small_for_tests())
        .build()
        .unwrap()
}

#[test]
fn ldc_store_serves_reads_after_heavy_writes() {
    let db = ldc_db();
    let n = 5000u64;
    for i in 0..n {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    let stats = db.stats();
    assert!(stats.links > 0, "link phase never ran: {stats:?}");
    assert!(stats.ldc_merges > 0, "merge phase never ran: {stats:?}");
    assert_eq!(stats.merges, 0, "LDC must not run UDC merges");
    for i in (0..n).step_by(131) {
        let (k, v) = kv(i);
        assert_eq!(db.get(&k).unwrap(), Some(v), "key {i} lost");
    }
    db.engine_ref().version().check_invariants().unwrap();
}

#[test]
fn frozen_region_appears_and_drains() {
    let db = ldc_db();
    let mut saw_frozen = false;
    for i in 0..8000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
        if db.engine_ref().version().frozen_files() > 0 {
            saw_frozen = true;
        }
    }
    assert!(saw_frozen, "frozen region never materialized");
    let stats = db.stats();
    // Every link freezes one file; merges reclaim them once drained.
    assert!(stats.ldc_merges > 0);
    let v = db.engine_ref().version();
    // All remaining frozen files are still referenced.
    for frozen in v.frozen.values() {
        assert!(frozen.refcount > 0, "unreferenced frozen file survived");
    }
}

#[test]
fn overwrites_and_deletes_resolve_through_slices() {
    let db = ldc_db();
    // Two full passes over the same keys, then deletes of half of them,
    // with enough churn that many lookups must travel through slices.
    for round in 0..2u64 {
        for i in 0..2500u64 {
            let (k, _) = kv(i);
            db.put(&k, format!("v{round}").as_bytes()).unwrap();
        }
    }
    for i in (0..2500u64).step_by(2) {
        let (k, _) = kv(i);
        db.delete(&k).unwrap();
    }
    // More pressure so tombstones sink through links/merges.
    for i in 10_000..13_000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    for i in (0..2500u64).step_by(97) {
        let (k, _) = kv(i);
        let got = db.get(&k).unwrap();
        if i % 2 == 0 {
            assert_eq!(got, None, "deleted key {i} resurrected");
        } else {
            assert_eq!(got, Some(b"v1".to_vec()), "key {i} stale");
        }
    }
}

#[test]
fn scans_merge_slice_data_correctly() {
    // Sequential keys make level files and slices overlap predictably.
    let db = ldc_db();
    let n = 6000u64;
    for i in 0..n {
        db.put(format!("key{i:08}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    assert!(db.stats().links > 0);
    let results = db.scan(b"key00002000", 200).unwrap();
    assert_eq!(results.len(), 200);
    for (j, (k, v)) in results.iter().enumerate() {
        assert_eq!(k, format!("key{:08}", 2000 + j).as_bytes());
        assert_eq!(v, format!("v{}", 2000 + j).as_bytes());
    }
}

#[test]
fn scan_sees_newest_version_through_slices() {
    let db = ldc_db();
    for round in 0..3u64 {
        for i in 0..2000u64 {
            db.put(
                format!("key{i:08}").as_bytes(),
                format!("round{round}-{i}").as_bytes(),
            )
            .unwrap();
        }
    }
    let results = db.scan(b"key00000500", 50).unwrap();
    assert_eq!(results.len(), 50);
    for (j, (k, v)) in results.iter().enumerate() {
        let i = 500 + j;
        assert_eq!(k, format!("key{i:08}").as_bytes());
        assert_eq!(v, format!("round2-{i}").as_bytes(), "stale value at {i}");
    }
}

#[test]
fn ldc_state_survives_reopen() {
    let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::new(SsdConfig::default()));
    let n = 6000u64;
    {
        let db = LdcDb::builder()
            .options(Options::small_for_tests())
            .storage(Arc::clone(&storage))
            .build()
            .unwrap();
        for i in 0..n {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        let v = db.engine_ref().version();
        assert!(
            v.frozen_files() > 0 || v.total_slice_links() > 0 || db.stats().ldc_merges > 0,
            "test needs live LDC state to be meaningful"
        );
    }
    let db = LdcDb::builder()
        .options(Options::small_for_tests())
        .storage(storage)
        .build()
        .unwrap();
    db.engine_ref().version().check_invariants().unwrap();
    for i in (0..n).step_by(173) {
        let (k, v) = kv(i);
        assert_eq!(db.get(&k).unwrap(), Some(v), "key {i} after reopen");
    }
    // And the store keeps working with the recovered link state.
    for i in n..n + 2000 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    db.engine_ref().version().check_invariants().unwrap();
}

#[test]
fn ldc_halves_compaction_io_versus_udc() {
    let run = |udc: bool| {
        let mut builder = LdcDb::builder().options(Options::small_for_tests());
        if udc {
            builder = builder.udc_baseline();
        }
        let db = builder.build().unwrap();
        for i in 0..20_000u64 {
            let (k, v) = kv(i % 8000); // overwrites force real merging
            db.put(&k, &v).unwrap();
        }
        let io = db.device().io_stats();
        io.compaction_read_bytes() + io.compaction_write_bytes()
    };
    let udc_io = run(true);
    let ldc_io = run(false);
    assert!(
        (ldc_io as f64) < 0.75 * udc_io as f64,
        "LDC compaction I/O ({ldc_io}) should be well below UDC ({udc_io})"
    );
}

#[test]
fn ldc_improves_virtual_time_on_write_heavy_load() {
    // Realistic (if scaled) geometry: at the micro test geometry the fixed
    // per-task costs (manifest syncs) swamp the I/O savings.
    let options = Options {
        memtable_bytes: 256 << 10,
        sstable_bytes: 256 << 10,
        l1_capacity_bytes: 1 << 20,
        ..Options::default()
    };
    let run = |udc: bool| {
        let mut builder = LdcDb::builder().options(options.clone());
        if udc {
            builder = builder.udc_baseline();
        }
        let db = builder.build().unwrap();
        // Enough volume that compaction (not the foreground path) is the
        // bottleneck: ~15 MiB ingested over an 8k-key space.
        let value = vec![b'v'; 512];
        for i in 0..30_000u64 {
            let (k, _) = kv(i % 8000);
            db.put(&k, &value).unwrap();
        }
        db.engine().drain_background();
        db.device().clock().now()
    };
    let udc_time = run(true);
    let ldc_time = run(false);
    assert!(
        ldc_time < udc_time,
        "LDC ({ldc_time} ns) should finish before UDC ({udc_time} ns)"
    );
}

#[test]
fn batched_writes_under_ldc() {
    let db = ldc_db();
    for chunk in 0..200u64 {
        let mut batch = WriteBatch::new();
        for j in 0..20 {
            let (k, v) = kv(chunk * 20 + j);
            batch.put(&k, &v);
        }
        db.write(batch).unwrap();
    }
    assert_eq!(db.stats().writes, 4000);
    let (k, v) = kv(1234);
    assert_eq!(db.get(&k).unwrap(), Some(v));
}

#[test]
fn policy_contract_l0_links_oldest_first() {
    // Structural check on the policy itself (the read path depends on it).
    use ldc_lsm::compaction::{CompactionTask, PickContext};
    use ldc_lsm::types::{encode_internal_key, ValueType};
    use ldc_lsm::version::{FileMeta, Version};

    let options = Options::default();
    let pointers = vec![Vec::new(); 4];
    let mut v = Version::new(4);
    for number in [7, 3, 9, 5] {
        v.levels[0].push(FileMeta {
            number,
            size: 1000,
            smallest: encode_internal_key(b"a", 1, ValueType::Value),
            largest: encode_internal_key(b"z", 1, ValueType::Value),
            slices: Vec::new(),
        });
    }
    v.levels[0].sort_by_key(|f| f.number);
    v.levels[1].push(FileMeta {
        number: 100,
        size: 1000,
        smallest: encode_internal_key(b"a", 1, ValueType::Value),
        largest: encode_internal_key(b"z", 1, ValueType::Value),
        slices: Vec::new(),
    });
    let mut policy = LdcPolicy::new();
    let task = policy
        .pick(&PickContext {
            version: &v,
            options: &options,
            compact_pointers: &pointers,
        })
        .unwrap();
    assert_eq!(task, CompactionTask::Link { level: 0, file: 3 });
}
