//! Fig 10(c) — total compaction I/O, UDC vs LDC.
//!
//! Paper: LDC saves ~half of the compaction traffic on every workload; e.g.
//! under WH, UDC reads/writes 98.78/107.1 GB against LDC's 50.38/58.78 GB.
//! On SSDs with bounded write endurance this halving directly extends
//! device lifetime.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(50_000);
    let specs = [
        WorkloadSpec::write_only(args.ops),
        WorkloadSpec::write_heavy(args.ops),
        WorkloadSpec::read_write_balanced(args.ops),
        WorkloadSpec::read_heavy(args.ops),
        WorkloadSpec::scan_read_write_balanced(args.ops / 2),
    ];
    let mut rows = Vec::new();
    for spec in specs {
        let spec = spec.with_codec(args.codec()).with_seed(args.seed);
        let (udc, ldc) = run_both(&paper_scaled_options(), &SsdConfig::default(), &spec);
        let ratio = ldc.compaction_io_bytes() as f64 / udc.compaction_io_bytes().max(1) as f64;
        rows.push(vec![
            spec.name.clone(),
            mib(udc.io.compaction_read_bytes()),
            mib(udc.io.compaction_write_bytes()),
            mib(ldc.io.compaction_read_bytes()),
            mib(ldc.io.compaction_write_bytes()),
            format!("{:.1}%", ratio * 100.0),
        ]);
    }
    print_table(
        args.csv,
        &format!(
            "Fig 10c: compaction I/O (MiB), {} ops per workload",
            args.ops
        ),
        &[
            "workload",
            "UDC read",
            "UDC write",
            "LDC read",
            "LDC write",
            "LDC/UDC total",
        ],
        &rows,
    );
    println!(
        "\nPaper reference (WH, GB): UDC 98.78 read / 107.1 write vs LDC \
         50.38 / 58.78 — about half. Expectation: LDC/UDC total near or \
         below ~50-60% on write-containing mixes."
    );
}
