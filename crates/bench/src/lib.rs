//! # ldc-bench — the paper's evaluation, regenerated
//!
//! One binary per table/figure of the LDC paper's §IV (see DESIGN.md for
//! the full index). Each binary builds fresh stores on the simulated SSD,
//! drives them with the same deterministic YCSB-style workloads, and prints
//! the measured series next to the paper's reported numbers.
//!
//! ```text
//! cargo run --release -p ldc-bench --bin fig08_tail_latency
//! cargo run --release -p ldc-bench --bin fig10a_throughput_get -- --ops 200000
//! ```
//!
//! Defaults are laptop-scale (tens of thousands of ops); pass `--ops` (or
//! `--scale`) for larger runs. Absolute numbers differ from the paper's
//! hardware; the *shapes* — who wins, by what factor, where crossovers sit —
//! are the reproduction target.

pub mod adapter;
pub mod cli;
pub mod experiment;
pub mod ycsb_net;

pub use adapter::DbAdapter;
pub use cli::{mib, pct, print_table, CommonArgs};
pub use experiment::{
    paper_scaled_options, run_both, run_experiment, ExperimentResult, StoreConfig, System,
};
pub use ycsb_net::{run_ycsb_net, NetBenchArgs};

/// Convenience re-exports for the figure binaries.
pub mod prelude {
    pub use crate::adapter::DbAdapter;
    pub use crate::cli::{mib, pct, print_table, CommonArgs};
    pub use crate::experiment::{
        paper_scaled_options, run_both, run_experiment, ExperimentResult, StoreConfig, System,
    };
    pub use ldc_core::{LdcDb, LdcPolicy};
    pub use ldc_lsm::Options;
    pub use ldc_obs::{Event, EventKind, RingBufferSink};
    pub use ldc_ssd::{IoClass, SsdConfig};
    pub use ldc_workload::{Distribution, KeyCodec, WorkloadSpec};
}
