//! Fig 12(c)/(f) — Bloom filter size sweep on a balanced workload.
//!
//! Paper: from 10 to 200 bits/key, neither system's throughput nor
//! compaction I/O moves much — ~10 bits/key already answers membership
//! accurately enough.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(30_000);
    let bits = [10usize, 20, 50, 100, 200];
    let mut rows = Vec::new();
    for &b in &bits {
        let spec = WorkloadSpec::read_write_balanced(args.ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        let mut options = paper_scaled_options();
        options.bloom_bits_per_key = b;
        let (udc, ldc) = run_both(&options, &SsdConfig::default(), &spec);
        rows.push(vec![
            b.to_string(),
            format!("{:.0}", udc.throughput()),
            format!("{:.0}", ldc.throughput()),
            mib(udc.compaction_io_bytes()),
            mib(ldc.compaction_io_bytes()),
        ]);
    }
    print_table(
        args.csv,
        &format!(
            "Fig 12c/f: Bloom bits-per-key sweep (RWB, {} ops)",
            args.ops
        ),
        &[
            "bits/key",
            "UDC ops/s",
            "LDC ops/s",
            "UDC compaction (MiB)",
            "LDC compaction (MiB)",
        ],
        &rows,
    );
    println!(
        "\nExpectation: flat lines — beyond ~10 bits/key extra filter bits \
         buy nothing for either system."
    );
}
