//! Checkpoints, incremental backup streams, and restore.
//!
//! The storage namespace is flat, so a "checkpoint directory" is a name
//! prefix: checkpoint `nightly` of a store lives at `ckpt-nightly@CURRENT`,
//! `ckpt-nightly@MANIFEST-000001`, `ckpt-nightly@000005.sst`, ... Backups
//! use `backup-<name>@` and add an append-only edit stream at
//! `backup-<name>@EDITS` (CRC-framed like the WAL; see
//! [`crate::version::Shipper`]).
//!
//! Protocol invariants:
//! * `<prefix>CURRENT` is written **last** during checkpoint creation, so
//!   its presence is the completeness marker — restore refuses a prefix
//!   without it (a crash mid-checkpoint leaves only ignorable garbage).
//! * Stream records are appended and synced one at a time, after their
//!   referenced SSTables are linked into the prefix, so every record on
//!   the stream's clean prefix is fully materialized.
//! * Restore replays the stream's clean prefix on top of the base
//!   checkpoint; a torn tail (crash mid-ship) is a clean end, exactly like
//!   WAL recovery. The result equals the primary's state as of the last
//!   durable record — an acknowledged-history prefix.

use std::collections::BTreeSet;
use std::sync::Arc;

use ldc_ssd::{IoClass, StorageBackend};

use crate::error::{Error, Result};
use crate::types::SequenceNumber;
use crate::version::{
    manifest_file_name, snapshot_edit, table_file_name, Version, VersionEdit, VersionSet,
    CURRENT_FILE, STREAM_FILE,
};
use crate::wal::{LogReader, LogWriter};

/// The name prefix under which checkpoint `name`'s files live.
pub fn checkpoint_prefix(name: &str) -> String {
    format!("ckpt-{name}@")
}

/// The name prefix under which backup `name`'s files (base checkpoint +
/// edit stream) live.
pub fn backup_prefix(name: &str) -> String {
    format!("backup-{name}@")
}

/// Validates a checkpoint/backup name: it becomes part of flat file names,
/// so it must be non-empty and restricted to `[A-Za-z0-9_-]`.
pub fn validate_name(name: &str) -> Result<()> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(Error::InvalidArgument(format!(
            "checkpoint name {name:?} must be non-empty [A-Za-z0-9_-]"
        )));
    }
    Ok(())
}

/// What a checkpoint creation produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// SSTables linked into the checkpoint prefix.
    pub files_linked: u64,
    /// Total bytes of those SSTables.
    pub bytes_linked: u64,
    /// The sequence number the checkpoint is consistent at: every write
    /// acknowledged before the pin is included, nothing after.
    pub last_sequence: SequenceNumber,
}

/// What a restore reconstructed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Files copied out of the checkpoint prefix (tables + manifest +
    /// CURRENT).
    pub files_copied: u64,
    /// Total bytes copied.
    pub bytes_copied: u64,
    /// Incremental stream records replayed on top of the base.
    pub edits_applied: u64,
    /// The restored store's last sequence number.
    pub last_sequence: SequenceNumber,
}

/// Writes the checkpoint itself: links every SSTable reachable from the
/// pinned `version` into `prefix`, synthesizes a single-snapshot manifest
/// for it, and finally writes `<prefix>CURRENT` as the completeness
/// marker. Runs against an immutable pinned version, so it needs no engine
/// lock — the caller holds a checkpoint pin that blocks physical deletion
/// of the linked tables.
pub(crate) fn write_checkpoint_files(
    storage: &Arc<dyn StorageBackend>,
    prefix: &str,
    version: &Version,
    next_file_number: u64,
    last_sequence: SequenceNumber,
    compact_pointers: &[Vec<u8>],
) -> Result<CheckpointReport> {
    let mut report = CheckpointReport {
        last_sequence,
        ..Default::default()
    };
    let mut link = |number: u64, size: u64| -> Result<()> {
        let src = table_file_name(number);
        let dst = format!("{prefix}{src}");
        if !storage.exists(&dst) {
            storage.link_file(&src, &dst, IoClass::Other)?;
        }
        report.files_linked += 1;
        report.bytes_linked += size;
        Ok(())
    };
    for files in &version.levels {
        for f in files {
            link(f.number, f.size)?;
        }
    }
    for frozen in version.frozen.values() {
        link(frozen.number, frozen.size)?;
    }
    // The checkpoint's manifest holds one snapshot edit of the pinned
    // state. `log_number` is 0: a checkpoint has no WAL (the caller
    // flushed both memtables before pinning).
    let manifest_name = manifest_file_name(1);
    let full_manifest = format!("{prefix}{manifest_name}");
    if storage.exists(&full_manifest) {
        storage.delete(&full_manifest)?;
    }
    let mut writer = LogWriter::new(Arc::clone(storage), full_manifest, IoClass::ManifestWrite);
    let edit = snapshot_edit(
        version,
        next_file_number,
        last_sequence,
        0,
        compact_pointers,
        0,
    );
    writer.add_record(&edit.encode())?;
    writer.sync()?;
    // CURRENT last: its durability marks the checkpoint complete.
    storage.write_file(
        &format!("{prefix}{CURRENT_FILE}"),
        manifest_name.as_bytes(),
        IoClass::ManifestWrite,
    )?;
    Ok(report)
}

/// Whether `prefix` holds a complete checkpoint (its `CURRENT` marker was
/// durably written).
pub fn checkpoint_complete(storage: &dyn StorageBackend, prefix: &str) -> bool {
    storage.exists(&format!("{prefix}{CURRENT_FILE}"))
}

/// Copies the checkpoint at `prefix` on `src` into `dst`, stripping the
/// prefix — afterwards `dst` is an openable database directory. Refuses an
/// incomplete checkpoint (no `CURRENT` marker) and a non-empty `dst`.
pub fn restore_checkpoint(
    src: &Arc<dyn StorageBackend>,
    prefix: &str,
    dst: &Arc<dyn StorageBackend>,
) -> Result<RestoreReport> {
    if !checkpoint_complete(src.as_ref(), prefix) {
        return Err(Error::InvalidState(format!(
            "checkpoint {prefix:?} is incomplete: no CURRENT marker (creation crashed?)"
        )));
    }
    if dst.exists(CURRENT_FILE) {
        return Err(Error::InvalidArgument(
            "restore destination already holds a database".to_string(),
        ));
    }
    let current = format!("{prefix}{CURRENT_FILE}");
    let stream = format!("{prefix}{STREAM_FILE}");
    let mut report = RestoreReport::default();
    let mut copy = |full_name: &str| -> Result<()> {
        let stripped = &full_name[prefix.len()..];
        let data = src.read_all(full_name, IoClass::Other)?;
        dst.write_file(stripped, &data, IoClass::Other)?;
        report.files_copied += 1;
        report.bytes_copied += data.len() as u64;
        Ok(())
    };
    for name in src.list_dir(prefix) {
        // The edit stream is not part of the base image; CURRENT goes
        // last so a crashed restore is never mistaken for a database.
        if name == current || name == stream {
            continue;
        }
        copy(&name)?;
    }
    copy(&current)?;
    Ok(report)
}

/// Reads the edit stream at `<prefix>EDITS` on `src`, invoking `f` with
/// `(ordinal, edit)` for every record past the first `skip` (ordinals are
/// 1-based). A missing stream is an empty stream; a torn tail is a clean
/// end. Returns the total number of complete records on the stream.
pub fn for_each_stream_edit(
    src: &dyn StorageBackend,
    prefix: &str,
    skip: u64,
    mut f: impl FnMut(u64, VersionEdit) -> Result<()>,
) -> Result<u64> {
    let stream = format!("{prefix}{STREAM_FILE}");
    if !src.exists(&stream) {
        return Ok(0);
    }
    let mut reader = LogReader::open(src, &stream)?;
    let mut ordinal = 0u64;
    reader.for_each(|record| {
        ordinal += 1;
        if ordinal <= skip {
            return Ok(());
        }
        f(ordinal, VersionEdit::decode(record)?)
    })?;
    Ok(ordinal)
}

/// Restores the backup at `prefix` on `src` into `dst`: base checkpoint,
/// then the edit stream's clean prefix replayed on top. `max_levels` must
/// match the options the store runs with. The result is consistent with
/// the primary's acknowledged history as of the last durable stream
/// record.
pub fn restore_backup(
    src: &Arc<dyn StorageBackend>,
    prefix: &str,
    dst: &Arc<dyn StorageBackend>,
    max_levels: usize,
) -> Result<RestoreReport> {
    let mut report = restore_checkpoint(src, prefix, dst)?;
    let mut vs = VersionSet::recover(Arc::clone(dst), max_levels)?;
    let applied_before = vs.replication_cursor;
    for_each_stream_edit(src.as_ref(), prefix, applied_before, |_, edit| {
        for (_, meta) in &edit.new_files {
            let table = table_file_name(meta.number);
            if dst.exists(&table) {
                continue;
            }
            let data = src.read_all(&format!("{prefix}{table}"), IoClass::Other)?;
            dst.write_file(&table, &data, IoClass::Other)?;
            report.files_copied += 1;
            report.bytes_copied += data.len() as u64;
        }
        vs.apply_remote_edit(&edit)
    })?;
    report.edits_applied = vs.replication_cursor - applied_before;
    report.last_sequence = vs.last_sequence;
    // Stream records can delete base files (compaction inputs); their
    // bytes were copied before the replay decided they are garbage.
    let referenced: BTreeSet<u64> = vs
        .current
        .levels
        .iter()
        .flat_map(|files| files.iter().map(|f| f.number))
        .chain(vs.current.frozen.keys().copied())
        .collect();
    for name in dst.list() {
        let Some(number) = name
            .strip_suffix(".sst")
            .and_then(|stem| stem.parse::<u64>().ok())
        else {
            continue;
        };
        if !referenced.contains(&number) {
            dst.delete(&name)?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_ssd::{MemStorage, SsdConfig, SsdDevice};

    fn storage() -> Arc<dyn StorageBackend> {
        MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()))
    }

    #[test]
    fn names_validate_and_format() {
        assert_eq!(checkpoint_prefix("a-1"), "ckpt-a-1@");
        assert_eq!(backup_prefix("b_2"), "backup-b_2@");
        assert!(validate_name("ok-name_3").is_ok());
        for bad in ["", "a/b", "a@b", "a b", ".."] {
            assert!(validate_name(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn incomplete_checkpoint_is_refused() {
        let src = storage();
        let dst = storage();
        // Tables and manifest present, but no CURRENT marker: the crash
        // hit before the completeness marker, so restore must refuse.
        src.write_file("ckpt-x@000004.sst", b"t", IoClass::Other)
            .unwrap();
        src.write_file("ckpt-x@MANIFEST-000001", b"m", IoClass::Other)
            .unwrap();
        assert!(!checkpoint_complete(src.as_ref(), "ckpt-x@"));
        let err = restore_checkpoint(&src, "ckpt-x@", &dst).unwrap_err();
        assert!(matches!(err, Error::InvalidState(_)));
    }

    #[test]
    fn restore_refuses_nonempty_destination() {
        let src = storage();
        let dst = storage();
        src.write_file("ckpt-x@CURRENT", b"MANIFEST-000001", IoClass::Other)
            .unwrap();
        dst.write_file(CURRENT_FILE, b"MANIFEST-000001", IoClass::Other)
            .unwrap();
        assert!(matches!(
            restore_checkpoint(&src, "ckpt-x@", &dst),
            Err(Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn missing_stream_is_empty() {
        let src = storage();
        let n = for_each_stream_edit(src.as_ref(), "backup-x@", 0, |_, _| {
            panic!("no records expected")
        })
        .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn stream_skip_and_ordinals() {
        let src = storage();
        let mut writer = LogWriter::new(
            Arc::clone(&src),
            "backup-x@EDITS".to_string(),
            IoClass::ManifestWrite,
        );
        for seq in 1..=3u64 {
            let edit = VersionEdit {
                last_sequence: Some(seq),
                ..Default::default()
            };
            writer.add_record(&edit.encode()).unwrap();
        }
        writer.sync().unwrap();
        let mut seen = Vec::new();
        let total = for_each_stream_edit(src.as_ref(), "backup-x@", 1, |ordinal, edit| {
            seen.push((ordinal, edit.last_sequence.unwrap()));
            Ok(())
        })
        .unwrap();
        assert_eq!(total, 3);
        assert_eq!(seen, vec![(2, 2), (3, 3)]);
    }
}
