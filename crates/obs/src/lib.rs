//! Engine-wide observability: structured event tracing, a per-level
//! metrics registry, and report formatting helpers.
//!
//! The paper's evaluation is an exercise in *attribution* — Fig 1 ties
//! user-visible latency spikes to background compaction, Table 1 splits
//! compaction time into read/merge/write phases, and Figs 10/12 account
//! for who moved which bytes. This crate gives every layer of the stack
//! a shared vocabulary for those questions:
//!
//! * [`Event`] / [`EventKind`] — one record per background action
//!   (flush, merge, link, stall, GC, ...) with virtual-clock timestamps,
//!   levels, byte/file counts, and per-phase durations.
//! * [`EventSink`] — where events go. [`NoopSink`] (zero-cost when
//!   tracing is off), [`RingBufferSink`] (bounded, drop-oldest,
//!   in-memory), and [`JsonlSink`] (line-delimited JSON for offline
//!   analysis).
//! * [`MetricsRegistry`] — per-level gauges (files, bytes, compaction
//!   score) and log-linear latency histograms per operation type.
//! * [`TraceCtx`] / [`Blame`] / [`TraceReservoir`] — per-request span
//!   trees with a blame taxonomy attributing every nanosecond of an op's
//!   latency to one bucket, plus the deterministic worst-K reservoir
//!   behind `ldc-bench tail` / `trace-report`.
//!
//! This crate is dependency-free (std only) so every other crate in the
//! workspace — including `ldc-ssd` at the bottom of the stack — can
//! depend on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod lockcheck;

mod event;
mod json;
mod metrics;
mod sink;
mod trace;

pub use event::{Event, EventKind, Nanos};
pub use metrics::{
    DegradedCounters, LatencyHistogram, LevelGauge, MetricsRegistry, NetCounters, OpType,
    ReplicationCounters,
};
pub use sink::{parse_jsonl, JsonlSink, NoopSink, RingBufferSink, SharedSink};
pub use trace::{Blame, Span, Trace, TraceCtx, TraceReservoir};

/// The sink trait: where [`Event`]s are delivered.
///
/// Implementations must be cheap to call concurrently. Hot paths are
/// expected to gate event *construction* on [`EventSink::enabled`], so
/// a disabled sink costs one virtual call and no allocation:
///
/// ```
/// use ldc_obs::{Event, EventKind, EventSink, NoopSink};
/// let sink = NoopSink;
/// if sink.enabled() {
///     sink.record(Event::span(EventKind::Flush, 0, 10));
/// }
/// ```
pub trait EventSink: Send + Sync {
    /// Whether this sink wants events at all. `false` lets callers skip
    /// building the [`Event`] entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Delivers one event.
    fn record(&self, event: Event);
}
