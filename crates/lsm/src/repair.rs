//! Offline repair: rebuild a damaged store from whatever survives.
//!
//! `repair_db` is this engine's `leveldb::RepairDB`: it runs against a
//! *closed* store and reconstructs a consistent MANIFEST from the files on
//! disk. The pass:
//!
//! 1. deep-verifies every `.sst` (all block CRCs, index/footer
//!    consistency, filter agreement) and sets corrupt ones aside as
//!    `<name>.quarantined`;
//! 2. recovers the MANIFEST if it is readable, keeping the level/frozen/
//!    link structure minus the corrupt files — dropping a corrupt live
//!    file also drops its slice links, and any LDC frozen predecessor
//!    left unreferenced is *thawed* back to Level 0, so data a corrupt
//!    successor would have lost is served from the retained frozen copy;
//! 3. if the MANIFEST is unreadable, sets it aside and re-homes every
//!    verified table at Level 0 — correct for reads because Level-0
//!    lookups gather all covering files and pick the highest sequence
//!    number (this mode can resurrect deleted keys whose tombstones were
//!    compacted away: salvaging data beats losing it once the file-level
//!    metadata is gone, which is also LevelDB's `RepairDB` tradeoff);
//! 4. salvages WAL remnants — `.log` files and the `.log.quarantined`
//!    ones a previous point-in-time recovery set aside — into a fresh
//!    Level-0 table, keeping each log's clean prefix;
//! 5. writes a brand-new snapshot MANIFEST via [`VersionSet::rebuild`]
//!    and deletes stale manifests.
//!
//! The pass is deterministic for a given storage image and emits one
//! [`EventKind::Repair`] event. It is **not** crash-safe: if the machine
//! dies mid-repair, run it again (it is idempotent — a second pass over a
//! repaired store keeps everything and salvages nothing).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use ldc_obs::{Event, EventKind, MetricsRegistry, NoopSink, SharedSink};
use ldc_ssd::{IoClass, StorageBackend};

use crate::batch::{BatchOp, WriteBatch};
use crate::cache::BlockCache;
use crate::error::{corruption, Error, Result};
use crate::memtable::MemTable;
use crate::options::Options;
use crate::retry::RetryStorage;
use crate::table::{Table, TableBuilder};
use crate::types::{parse_trailer, SequenceNumber, ValueType};
use crate::version::{table_file_name, FileMeta, Version, VersionSet, CURRENT_FILE};
use crate::wal::LogReader;

/// What one [`repair_db`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Whether the MANIFEST was readable; `false` means every surviving
    /// table was re-homed at Level 0.
    pub manifest_recovered: bool,
    /// Verified tables kept at their manifest position (live or frozen).
    pub tables_kept: u64,
    /// Verified tables placed at Level 0: WAL-salvage output plus, when
    /// the manifest was lost, every re-homed table.
    pub tables_salvaged: u64,
    /// Corrupt tables renamed to `<name>.quarantined`.
    pub tables_quarantined: u64,
    /// Manifest-referenced tables absent on disk (unrecoverable).
    pub tables_missing: u64,
    /// Unreferenced intact `.sst` files deleted (manifest-recovered mode
    /// only; with the manifest lost they are salvaged instead).
    pub orphans_deleted: u64,
    /// LDC frozen predecessors thawed back to Level 0 because no slice
    /// link references them anymore.
    pub frozen_thawed: u64,
    /// Slice links dropped because their frozen source was corrupt or
    /// missing.
    pub slices_dropped: u64,
    /// Batch entries recovered from WAL files into the salvage table.
    pub wal_records_salvaged: u64,
    /// WAL files whose tail was corrupt (their clean prefix was kept).
    pub wals_quarantined: u64,
    /// Highest sequence number in the rebuilt store.
    pub last_sequence: SequenceNumber,
}

/// Everything repair needs to know about one verified table.
#[derive(Debug, Clone)]
struct TableFacts {
    size: u64,
    smallest: Vec<u8>,
    largest: Vec<u8>,
    max_seq: SequenceNumber,
    entries: u64,
}

/// Rebuilds a consistent store from the files in `storage`. See the
/// module docs for the pass structure. The store must not be open.
pub fn repair_db(storage: Arc<dyn StorageBackend>, options: &Options) -> Result<RepairReport> {
    repair_db_with_sink(storage, options, Arc::new(NoopSink))
}

/// Like [`repair_db`], with [`EventKind::Repair`] (and any retry events)
/// routed to `sink`.
pub fn repair_db_with_sink(
    storage: Arc<dyn StorageBackend>,
    options: &Options,
    sink: SharedSink,
) -> Result<RepairReport> {
    options.validate()?;
    let t0 = storage.device().clock().now();
    // The same bounded transient-retry protection the live engine gets.
    let storage: Arc<dyn StorageBackend> = if options.read_retry_attempts > 1 {
        RetryStorage::new(
            storage,
            options.read_retry_attempts,
            options.read_retry_backoff_ns,
            options.seed,
            Arc::clone(&sink),
            Arc::new(MetricsRegistry::new()),
        )
    } else {
        storage
    };
    let mut report = RepairReport::default();

    // -- 1. Classify the directory listing. ---------------------------
    let listing = storage.list();
    let mut table_numbers: Vec<u64> = Vec::new();
    let mut logs: Vec<(u64, String)> = Vec::new();
    let mut max_number_seen = 0u64;
    for name in &listing {
        // Checkpoint/backup namespaces (`ckpt-<name>@...`,
        // `backup-<name>@...`) are self-contained images, not part of the
        // live store: repair must neither salvage nor delete them. The
        // suffix parses below would skip them anyway (the prefix breaks
        // the number parse) — this guard makes the contract explicit.
        if name.starts_with("ckpt-") || name.starts_with("backup-") {
            continue;
        }
        if let Some(n) = name
            .strip_suffix(".sst")
            .and_then(|s| s.parse::<u64>().ok())
        {
            table_numbers.push(n);
            max_number_seen = max_number_seen.max(n);
        } else if let Some(n) = name
            .strip_suffix(".log")
            .and_then(|s| s.parse::<u64>().ok())
        {
            logs.push((n, name.clone()));
            max_number_seen = max_number_seen.max(n);
        } else if let Some(n) = name
            .strip_suffix(".log.quarantined")
            .and_then(|s| s.parse::<u64>().ok())
        {
            logs.push((n, name.clone()));
            max_number_seen = max_number_seen.max(n);
        } else if let Some(n) = name
            .strip_suffix(".sst.quarantined")
            .and_then(|s| s.parse::<u64>().ok())
        {
            // Already set aside; only its number matters (never reuse it).
            max_number_seen = max_number_seen.max(n);
        }
    }
    table_numbers.sort_unstable();
    logs.sort();

    // -- 2. Deep-verify every table on disk. --------------------------
    let cache = Arc::new(BlockCache::new(options.block_cache_bytes));
    let mut clean: BTreeMap<u64, TableFacts> = BTreeMap::new();
    for number in table_numbers {
        match scan_table(&storage, &cache, number) {
            Ok(facts) => {
                clean.insert(number, facts);
            }
            Err(Error::Corruption(_)) => {
                let name = table_file_name(number);
                storage.rename(&name, &format!("{name}.quarantined"))?;
                report.tables_quarantined += 1;
            }
            Err(e) => return Err(e),
        }
    }

    // -- 3. Recover the manifest structure, or rebuild from scratch. --
    let recovered = if VersionSet::exists(storage.as_ref()) {
        VersionSet::recover(Arc::clone(&storage), options.max_levels).ok()
    } else {
        None
    };
    let mut last_seq;
    let mut next_file = max_number_seen + 1;
    let mut version = match recovered {
        Some(vs) => {
            report.manifest_recovered = true;
            last_seq = vs.last_sequence;
            next_file = next_file.max(vs.next_file_number);
            let mut version = Version::clone(&vs.current);
            drop(vs);

            // Drop live files that are corrupt or missing on disk.
            for files in version.levels.iter_mut() {
                files.retain(|f| {
                    if clean.contains_key(&f.number) {
                        report.tables_kept += 1;
                        true
                    } else {
                        if storage.exists(&table_file_name(f.number)) {
                            // Still present yet not verified: impossible
                            // (step 2 renamed corrupt files), so this is
                            // the quarantined-corrupt case.
                        } else {
                            report.tables_missing += 1;
                        }
                        false
                    }
                });
            }
            // Same for frozen files; their slice links die with them.
            let bad_frozen: Vec<u64> = version
                .frozen
                .keys()
                .copied()
                .filter(|n| !clean.contains_key(n))
                .collect();
            for n in &bad_frozen {
                if !storage.exists(&format!("{}.quarantined", table_file_name(*n))) {
                    report.tables_missing += 1;
                }
                version.frozen.remove(n);
            }
            for files in version.levels.iter_mut() {
                for f in files.iter_mut() {
                    let before = f.slices.len();
                    f.slices
                        .retain(|s| version.frozen.contains_key(&s.source_file));
                    report.slices_dropped += (before - f.slices.len()) as u64;
                }
            }
            // Thaw frozen predecessors no slice references anymore — the
            // retained copy of data a corrupt/quarantined successor lost.
            // At Level 0 their (older) sequence numbers resolve correctly
            // against everything else.
            let referenced: BTreeSet<u64> = version
                .levels
                .iter()
                .flat_map(|files| files.iter())
                .flat_map(|f| f.slices.iter())
                .map(|s| s.source_file)
                .collect();
            let thaw: Vec<u64> = version
                .frozen
                .keys()
                .copied()
                .filter(|n| !referenced.contains(n))
                .collect();
            for n in thaw {
                if let Some(fm) = version.frozen.remove(&n) {
                    if let Some(l0) = version.levels.first_mut() {
                        l0.push(FileMeta {
                            number: fm.number,
                            size: fm.size,
                            smallest: fm.smallest,
                            largest: fm.largest,
                            slices: Vec::new(),
                        });
                        report.frozen_thawed += 1;
                    }
                }
            }
            report.tables_kept += version.frozen.len() as u64;

            // Intact tables referenced by nothing (e.g. partial compaction
            // outputs orphaned by a quarantine) are garbage: deleting them
            // cannot lose live data, and crucially avoids resurrecting
            // keys whose tombstones were already compacted away.
            let referenced_files: BTreeSet<u64> = version
                .levels
                .iter()
                .flat_map(|files| files.iter())
                .map(|f| f.number)
                .chain(version.frozen.keys().copied())
                .collect();
            let orphans: Vec<u64> = clean
                .keys()
                .copied()
                .filter(|n| !referenced_files.contains(n))
                .collect();
            for n in orphans {
                storage.delete(&table_file_name(n))?;
                clean.remove(&n);
                report.orphans_deleted += 1;
            }
            version
        }
        None => {
            // Manifest unreadable: set it aside and re-home every
            // verified table at Level 0, where gather-by-sequence reads
            // stay correct without any level metadata.
            for name in &listing {
                if name.starts_with("MANIFEST-") && !name.ends_with(".quarantined") {
                    storage.rename(name, &format!("{name}.quarantined"))?;
                }
            }
            last_seq = 0;
            let mut version = Version::new(options.max_levels);
            for (number, facts) in &clean {
                if facts.entries == 0 {
                    storage.delete(&table_file_name(*number))?;
                    report.orphans_deleted += 1;
                    continue;
                }
                if let Some(l0) = version.levels.first_mut() {
                    l0.push(FileMeta {
                        number: *number,
                        size: facts.size,
                        smallest: facts.smallest.clone(),
                        largest: facts.largest.clone(),
                        slices: Vec::new(),
                    });
                    report.tables_salvaged += 1;
                    last_seq = last_seq.max(facts.max_seq);
                }
            }
            version
        }
    };

    // -- 4. Salvage WAL remnants into one fresh Level-0 table. --------
    let mem = MemTable::new(options.seed);
    for (_, name) in &logs {
        let mut reader = LogReader::open(storage.as_ref(), name)?;
        let replay = reader.for_each(|record| {
            let batch = WriteBatch::decode(record)?;
            let base = batch.sequence();
            for item in batch.iter() {
                let (offset, op) = item?;
                let seq = base + u64::from(offset);
                match op {
                    BatchOp::Put { key, value } => mem.add(seq, ValueType::Value, key, value),
                    BatchOp::Delete { key } => mem.add(seq, ValueType::Deletion, key, b""),
                }
                last_seq = last_seq.max(seq);
                report.wal_records_salvaged += 1;
            }
            Ok(())
        });
        match replay {
            Ok(()) => {}
            // Keep the clean prefix, drop the corrupt tail.
            Err(Error::Corruption(_)) => report.wals_quarantined += 1,
            Err(e) => return Err(e),
        }
        // Everything readable now lives in the salvage memtable; the file
        // (including an unreadable tail) is no longer needed.
        storage.delete(name)?;
    }
    if !mem.is_empty() {
        let number = next_file;
        next_file += 1;
        let mut builder = TableBuilder::new(
            options.block_bytes,
            options.block_restart_interval,
            options.bloom_bits_per_key,
        );
        let mut it = mem.iter();
        it.seek_to_first();
        while it.valid() {
            builder.add(it.key(), it.value());
            it.next();
        }
        let finished = builder.finish();
        storage.write_file(
            &table_file_name(number),
            &finished.bytes,
            IoClass::FlushWrite,
        )?;
        if let Some(l0) = version.levels.first_mut() {
            l0.push(FileMeta {
                number,
                size: finished.bytes.len() as u64,
                smallest: finished.smallest,
                largest: finished.largest,
                slices: Vec::new(),
            });
            report.tables_salvaged += 1;
        }
    }
    if let Some(l0) = version.levels.first_mut() {
        l0.sort_by_key(|f| f.number);
    }

    // -- 5. Write the new snapshot manifest; drop stale ones. ---------
    let vs = VersionSet::rebuild(Arc::clone(&storage), version, last_seq, next_file)?;
    report.last_sequence = vs.last_sequence;
    let current = String::from_utf8(storage.read_all(CURRENT_FILE, IoClass::Other)?.to_vec())
        .map_err(|_| corruption("CURRENT is not utf-8"))?;
    for name in storage.list() {
        if name.starts_with("MANIFEST-") && !name.ends_with(".quarantined") && name != current {
            storage.delete(&name)?;
        }
    }

    if sink.enabled() {
        sink.record(
            Event::span(EventKind::Repair, t0, storage.device().clock().now())
                .files(
                    u32::try_from(report.tables_salvaged).unwrap_or(u32::MAX),
                    u32::try_from(report.tables_quarantined).unwrap_or(u32::MAX),
                )
                .bytes(0, report.wal_records_salvaged),
        );
    }
    Ok(report)
}

/// Opens and deep-verifies one table, returning its key span, entry
/// count, and highest sequence number. Corruption anywhere in the file
/// surfaces as `Err(Error::Corruption)`.
fn scan_table(
    storage: &Arc<dyn StorageBackend>,
    cache: &Arc<BlockCache>,
    number: u64,
) -> Result<TableFacts> {
    let name = table_file_name(number);
    let size = storage.size(&name)?;
    let table = Table::open(Arc::clone(storage), name, number, Arc::clone(cache))?;
    table.verify_deep(IoClass::Other)?;
    let mut it = table.iter(IoClass::Other);
    it.seek_to_first();
    let mut smallest: Option<Vec<u8>> = None;
    let mut largest: Vec<u8> = Vec::new();
    let mut max_seq = 0;
    let mut entries = 0u64;
    while it.valid() {
        let ikey = it.key();
        let (seq, _) = parse_trailer(ikey);
        max_seq = std::cmp::max(max_seq, seq);
        if smallest.is_none() {
            smallest = Some(ikey.to_vec());
        }
        largest.clear();
        largest.extend_from_slice(ikey);
        entries += 1;
        it.next();
    }
    it.status()?;
    Ok(TableFacts {
        size,
        smallest: smallest.unwrap_or_default(),
        largest,
        max_seq,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::UdcPolicy;
    use crate::db::Db;
    use crate::options::CorruptionPolicy;
    use ldc_ssd::{MemStorage, SsdConfig, SsdDevice};

    fn storage() -> Arc<MemStorage> {
        MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()))
    }

    fn open(storage: Arc<MemStorage>) -> Db {
        Db::open(
            storage,
            Options::small_for_tests(),
            Box::new(UdcPolicy::new()),
        )
        .unwrap()
    }

    fn key(i: u64) -> Vec<u8> {
        format!("key{i:05}").into_bytes()
    }

    fn value(i: u64) -> Vec<u8> {
        format!("value-{i:05}-{}", "x".repeat(100)).into_bytes()
    }

    fn fill(db: &mut Db, n: u64) {
        for i in 0..n {
            db.put(&key(i), &value(i)).unwrap();
        }
        db.drain_background();
    }

    #[test]
    fn repair_of_healthy_store_is_lossless_and_idempotent() {
        let s = storage();
        let mut db = open(s.clone());
        fill(&mut db, 500);
        drop(db);

        let report = repair_db(s.clone(), &Options::small_for_tests()).unwrap();
        assert!(report.manifest_recovered);
        assert_eq!(report.tables_quarantined, 0);
        assert_eq!(report.tables_missing, 0);
        // The undrained memtable tail lives in the WAL; repair salvages it.
        assert!(report.tables_kept > 0);

        let second = repair_db(s.clone(), &Options::small_for_tests()).unwrap();
        assert!(second.manifest_recovered);
        assert_eq!(second.tables_quarantined, 0);
        assert_eq!(second.wal_records_salvaged, 0);
        assert_eq!(second.tables_salvaged, 0);
        assert_eq!(second.orphans_deleted, 0);

        let db = open(s);
        for i in 0..500 {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i)), "key {i}");
        }
        db.version().check_invariants().unwrap();
    }

    #[test]
    fn corrupt_table_is_quarantined_and_other_keys_survive() {
        let s = storage();
        let mut db = open(s.clone());
        fill(&mut db, 500);
        drop(db);

        // Corrupt the largest table.
        let victim = s
            .list()
            .into_iter()
            .filter(|n| n.ends_with(".sst"))
            .max_by_key(|n| s.size(n).unwrap_or(0))
            .unwrap();
        let mut data = s.read_all(&victim, IoClass::Other).unwrap().to_vec();
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        s.write_file(&victim, &data, IoClass::Other).unwrap();

        let report = repair_db(s.clone(), &Options::small_for_tests()).unwrap();
        assert!(report.manifest_recovered);
        assert_eq!(report.tables_quarantined, 1);
        assert!(s.exists(&format!("{victim}.quarantined")));

        let db = open(s);
        let mut survivors = 0;
        for i in 0..500 {
            if db.get(&key(i)).unwrap() == Some(value(i)) {
                survivors += 1;
            }
        }
        assert!(survivors > 0, "repair must keep the undamaged tables");
        db.version().check_invariants().unwrap();
    }

    #[test]
    fn lost_manifest_rehomes_everything_at_level_zero() {
        let s = storage();
        let mut db = open(s.clone());
        fill(&mut db, 500);
        drop(db);

        s.delete(CURRENT_FILE).unwrap();
        let report = repair_db(s.clone(), &Options::small_for_tests()).unwrap();
        assert!(!report.manifest_recovered);
        assert!(report.tables_salvaged > 0);
        assert_eq!(report.tables_quarantined, 0);

        let db = open(s);
        for i in 0..500 {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i)), "key {i}");
        }
        db.version().check_invariants().unwrap();
    }

    #[test]
    fn wal_remnants_are_salvaged() {
        let s = storage();
        let db = open(s.clone());
        // No drain: most of this stays in the WAL.
        for i in 0..50 {
            db.put(&key(i), &value(i)).unwrap();
        }
        drop(db);
        assert!(s.list().iter().any(|n| n.ends_with(".log")));

        let report = repair_db(s.clone(), &Options::small_for_tests()).unwrap();
        assert!(report.wal_records_salvaged >= 50);
        assert!(!s.list().iter().any(|n| n.ends_with(".log")));

        let db = open(s);
        for i in 0..50 {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i)), "key {i}");
        }
    }

    #[test]
    fn repair_preserves_checkpoint_namespaces() {
        let s = storage();
        let mut db = open(s.clone());
        fill(&mut db, 300);
        db.checkpoint("nightly").unwrap();
        drop(db);

        let before: Vec<String> = {
            let mut v = s.list_dir("ckpt-nightly@");
            v.sort();
            v
        };
        assert!(!before.is_empty(), "checkpoint produced no files");

        // Lose the live store's manifest; repair re-homes live tables but
        // must leave the checkpoint image untouched.
        s.delete(CURRENT_FILE).unwrap();
        let report = repair_db(s.clone(), &Options::small_for_tests()).unwrap();
        assert!(!report.manifest_recovered);

        let after: Vec<String> = {
            let mut v = s.list_dir("ckpt-nightly@");
            v.sort();
            v
        };
        assert_eq!(before, after, "repair touched the checkpoint namespace");

        // The checkpoint still restores to a working store.
        let restored = storage();
        let dst: Arc<dyn StorageBackend> = restored.clone();
        let src: Arc<dyn StorageBackend> = s.clone();
        crate::backup::restore_checkpoint(&src, "ckpt-nightly@", &dst).unwrap();
        let db = open(restored);
        for i in 0..300 {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i)), "key {i}");
        }
    }

    #[test]
    fn quarantine_policy_then_repair_thaws_frozen_predecessors() {
        // Build an LDC-shaped store by hand is heavy; here we check the
        // cheaper contract: a frozen file left at refcount zero (as the
        // online quarantine leaves it) is thawed back to Level 0.
        let s = storage();
        let mut db = open(s.clone());
        fill(&mut db, 300);
        drop(db);
        // Healthy stores have no refcount-0 frozen files, so thaw count
        // is zero here; the dedicated LDC harness covers the positive
        // case end to end.
        let report = repair_db(s, &Options::small_for_tests()).unwrap();
        assert_eq!(report.frozen_thawed, 0);
        let _ = CorruptionPolicy::Quarantine;
    }
}
