//! Fig 12(b)/(e) — fan-out sweep, UDC vs LDC.
//!
//! Paper: LDC wins at every fan-out (by 8.8% at k=3 up to 187.9% at large
//! k); UDC peaks at small fan-outs (k=3) while LDC peaks around k=25,
//! because LDC specifically removes the per-round O(k) penalty.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(30_000);
    // The paper sweeps 3..100 on a 10+ GB store; at laptop scale, levels
    // beyond the data size never fill, so fan-outs above ~25 degenerate to
    // the same tree. We sweep where the parameter actually binds and use a
    // finer geometry so at least three levels are full.
    let fanouts = [3u64, 5, 10, 15, 25];
    let mut rows = Vec::new();
    for &k in &fanouts {
        let spec = WorkloadSpec::read_write_balanced(args.ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        let mut options = paper_scaled_options();
        options.memtable_bytes = 256 << 10;
        options.sstable_bytes = 256 << 10;
        options.l1_capacity_bytes = 1 << 20;
        options.fan_out = k;
        let (udc, ldc) = run_both(&options, &SsdConfig::default(), &spec);
        rows.push(vec![
            k.to_string(),
            format!("{:.0}", udc.throughput()),
            format!("{:.0}", ldc.throughput()),
            format!(
                "{:+.1}%",
                100.0 * (ldc.throughput() / udc.throughput() - 1.0)
            ),
            mib(udc.compaction_io_bytes()),
            mib(ldc.compaction_io_bytes()),
        ]);
    }
    print_table(
        args.csv,
        &format!("Fig 12b/e: fan-out sweep (RWB, {} ops)", args.ops),
        &[
            "fan-out",
            "UDC ops/s",
            "LDC ops/s",
            "LDC gain",
            "UDC compaction (MiB)",
            "LDC compaction (MiB)",
        ],
        &rows,
    );
    println!(
        "\nExpectation: LDC leads everywhere and its margin grows with \
         fan-out; UDC degrades fastest as k rises (per-round O(k) I/O)."
    );
}
