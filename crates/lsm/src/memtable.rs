//! The in-memory write buffer (`C_0` in the paper's Definition 2.2).
//!
//! The skiplist sits behind an `RwLock` so a reader holding a pinned
//! `Arc<MemTable>` snapshot can probe it while the committing writer
//! appends: the arena-backed skiplist reallocates its node vector on
//! insert, so lock-free concurrent reads would be a data race. Point
//! lookups hold the read lock for one seek; scans hold it for the
//! iterator's lifetime (writers queue behind long scans, readers never
//! queue behind readers). MVCC comes from sequence numbers, not the lock:
//! entries newer than a reader's snapshot sequence are simply invisible,
//! so publishing writes into a shared memtable is safe before the new
//! sequence is published.

use ldc_obs::lockcheck::{RwLock, RwLockReadGuard};

use crate::skiplist::SkipList;
use crate::types::{
    compare_internal_keys, encode_internal_key, parse_trailer, user_key, SequenceNumber, ValueType,
    TYPE_FOR_SEEK,
};

/// Sentinel "null pointer" for the iterator cursor (mirrors the skiplist's
/// arena NIL).
const NIL: u32 = u32::MAX;

/// Outcome of a memtable point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// The key is live with this value.
    Found(Vec<u8>),
    /// The key was deleted (tombstone) — stop searching older levels.
    Deleted,
    /// The memtable knows nothing about this key.
    NotFound,
}

/// Ordered in-memory buffer of recent writes.
pub struct MemTable {
    list: RwLock<SkipList>,
}

impl MemTable {
    /// Creates an empty memtable; `seed` determinizes skiplist heights.
    pub fn new(seed: u64) -> Self {
        Self {
            list: RwLock::new("lsm/memtable::list", SkipList::new(seed)),
        }
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.list.read().len()
    }

    /// Whether no entries exist.
    pub fn is_empty(&self) -> bool {
        self.list.read().is_empty()
    }

    /// Approximate memory footprint, compared against the flush threshold.
    pub fn approximate_bytes(&self) -> usize {
        self.list.read().approximate_bytes()
    }

    /// Records a put or delete at sequence `seq`.
    pub fn add(&self, seq: SequenceNumber, vt: ValueType, key: &[u8], value: &[u8]) {
        let ikey = encode_internal_key(key, seq, vt);
        self.list.write().insert(ikey, value.to_vec());
    }

    /// Looks up `key` as of `snapshot` (inclusive).
    pub fn get(&self, key: &[u8], snapshot: SequenceNumber) -> LookupResult {
        let probe = encode_internal_key(key, snapshot, TYPE_FOR_SEEK);
        let list = self.list.read();
        let mut it = list.iter();
        it.seek(&probe);
        if !it.valid() || user_key(it.key()) != key {
            return LookupResult::NotFound;
        }
        let (_, vt) = parse_trailer(it.key());
        match vt {
            ValueType::Value => LookupResult::Found(it.value().to_vec()),
            ValueType::Deletion => LookupResult::Deleted,
        }
    }

    /// Iterator over internal entries in sorted order. Holds the memtable's
    /// read lock for its lifetime: concurrent writers queue behind it.
    pub fn iter(&self) -> MemTableIter<'_> {
        MemTableIter {
            guard: self.list.read(),
            node: NIL,
        }
    }
}

/// Iterator over a memtable's internal entries. Owns a read guard on the
/// skiplist, so the view is stable even while the shared memtable keeps
/// accepting writes between this iterator's method calls.
pub struct MemTableIter<'a> {
    guard: RwLockReadGuard<'a, SkipList>,
    node: u32,
}

impl MemTableIter<'_> {
    /// Whether positioned at an entry.
    pub fn valid(&self) -> bool {
        self.node != NIL
    }

    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        self.node = self.guard.first();
    }

    /// Positions at the first entry with internal key >= `target`.
    pub fn seek(&mut self, target: &[u8]) {
        self.node = self.guard.lower_bound(target);
    }

    /// Advances.
    pub fn next(&mut self) {
        debug_assert!(self.valid());
        self.node = self.guard.successor(self.node);
    }

    /// Current internal key.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid());
        self.guard.node_key(self.node)
    }

    /// Current value (empty for tombstones).
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid());
        self.guard.node_value(self.node)
    }
}

/// Checks memtable iteration order in tests and debug assertions.
pub fn assert_sorted(mem: &MemTable) {
    let mut it = mem.iter();
    it.seek_to_first();
    let mut prev: Option<Vec<u8>> = None;
    while it.valid() {
        if let Some(p) = &prev {
            assert!(
                compare_internal_keys(p, it.key()).is_lt(),
                "memtable out of order"
            );
        }
        prev = Some(it.key().to_vec());
        it.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_latest_visible_version() {
        let mem = MemTable::new(1);
        mem.add(1, ValueType::Value, b"k", b"v1");
        mem.add(5, ValueType::Value, b"k", b"v2");
        assert_eq!(mem.get(b"k", 100), LookupResult::Found(b"v2".to_vec()));
        // A snapshot between the two versions sees the old value.
        assert_eq!(mem.get(b"k", 3), LookupResult::Found(b"v1".to_vec()));
        // A snapshot before the first write sees nothing.
        assert_eq!(mem.get(b"k", 0), LookupResult::NotFound);
    }

    #[test]
    fn tombstones_shadow_older_values() {
        let mem = MemTable::new(1);
        mem.add(1, ValueType::Value, b"k", b"v");
        mem.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(mem.get(b"k", 100), LookupResult::Deleted);
        assert_eq!(mem.get(b"k", 1), LookupResult::Found(b"v".to_vec()));
    }

    #[test]
    fn unknown_key_is_not_found() {
        let mem = MemTable::new(1);
        mem.add(1, ValueType::Value, b"a", b"v");
        assert_eq!(mem.get(b"b", 100), LookupResult::NotFound);
        // Prefix of an existing key is a different key.
        assert_eq!(mem.get(b"", 100), LookupResult::NotFound);
    }

    #[test]
    fn iterator_walks_all_versions_sorted() {
        let mem = MemTable::new(1);
        mem.add(3, ValueType::Value, b"b", b"b3");
        mem.add(1, ValueType::Value, b"a", b"a1");
        mem.add(2, ValueType::Deletion, b"a", b"");
        assert_sorted(&mem);
        let mut it = mem.iter();
        it.seek_to_first();
        // a@2 (deletion, newer) precedes a@1, then b@3.
        assert_eq!(user_key(it.key()), b"a");
        assert_eq!(parse_trailer(it.key()), (2, ValueType::Deletion));
        it.next();
        assert_eq!(parse_trailer(it.key()), (1, ValueType::Value));
        it.next();
        assert_eq!(user_key(it.key()), b"b");
        it.next();
        assert!(!it.valid());
    }

    #[test]
    fn approximate_bytes_grows() {
        let mem = MemTable::new(1);
        let before = mem.approximate_bytes();
        mem.add(1, ValueType::Value, b"key", &vec![0u8; 1000]);
        assert!(mem.approximate_bytes() >= before + 1000);
        assert_eq!(mem.len(), 1);
        assert!(!mem.is_empty());
    }

    #[test]
    fn shared_reads_see_writes_made_after_pinning() {
        // Sequence visibility, not the lock, is the isolation mechanism: a
        // reader probing with an old snapshot sequence must not see entries
        // added afterwards, even though they share one skiplist.
        let mem = std::sync::Arc::new(MemTable::new(1));
        mem.add(1, ValueType::Value, b"k", b"old");
        let pinned = std::sync::Arc::clone(&mem);
        mem.add(2, ValueType::Value, b"k", b"new");
        assert_eq!(pinned.get(b"k", 1), LookupResult::Found(b"old".to_vec()));
        assert_eq!(pinned.get(b"k", 2), LookupResult::Found(b"new".to_vec()));
    }
}
