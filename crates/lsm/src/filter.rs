//! SSTable-level Bloom filters.
//!
//! The paper (§III-B3, §IV-H) relies on per-SSTable Bloom filters to keep
//! LDC's extra slice lookups cheap: a read that misses the filter skips the
//! table entirely. Bits-per-key is configurable to reproduce Fig 12(c)/(f)
//! and Fig 13. The construction matches LevelDB's double-hashing Bloom.

/// A Bloom filter over a table's user keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    /// Bit array; last byte stores the probe count `k`.
    data: Vec<u8>,
}

impl BloomFilter {
    /// Builds a filter for `keys` at `bits_per_key` (0 disables filtering:
    /// every query answers "maybe").
    pub fn build<K: AsRef<[u8]>>(keys: &[K], bits_per_key: usize) -> Self {
        if bits_per_key == 0 || keys.is_empty() {
            return Self { data: Vec::new() };
        }
        // k = bits_per_key * ln2, clamped like LevelDB.
        let k = ((bits_per_key as f64 * 0.69) as usize).clamp(1, 30);
        let bits = (keys.len() * bits_per_key).max(64);
        let bytes = bits.div_ceil(8);
        let bits = bytes * 8;
        let mut data = vec![0u8; bytes + 1];
        data[bytes] = k as u8;
        for key in keys {
            let mut h = bloom_hash(key.as_ref());
            let delta = h.rotate_right(17);
            for _ in 0..k {
                let bit = (h as usize) % bits;
                data[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(delta);
            }
        }
        Self { data }
    }

    /// Reconstructs a filter from its serialized form.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self { data }
    }

    /// Serialized form (stored in the table's filter block).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Size in bytes (Fig 13's filter-size series).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Whether `key` may be present. `false` is definitive.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.data.len() < 2 {
            return true; // empty/disabled filter never excludes
        }
        let bytes = self.data.len() - 1;
        let bits = bytes * 8;
        let k = self.data[bytes] as usize;
        if k > 30 {
            return true; // reserved for future encodings
        }
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bit = (h as usize) % bits;
            if self.data[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

/// LevelDB's Bloom hash (a Murmur-like 32-bit hash, seed 0xbc9f1d34).
fn bloom_hash(data: &[u8]) -> u32 {
    const SEED: u32 = 0xbc9f_1d34;
    const M: u32 = 0xc6a4_a793;
    let n = data.len() as u32;
    let mut h = SEED ^ n.wrapping_mul(M);
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let w = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 16;
    }
    let rest = chunks.remainder();
    match rest.len() {
        3 => {
            h = h.wrapping_add(u32::from(rest[2]) << 16);
            h = h.wrapping_add(u32::from(rest[1]) << 8);
            h = h.wrapping_add(u32::from(rest[0]));
            h = h.wrapping_mul(M);
            h ^= h >> 24;
        }
        2 => {
            h = h.wrapping_add(u32::from(rest[1]) << 8);
            h = h.wrapping_add(u32::from(rest[0]));
            h = h.wrapping_mul(M);
            h ^= h >> 24;
        }
        1 => {
            h = h.wrapping_add(u32::from(rest[0]));
            h = h.wrapping_mul(M);
            h ^= h >> 24;
        }
        _ => {}
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        for bits in [4, 10, 16, 64] {
            let ks = keys(2000);
            let f = BloomFilter::build(&ks, bits);
            for k in &ks {
                assert!(f.may_contain(k), "false negative at {bits} bits/key");
            }
        }
    }

    #[test]
    fn false_positive_rate_shrinks_with_bits() {
        let ks = keys(5000);
        let probes: Vec<Vec<u8>> = (0..5000)
            .map(|i| format!("absent{i:08}").into_bytes())
            .collect();
        let fp_rate = |bits: usize| {
            let f = BloomFilter::build(&ks, bits);
            probes.iter().filter(|p| f.may_contain(p)).count() as f64 / probes.len() as f64
        };
        let fp4 = fp_rate(4);
        let fp10 = fp_rate(10);
        let fp16 = fp_rate(16);
        assert!(fp10 < fp4, "10 bits ({fp10}) should beat 4 bits ({fp4})");
        assert!(fp16 <= fp10);
        assert!(fp10 < 0.05, "10 bits/key should be ~1%: {fp10}");
    }

    #[test]
    fn filter_size_tracks_bits_per_key() {
        let ks = keys(1000);
        let f8 = BloomFilter::build(&ks, 8);
        let f64 = BloomFilter::build(&ks, 64);
        assert!(f64.size_bytes() > 7 * f8.size_bytes());
        // ~ n*bits/8 bytes.
        assert!((f8.size_bytes() as i64 - 1001).unsigned_abs() < 64);
    }

    #[test]
    fn zero_bits_disables_filtering() {
        let ks = keys(10);
        let f = BloomFilter::build(&ks, 0);
        assert_eq!(f.size_bytes(), 0);
        assert!(f.may_contain(b"anything"));
    }

    #[test]
    fn empty_key_set() {
        let f = BloomFilter::build::<Vec<u8>>(&[], 10);
        assert!(f.may_contain(b"x"));
    }

    #[test]
    fn serialization_roundtrip() {
        let ks = keys(100);
        let f = BloomFilter::build(&ks, 10);
        let g = BloomFilter::from_bytes(f.as_bytes().to_vec());
        for k in &ks {
            assert!(g.may_contain(k));
        }
        assert_eq!(f, g);
    }
}
