// Fixture (checked as crates/lsm/src/compaction.rs): the engine must not
// reach up into the LDC policy layer.
use ldc_core::policy::CompactionPolicy; // flagged

fn pick(policy: &dyn CompactionPolicy) {
    policy.pick();
}

fn score(level: u32) -> f64 {
    ldc_core::scoring::level_score(level) // flagged: qualified path, no `use`
}
