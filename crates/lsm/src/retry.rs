//! Transient-read retry at the storage boundary.
//!
//! Flash devices routinely report *recoverable* read failures (controller
//! busy, ECC retry passes) that succeed on a later attempt. [`RetryStorage`]
//! wraps any [`StorageBackend`] and retries reads that fail with a
//! [`SsdError`] whose [`SsdError::is_transient`] is true, up to a bounded
//! attempt budget. Each retry charges a deterministic backoff — linear in
//! the attempt number plus seeded jitter — to the device's virtual clock,
//! emits an [`EventKind::Retry`] observability event, and bumps the
//! degraded-mode metrics. Permanent errors and write-path operations pass
//! through untouched: only reads are retried.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use ldc_obs::{Event, EventKind, MetricsRegistry, SharedSink};
use ldc_ssd::{IoClass, SsdDevice, SsdResult, StorageBackend};

/// Deterministic jitter source (splitmix64). Lock-free so the storage
/// wrapper stays `Sync` without introducing a lock the lint would need to
/// order.
#[derive(Debug)]
struct JitterRng {
    state: AtomicU64,
}

impl JitterRng {
    fn new(seed: u64) -> Self {
        Self {
            state: AtomicU64::new(seed),
        }
    }

    fn next(&self) -> u64 {
        // splitmix64: every call advances the state by the golden-gamma
        // constant; fetch_add keeps concurrent callers deterministic in
        // aggregate (the engine is single-threaded, so in practice the
        // sequence is exactly reproducible per seed).
        let z = self
            .state
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Storage decorator that retries transient read errors with bounded,
/// virtual-clock-charged backoff.
pub struct RetryStorage {
    inner: Arc<dyn StorageBackend>,
    /// Read attempts including the first; 1 disables retrying.
    attempts: u32,
    /// Base backoff in nanoseconds; retry `n` waits `base * n + jitter`.
    backoff_ns: u64,
    rng: JitterRng,
    sink: SharedSink,
    metrics: Arc<MetricsRegistry>,
}

impl std::fmt::Debug for RetryStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryStorage")
            .field("attempts", &self.attempts)
            .field("backoff_ns", &self.backoff_ns)
            .finish_non_exhaustive()
    }
}

impl RetryStorage {
    /// Wraps `inner`. `seed` makes the jitter sequence reproducible.
    pub fn new(
        inner: Arc<dyn StorageBackend>,
        attempts: u32,
        backoff_ns: u64,
        seed: u64,
        sink: SharedSink,
        metrics: Arc<MetricsRegistry>,
    ) -> Arc<Self> {
        Arc::new(Self {
            inner,
            attempts: attempts.max(1),
            backoff_ns,
            rng: JitterRng::new(seed),
            sink,
            metrics,
        })
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn StorageBackend> {
        &self.inner
    }

    /// Runs `op`, retrying transient failures with backoff. `op` receives
    /// the attempt number (0-based) so callers can log it if useful.
    fn with_retries<T>(&self, mut op: impl FnMut() -> SsdResult<T>) -> SsdResult<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < self.attempts => {
                    attempt += 1;
                    let jitter = self
                        .rng
                        .next()
                        .checked_rem(self.backoff_ns / 4 + 1)
                        .unwrap_or_default();
                    let delay = self
                        .backoff_ns
                        .saturating_mul(u64::from(attempt))
                        .saturating_add(jitter);
                    let clock = self.inner.device().clock().clone();
                    let start = clock.now();
                    let end = clock.advance(delay);
                    self.metrics.record_transient_retry();
                    self.metrics.record_retry_backoff(delay);
                    if self.sink.enabled() {
                        self.sink.record(
                            Event::span(EventKind::Retry, start, end)
                                .files(attempt, 0)
                                .bytes(delay, 0),
                        );
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl StorageBackend for RetryStorage {
    fn write_file(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
        self.inner.write_file(name, data, class)
    }

    fn append(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
        self.inner.append(name, data, class)
    }

    fn read(&self, name: &str, offset: u64, len: u64, class: IoClass) -> SsdResult<Bytes> {
        self.with_retries(|| self.inner.read(name, offset, len, class))
    }

    fn read_sequential(
        &self,
        name: &str,
        offset: u64,
        len: u64,
        class: IoClass,
    ) -> SsdResult<Bytes> {
        self.with_retries(|| self.inner.read_sequential(name, offset, len, class))
    }

    fn read_all(&self, name: &str, class: IoClass) -> SsdResult<Bytes> {
        self.with_retries(|| self.inner.read_all(name, class))
    }

    fn size(&self, name: &str) -> SsdResult<u64> {
        self.inner.size(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn delete(&self, name: &str) -> SsdResult<()> {
        self.inner.delete(name)
    }

    fn rename(&self, from: &str, to: &str) -> SsdResult<()> {
        self.inner.rename(from, to)
    }

    fn sync(&self, name: &str) -> SsdResult<()> {
        self.inner.sync(name)
    }

    fn synced_len(&self, name: &str) -> SsdResult<u64> {
        self.inner.synced_len(name)
    }

    fn truncate(&self, name: &str, len: u64) -> SsdResult<()> {
        self.inner.truncate(name, len)
    }

    fn link_file(&self, from: &str, to: &str, class: IoClass) -> SsdResult<()> {
        // Write-path operation: pass through unretried like the others.
        self.inner.link_file(from, to, class)
    }

    fn list_dir(&self, prefix: &str) -> Vec<String> {
        self.inner.list_dir(prefix)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn device(&self) -> Arc<SsdDevice> {
        self.inner.device()
    }
}

/// A transient error that exhausts the retry budget is returned unchanged
/// so callers can distinguish "device kept saying retry" from permanent
/// failures; by then the retries have already been charged to the clock.
#[cfg(test)]
mod tests {
    use super::*;
    use ldc_obs::RingBufferSink;
    use ldc_ssd::{MemStorage, SsdConfig, SsdDevice, SsdError};
    use std::sync::Mutex;

    /// Backend whose reads fail transiently until `heal_after` attempts.
    struct Flaky {
        inner: Arc<MemStorage>,
        heal_after: u32,
        seen: Mutex<u32>,
        permanent: bool,
    }

    impl StorageBackend for Flaky {
        fn write_file(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
            self.inner.write_file(name, data, class)
        }
        fn append(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
            self.inner.append(name, data, class)
        }
        fn read(&self, name: &str, offset: u64, len: u64, class: IoClass) -> SsdResult<Bytes> {
            let mut seen = self.seen.lock().unwrap();
            if *seen < self.heal_after {
                *seen += 1;
                return if self.permanent {
                    Err(SsdError::Io("hard failure".into()))
                } else {
                    Err(SsdError::TransientIo("ecc retry".into()))
                };
            }
            self.inner.read(name, offset, len, class)
        }
        fn size(&self, name: &str) -> SsdResult<u64> {
            self.inner.size(name)
        }
        fn exists(&self, name: &str) -> bool {
            self.inner.exists(name)
        }
        fn delete(&self, name: &str) -> SsdResult<()> {
            self.inner.delete(name)
        }
        fn rename(&self, from: &str, to: &str) -> SsdResult<()> {
            self.inner.rename(from, to)
        }
        fn sync(&self, name: &str) -> SsdResult<()> {
            self.inner.sync(name)
        }
        fn list(&self) -> Vec<String> {
            self.inner.list()
        }
        fn device(&self) -> Arc<SsdDevice> {
            self.inner.device()
        }
    }

    fn flaky(heal_after: u32, permanent: bool) -> Arc<Flaky> {
        let inner = MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()));
        inner
            .write_file("f", b"0123456789", IoClass::Other)
            .unwrap();
        Arc::new(Flaky {
            inner,
            heal_after,
            seen: Mutex::new(0),
            permanent,
        })
    }

    fn retrying(
        backend: Arc<Flaky>,
        attempts: u32,
    ) -> (Arc<RetryStorage>, Arc<RingBufferSink>, Arc<MetricsRegistry>) {
        let sink = Arc::new(RingBufferSink::new(64));
        let metrics = Arc::new(MetricsRegistry::new());
        let shared: SharedSink = sink.clone();
        let storage = RetryStorage::new(backend, attempts, 1_000, 42, shared, metrics.clone());
        (storage, sink, metrics)
    }

    #[test]
    fn transient_errors_heal_within_budget() {
        let (s, sink, metrics) = retrying(flaky(2, false), 4);
        let clock_before = s.device().clock().now();
        let data = s.read("f", 0, 4, IoClass::UserRead).unwrap();
        assert_eq!(data.as_ref(), b"0123");
        assert_eq!(metrics.degraded_counters().transient_retries, 2);
        let events = sink.events();
        let retries: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Retry)
            .collect();
        assert_eq!(retries.len(), 2);
        // Backoff was charged to the virtual clock and grows per attempt.
        assert!(s.device().clock().now() > clock_before);
        assert!(retries[1].input_bytes >= retries[0].input_bytes);
        // Attempt numbers are recorded 1-based.
        assert_eq!(retries[0].input_files, 1);
        assert_eq!(retries[1].input_files, 2);
    }

    #[test]
    fn budget_exhaustion_surfaces_transient_error() {
        let (s, _sink, metrics) = retrying(flaky(100, false), 3);
        let err = s.read("f", 0, 4, IoClass::UserRead).unwrap_err();
        assert!(err.is_transient());
        // 3 attempts = 2 retries charged.
        assert_eq!(metrics.degraded_counters().transient_retries, 2);
    }

    #[test]
    fn permanent_errors_never_retry() {
        let (s, sink, metrics) = retrying(flaky(1, true), 4);
        let err = s.read("f", 0, 4, IoClass::UserRead).unwrap_err();
        assert!(matches!(err, SsdError::Io(_)));
        assert_eq!(metrics.degraded_counters().transient_retries, 0);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let delays = |seed: u64| {
            let sink = Arc::new(RingBufferSink::new(64));
            let metrics = Arc::new(MetricsRegistry::new());
            let s = RetryStorage::new(
                flaky(3, false),
                8,
                1_000,
                seed,
                sink.clone() as SharedSink,
                metrics,
            );
            s.read("f", 0, 4, IoClass::UserRead).unwrap();
            sink.events()
                .iter()
                .map(|e| e.input_bytes)
                .collect::<Vec<_>>()
        };
        assert_eq!(delays(7), delays(7));
        assert_ne!(delays(7), delays(8));
    }

    #[test]
    fn attempts_of_one_disables_retrying() {
        let (s, _sink, metrics) = retrying(flaky(1, false), 1);
        assert!(s.read("f", 0, 4, IoClass::UserRead).is_err());
        assert_eq!(metrics.degraded_counters().transient_retries, 0);
    }
}
