//! Engine error type.

use std::fmt;

use ldc_ssd::SsdError;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the LSM engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Underlying storage/device error.
    Storage(SsdError),
    /// On-disk data failed validation (bad CRC, malformed block, ...).
    Corruption(String),
    /// The database is in a state that forbids the operation.
    InvalidState(String),
    /// Caller error (bad options, empty key, ...).
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SsdError> for Error {
    fn from(e: SsdError) -> Self {
        Error::Storage(e)
    }
}

/// Shorthand for corruption errors.
pub fn corruption(msg: impl Into<String>) -> Error {
    Error::Corruption(msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: Error = SsdError::DeviceFull.into();
        assert!(e.to_string().contains("full"));
        assert!(corruption("bad crc").to_string().contains("bad crc"));
    }
}
