//! Page-mapping flash translation layer with greedy garbage collection.
//!
//! The FTL is the part of the device model that produces the two SSD
//! behaviours the paper's argument rests on:
//!
//! * **device-level write amplification** — overwrites invalidate flash
//!   pages; reclaiming them forces relocation of still-valid neighbours, so
//!   NAND writes exceed host writes, and
//! * **wear** — every reclaim erases a block, consuming one of its limited
//!   program/erase cycles.
//!
//! The model is a standard page-mapped FTL: writes append to an open block,
//! a block is erased only when garbage collection selects it (greedy victim
//! selection: fewest valid pages), and TRIM drops mappings so deleted files
//! stop contributing to relocation traffic.

use crate::config::SsdConfig;

const UNMAPPED: u64 = u64::MAX;

/// Block lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    /// Erased and on the free list.
    Free,
    /// Currently receiving writes.
    Open,
    /// Fully programmed; eligible as a GC victim.
    Full,
    /// Being garbage-collected right now (excluded from victim selection).
    Collecting,
}

#[derive(Debug, Clone)]
struct BlockInfo {
    state: BlockState,
    /// Number of pages in this block holding live (mapped) data.
    valid: u64,
    /// Next page index to program within the block.
    write_ptr: u64,
    /// Program/erase cycles consumed so far.
    erase_count: u64,
}

/// Counters exported by the FTL.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Pages written on behalf of the host.
    pub host_pages_written: u64,
    /// Pages relocated internally by garbage collection.
    pub gc_pages_relocated: u64,
    /// Erase operations performed.
    pub erases: u64,
    /// TRIM'd (explicitly invalidated) pages.
    pub pages_trimmed: u64,
}

impl FtlStats {
    /// Device-level write amplification factor: NAND writes / host writes.
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages_written == 0 {
            1.0
        } else {
            (self.host_pages_written + self.gc_pages_relocated) as f64
                / self.host_pages_written as f64
        }
    }
}

/// Result of a host page write: how many extra pages GC had to relocate.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOutcome {
    /// Pages moved by garbage collection as a consequence of this write.
    pub relocated_pages: u64,
    /// Blocks erased as a consequence of this write.
    pub erased_blocks: u64,
}

/// Page-mapping flash translation layer.
#[derive(Debug)]
pub struct Ftl {
    pages_per_block: u64,
    gc_threshold: usize,
    /// logical page -> physical page (`UNMAPPED` if absent).
    page_map: Vec<u64>,
    /// physical page -> logical page (`UNMAPPED` if invalid).
    rev_map: Vec<u64>,
    blocks: Vec<BlockInfo>,
    free_blocks: Vec<u64>,
    open_block: u64,
    stats: FtlStats,
}

impl Ftl {
    /// Builds an FTL with the geometry described by `cfg`.
    pub fn new(cfg: &SsdConfig) -> Self {
        let logical_pages = cfg.logical_pages() as usize;
        let physical_blocks = cfg.physical_blocks();
        let physical_pages = (physical_blocks * cfg.pages_per_block) as usize;
        let blocks = vec![
            BlockInfo {
                state: BlockState::Free,
                valid: 0,
                write_ptr: 0,
                erase_count: 0,
            };
            physical_blocks as usize
        ];
        // Free list in descending order so block 0 opens first (pop from end).
        let mut free_blocks: Vec<u64> = (0..physical_blocks).rev().collect();
        let open_block = free_blocks.pop().expect("at least one block");
        let mut ftl = Self {
            pages_per_block: cfg.pages_per_block,
            gc_threshold: cfg.gc_free_block_threshold.max(1),
            page_map: vec![UNMAPPED; logical_pages],
            rev_map: vec![UNMAPPED; physical_pages],
            blocks,
            free_blocks,
            open_block,
            stats: FtlStats::default(),
        };
        ftl.blocks[open_block as usize].state = BlockState::Open;
        ftl
    }

    /// Number of logical pages the FTL can map.
    pub fn logical_pages(&self) -> u64 {
        self.page_map.len() as u64
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Number of logical pages currently mapped (live data).
    pub fn live_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.valid).sum()
    }

    /// Mean erase count over all blocks.
    pub fn mean_erase_count(&self) -> f64 {
        let total: u64 = self.blocks.iter().map(|b| b.erase_count).sum();
        total as f64 / self.blocks.len() as f64
    }

    /// Maximum erase count over all blocks.
    pub fn max_erase_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0)
    }

    /// Writes (or overwrites) logical page `lpn`, running GC as needed.
    ///
    /// Returns the relocation/erase work triggered, so the device can charge
    /// the corresponding virtual time.
    pub fn write_page(&mut self, lpn: u64) -> WriteOutcome {
        debug_assert!((lpn as usize) < self.page_map.len(), "lpn out of range");
        let mut outcome = WriteOutcome::default();
        self.invalidate(lpn);
        self.program(lpn, &mut outcome);
        self.stats.host_pages_written += 1;
        self.maybe_gc(&mut outcome);
        outcome
    }

    /// Drops the mapping for `lpn` (TRIM); reclaiming is left to future GC.
    pub fn trim_page(&mut self, lpn: u64) {
        if self.invalidate(lpn) {
            self.stats.pages_trimmed += 1;
        }
    }

    fn invalidate(&mut self, lpn: u64) -> bool {
        let ppn = self.page_map[lpn as usize];
        if ppn == UNMAPPED {
            return false;
        }
        self.page_map[lpn as usize] = UNMAPPED;
        self.rev_map[ppn as usize] = UNMAPPED;
        let block = (ppn / self.pages_per_block) as usize;
        debug_assert!(self.blocks[block].valid > 0);
        self.blocks[block].valid -= 1;
        true
    }

    /// Programs `lpn` into the open block, rotating to a fresh block when the
    /// open one fills up.
    fn program(&mut self, lpn: u64, outcome: &mut WriteOutcome) {
        let block_id = self.open_block;
        let block = &mut self.blocks[block_id as usize];
        debug_assert_eq!(block.state, BlockState::Open);
        debug_assert!(block.write_ptr < self.pages_per_block);
        let ppn = block_id * self.pages_per_block + block.write_ptr;
        block.write_ptr += 1;
        block.valid += 1;
        self.page_map[lpn as usize] = ppn;
        self.rev_map[ppn as usize] = lpn;
        if block.write_ptr == self.pages_per_block {
            block.state = BlockState::Full;
            self.rotate_open_block(outcome);
        }
    }

    fn rotate_open_block(&mut self, outcome: &mut WriteOutcome) {
        if self.free_blocks.is_empty() {
            // The spare block guaranteed by `SsdConfig::physical_blocks`
            // means this can only be reached if GC cannot reclaim anything,
            // i.e. the host overcommitted the logical space. Reclaim
            // aggressively before giving up.
            self.collect_garbage(outcome);
        }
        let next = self
            .free_blocks
            .pop()
            .expect("FTL out of blocks: logical space overcommitted");
        self.blocks[next as usize].state = BlockState::Open;
        self.open_block = next;
    }

    fn maybe_gc(&mut self, outcome: &mut WriteOutcome) {
        while self.free_blocks.len() < self.gc_threshold {
            if !self.collect_garbage(outcome) {
                break;
            }
        }
    }

    /// One round of greedy GC. Returns false if no progress is possible.
    fn collect_garbage(&mut self, outcome: &mut WriteOutcome) -> bool {
        let victim = match self.pick_victim() {
            Some(v) => v,
            None => return false,
        };
        // Exclude the victim from nested victim selection: relocation below
        // can fill the open block and recurse into another GC round.
        self.blocks[victim as usize].state = BlockState::Collecting;
        // Relocate live pages out of the victim.
        let base = victim * self.pages_per_block;
        for offset in 0..self.pages_per_block {
            let ppn = base + offset;
            let lpn = self.rev_map[ppn as usize];
            if lpn != UNMAPPED {
                // Invalidate in place, then program elsewhere.
                self.rev_map[ppn as usize] = UNMAPPED;
                self.blocks[victim as usize].valid -= 1;
                self.page_map[lpn as usize] = UNMAPPED;
                self.program(lpn, outcome);
                self.stats.gc_pages_relocated += 1;
                outcome.relocated_pages += 1;
            }
        }
        // Erase the victim.
        let block = &mut self.blocks[victim as usize];
        debug_assert_eq!(block.valid, 0);
        block.state = BlockState::Free;
        block.write_ptr = 0;
        block.erase_count += 1;
        self.free_blocks.push(victim);
        self.stats.erases += 1;
        outcome.erased_blocks += 1;
        true
    }

    /// Greedy victim selection: the full block with the fewest valid pages.
    /// Fully-valid blocks are skipped — erasing them makes no progress.
    fn pick_victim(&self) -> Option<u64> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(id, b)| {
                b.state == BlockState::Full
                    && b.valid < self.pages_per_block
                    && *id as u64 != self.open_block
            })
            .min_by_key(|(_, b)| b.valid)
            .map(|(id, _)| id as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ftl() -> Ftl {
        Ftl::new(&SsdConfig::tiny_for_tests())
    }

    #[test]
    fn fresh_ftl_has_no_live_pages() {
        let ftl = tiny_ftl();
        assert_eq!(ftl.live_pages(), 0);
        assert_eq!(ftl.stats(), FtlStats::default());
        assert_eq!(ftl.stats().write_amplification(), 1.0);
    }

    #[test]
    fn sequential_writes_map_pages() {
        let mut ftl = tiny_ftl();
        for lpn in 0..100 {
            ftl.write_page(lpn);
        }
        assert_eq!(ftl.live_pages(), 100);
        assert_eq!(ftl.stats().host_pages_written, 100);
    }

    #[test]
    fn overwrite_does_not_grow_live_pages() {
        let mut ftl = tiny_ftl();
        for _ in 0..10 {
            ftl.write_page(7);
        }
        assert_eq!(ftl.live_pages(), 1);
        assert_eq!(ftl.stats().host_pages_written, 10);
    }

    #[test]
    fn trim_releases_pages() {
        let mut ftl = tiny_ftl();
        for lpn in 0..50 {
            ftl.write_page(lpn);
        }
        for lpn in 0..50 {
            ftl.trim_page(lpn);
        }
        assert_eq!(ftl.live_pages(), 0);
        assert_eq!(ftl.stats().pages_trimmed, 50);
        // Trimming an unmapped page is a no-op.
        ftl.trim_page(0);
        assert_eq!(ftl.stats().pages_trimmed, 50);
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_wear() {
        let mut ftl = tiny_ftl();
        let logical = ftl.logical_pages();
        // Fill the logical space, then overwrite it several times over.
        for round in 0..5 {
            for lpn in 0..logical {
                let _ = ftl.write_page((lpn + round) % logical);
            }
        }
        let stats = ftl.stats();
        assert!(stats.erases > 0, "GC must have erased blocks");
        assert!(stats.write_amplification() >= 1.0);
        assert!(ftl.max_erase_count() >= 1);
        assert!(ftl.mean_erase_count() > 0.0);
        // Live data can never exceed the logical space.
        assert!(ftl.live_pages() <= logical);
    }

    #[test]
    fn gc_preserves_all_live_mappings() {
        let mut ftl = tiny_ftl();
        let logical = ftl.logical_pages();
        // Keep half the space live, churn the other half to force GC.
        for lpn in 0..logical / 2 {
            ftl.write_page(lpn);
        }
        for _ in 0..10 {
            for lpn in logical / 2..logical {
                ftl.write_page(lpn);
            }
        }
        assert!(ftl.stats().erases > 0);
        assert_eq!(ftl.live_pages(), logical);
        // Every logical page must still be mapped to a unique physical page.
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..logical as usize {
            let ppn = ftl.page_map[lpn];
            assert_ne!(ppn, UNMAPPED, "lpn {lpn} lost its mapping");
            assert!(seen.insert(ppn), "ppn {ppn} mapped twice");
            assert_eq!(ftl.rev_map[ppn as usize], lpn as u64);
        }
    }

    #[test]
    fn scattered_overwrites_amplify_writes() {
        // Overwriting a strided subset leaves every block partially valid,
        // so greedy GC must relocate the cold neighbours -> WAF above 1.
        // (A *contiguous* hot region would fully invalidate whole blocks and
        // keep WAF at 1, which greedy GC handles optimally.)
        let mut ftl = tiny_ftl();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write_page(lpn);
        }
        for round in 0..50 {
            for i in 0..logical / 8 {
                ftl.write_page((i * 8 + round % 8) % logical);
            }
        }
        assert!(
            ftl.stats().write_amplification() > 1.05,
            "expected visible WAF, got {}",
            ftl.stats().write_amplification()
        );
    }
}
