//! Over-the-wire YCSB benchmark (`ldc-bench ycsb-net`).
//!
//! Drives the six YCSB core workloads (A–F) against a real `ldc-server`
//! over loopback TCP, in both compaction modes, two ways per workload:
//!
//! * **Closed loop** — one strict request/response connection. Latency is
//!   the *virtual* engine service time each response carries
//!   (`NetMeta::service_ns`), so the closed-loop numbers are a pure
//!   function of the op stream: same seed ⇒ byte-identical JSON. Host
//!   scheduling noise never leaks in.
//! * **Open loop** — a deterministic [`ArrivalSchedule`] decides every
//!   send time in advance, a split sender/receiver pair decouples issue
//!   from completion, and latency is host wall-clock from scheduled send
//!   to reply. Overload shows up as `Overloaded` rejections (counted,
//!   never fatal) and as queue depth in the sampled per-shard series.
//!
//! Results land in `BENCH_net.json`. `--closed-only` skips the open-loop
//! phases so the whole file is deterministic — CI runs it twice and
//! compares bytes to prove the stack replays.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ldc_client::proto::{Request, Status};
use ldc_client::Client;
use ldc_server::{LdcServer, ServerConfig};
use ldc_workload::{ArrivalSchedule, Histogram, ReadKind, Sampler, WorkloadSpec};

use crate::cli::CommonArgs;
use crate::experiment::paper_scaled_options;

/// Flags specific to `ycsb-net`, layered over [`CommonArgs`].
#[derive(Debug, Clone)]
pub struct NetBenchArgs {
    /// Common seed/ops/value-size flags.
    pub common: CommonArgs,
    /// Shard count (the paper's multi-instance axis; floor 1).
    pub shards: usize,
    /// Per-shard admission queue bound.
    pub queue_capacity: usize,
    /// Open-loop offered load, requests per second.
    pub rate_per_sec: f64,
    /// Skip open-loop phases so the output is fully deterministic.
    pub closed_only: bool,
    /// Output path for the JSON report.
    pub out: String,
}

/// One deterministic operation of the generated YCSB stream.
enum NetOp {
    Insert { idx: u64, version: u64 },
    Read { idx: u64 },
    Scan { idx: u64, limit: u32 },
    Rmw { idx: u64, version: u64 },
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Uniform draw in `[0, 1)` from the top 53 bits of a xorshift step.
fn unit(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic YCSB op stream: same spec + seed ⇒ the same ops, on the
/// wire or off it. Mirrors the workload runner's structure (fill the key
/// space first, then distribution-chosen overwrites) and additionally
/// honors `rmw_ratio` for YCSB-F; op classes are drawn write / rmw / read.
struct OpGen<'a> {
    spec: &'a WorkloadSpec,
    sampler: Sampler,
    class_rng: u64,
    present: u64,
    version: u64,
}

impl<'a> OpGen<'a> {
    fn new(spec: &'a WorkloadSpec) -> Self {
        Self {
            spec,
            sampler: Sampler::new(spec.distribution.clone(), spec.seed),
            class_rng: (spec.seed ^ 0x00c0_ffee) | 1,
            present: spec.preload,
            version: 0,
        }
    }

    fn next(&mut self) -> NetOp {
        let spec = self.spec;
        let u = unit(&mut self.class_rng);
        if u < spec.write_ratio {
            let idx = if self.present < spec.key_space {
                let i = self.present;
                self.present += 1;
                i
            } else {
                self.sampler.sample(spec.key_space)
            };
            self.version += 1;
            return NetOp::Insert {
                idx,
                version: self.version,
            };
        }
        let space = self.present.max(1);
        let idx = self.sampler.sample(space);
        if u < spec.write_ratio + spec.rmw_ratio {
            self.version += 1;
            NetOp::Rmw {
                idx,
                version: self.version,
            }
        } else {
            match spec.read_kind {
                ReadKind::Point => NetOp::Read { idx },
                ReadKind::Range => NetOp::Scan {
                    idx,
                    limit: spec.scan_length as u32,
                },
            }
        }
    }
}

impl NetOp {
    /// The wire request for this op. RMW degrades to its write-back here:
    /// an open-loop driver cannot wait for the read half without closing
    /// the loop, which `WorkloadSpec::rmw_ratio` explicitly permits.
    fn to_request(&self, spec: &WorkloadSpec) -> Request {
        let codec = &spec.codec;
        match *self {
            NetOp::Insert { idx, version } | NetOp::Rmw { idx, version } => Request::Put {
                key: codec.key(idx),
                value: codec.value(idx, version),
            },
            NetOp::Read { idx } => Request::Get {
                key: codec.key(idx),
            },
            NetOp::Scan { idx, limit } => Request::Scan {
                start: codec.key(idx),
                limit,
            },
        }
    }
}

/// Virtual-time percentiles for one op class, as a JSON fragment.
fn class_json(name: &str, h: &Histogram) -> Option<String> {
    if h.count() == 0 {
        return None;
    }
    Some(format!(
        concat!(
            "\"{}\":{{\"count\":{},\"p50_us\":{:.1},\"p99_us\":{:.1},",
            "\"p999_us\":{:.1},\"max_us\":{:.1}}}"
        ),
        name,
        h.count(),
        h.percentile(50.0) as f64 / 1e3,
        h.percentile(99.0) as f64 / 1e3,
        h.percentile(99.9) as f64 / 1e3,
        h.max() as f64 / 1e3,
    ))
}

/// Closed-loop phase outcome; every field is deterministic per seed.
struct ClosedResult {
    ops: u64,
    reads: Histogram,
    writes: Histogram,
    scans: Histogram,
    rmws: Histogram,
    service_total_ns: u64,
    per_shard_completed: Vec<u64>,
}

impl ClosedResult {
    fn json(&self) -> String {
        let classes: Vec<String> = [
            ("reads", &self.reads),
            ("writes", &self.writes),
            ("scans", &self.scans),
            ("rmws", &self.rmws),
        ]
        .iter()
        .filter_map(|(n, h)| class_json(n, h))
        .collect();
        let per_shard: Vec<String> = self
            .per_shard_completed
            .iter()
            .map(|c| c.to_string())
            .collect();
        format!(
            concat!(
                "{{\"ops\":{},\"service_total_ns\":{},",
                "\"ops_per_virtual_sec\":{:.0},{},",
                "\"per_shard_completed\":[{}]}}"
            ),
            self.ops,
            self.service_total_ns,
            // Reads served entirely from cache consume zero virtual device
            // time; report 0 rather than a nonsense division.
            if self.service_total_ns == 0 {
                0.0
            } else {
                self.ops as f64 * 1e9 / self.service_total_ns as f64
            },
            classes.join(","),
            per_shard.join(","),
        )
    }
}

/// Preloads `spec.preload` keys through the wire, then returns the
/// per-shard completed counts so the measured phase can diff against them.
fn preload(client: &mut Client, spec: &WorkloadSpec) -> Result<(), String> {
    let codec = &spec.codec;
    for i in 0..spec.preload {
        client
            .put(&codec.key(i), &codec.value(i, 0))
            .map_err(|e| format!("preload key {i}: {e}"))?;
    }
    Ok(())
}

/// Strict request/response over one connection; latency is the virtual
/// `service_ns` carried by each reply. Closed-loop rejections are
/// impossible by construction (at most one queued request per shard), so
/// any error here is a real failure.
fn run_closed_loop(server: &LdcServer, spec: &WorkloadSpec) -> Result<ClosedResult, String> {
    let mut client = Client::connect(server.local_addr()).map_err(|e| format!("connect: {e}"))?;
    preload(&mut client, spec)?;
    let base: Vec<u64> = server
        .stats_snapshot()
        .shards
        .iter()
        .map(|s| s.completed)
        .collect();

    let mut gen = OpGen::new(spec);
    let codec = &spec.codec;
    let mut result = ClosedResult {
        ops: 0,
        reads: Histogram::new(),
        writes: Histogram::new(),
        scans: Histogram::new(),
        rmws: Histogram::new(),
        service_total_ns: 0,
        per_shard_completed: Vec::new(),
    };
    let err = |op: &str, e: ldc_client::NetError| format!("closed-loop {op}: {e}");
    for _ in 0..spec.ops {
        let service_ns = match gen.next() {
            NetOp::Insert { idx, version } => {
                let meta = client
                    .put(&codec.key(idx), &codec.value(idx, version))
                    .map_err(|e| err("put", e))?;
                result.writes.record(meta.service_ns);
                meta.service_ns
            }
            NetOp::Read { idx } => {
                let (_, meta) = client.get(&codec.key(idx)).map_err(|e| err("get", e))?;
                result.reads.record(meta.service_ns);
                meta.service_ns
            }
            NetOp::Scan { idx, limit } => {
                let (_, meta) = client
                    .scan(&codec.key(idx), limit)
                    .map_err(|e| err("scan", e))?;
                result.scans.record(meta.service_ns);
                meta.service_ns
            }
            NetOp::Rmw { idx, version } => {
                // The closed loop *can* express a real read-modify-write:
                // read, then write back; the op costs both halves.
                let key = codec.key(idx);
                let (_, read) = client.get(&key).map_err(|e| err("rmw get", e))?;
                let write = client
                    .put(&key, &codec.value(idx, version))
                    .map_err(|e| err("rmw put", e))?;
                let total = read.service_ns + write.service_ns;
                result.rmws.record(total);
                total
            }
        };
        result.service_total_ns += service_ns;
        result.ops += 1;
    }

    result.per_shard_completed = server
        .stats_snapshot()
        .shards
        .iter()
        .zip(&base)
        .map(|(s, b)| s.completed - b)
        .collect();
    Ok(result)
}

/// One periodic sample of the server's queues while open-loop load runs.
struct DepthSample {
    at_ms: u64,
    depths: Vec<u32>,
    completed: Vec<u64>,
}

/// Open-loop phase outcome. Host-time latencies: not deterministic, and
/// not claimed to be.
struct OpenResult {
    rate_per_sec: f64,
    sent: u64,
    ok: u64,
    rejected: u64,
    latency_ns: Histogram,
    wall_secs: f64,
    samples: Vec<DepthSample>,
}

impl OpenResult {
    fn json(&self) -> String {
        let samples: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                let depths: Vec<String> = s.depths.iter().map(|d| d.to_string()).collect();
                let completed: Vec<String> = s.completed.iter().map(|c| c.to_string()).collect();
                format!(
                    "{{\"at_ms\":{},\"queue_depth\":[{}],\"completed\":[{}]}}",
                    s.at_ms,
                    depths.join(","),
                    completed.join(",")
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"process\":\"poisson\",\"offered_per_sec\":{:.0},\"sent\":{},",
                "\"ok\":{},\"rejected\":{},\"achieved_per_sec\":{:.0},",
                "\"wall_secs\":{:.3},\"p50_us\":{:.1},\"p99_us\":{:.1},",
                "\"p999_us\":{:.1},\"shard_series\":[{}]}}"
            ),
            self.rate_per_sec,
            self.sent,
            self.ok,
            self.rejected,
            self.ok as f64 / self.wall_secs.max(1e-9),
            self.wall_secs,
            self.latency_ns.percentile(50.0) as f64 / 1e3,
            self.latency_ns.percentile(99.0) as f64 / 1e3,
            self.latency_ns.percentile(99.9) as f64 / 1e3,
            samples.join(","),
        )
    }
}

/// Open-loop run: requests go out at pre-computed offsets regardless of
/// completion; a receiver thread drains replies and a sampler thread
/// records per-shard queue depth and completion counts. Overload
/// rejections are expected output, not errors.
#[allow(clippy::disallowed_methods)]
fn run_open_loop(
    server: &LdcServer,
    spec: &WorkloadSpec,
    rate_per_sec: f64,
) -> Result<OpenResult, String> {
    // Fresh connection: request ids restart at 1, so send timestamps can
    // be indexed by id.
    let client = Client::connect(server.local_addr()).map_err(|e| format!("connect: {e}"))?;
    let (mut tx, mut rx) = client.split().map_err(|e| format!("split: {e}"))?;

    let offsets = ArrivalSchedule::poisson(rate_per_sec, spec.ops, spec.seed ^ 0x0a11).offsets_ns();
    let mut gen = OpGen::new(spec);
    let requests: Vec<Request> = (0..spec.ops).map(|_| gen.next().to_request(spec)).collect();

    let send_times: Mutex<Vec<Instant>> = Mutex::new(Vec::with_capacity(requests.len()));
    let done = AtomicBool::new(false);
    let ops = requests.len() as u64;

    let mut result = OpenResult {
        rate_per_sec,
        sent: 0,
        ok: 0,
        rejected: 0,
        latency_ns: Histogram::new(),
        wall_secs: 0.0,
        samples: Vec::new(),
    };
    let start = Instant::now();

    let (recv_out, samples) = std::thread::scope(|s| {
        let receiver = s.spawn(|| -> Result<(Histogram, u64, u64), String> {
            let mut hist = Histogram::new();
            let (mut ok, mut rejected) = (0u64, 0u64);
            for _ in 0..ops {
                let resp = match rx.recv() {
                    Ok(Some(resp)) => resp,
                    Ok(None) => return Err("server closed mid-run".to_string()),
                    Err(e) => return Err(format!("receive: {e}")),
                };
                let sent_at = {
                    let times = send_times.lock().expect("send-time lock");
                    times[(resp.req_id - 1) as usize]
                };
                hist.record(sent_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                match resp.status {
                    Status::Ok => ok += 1,
                    Status::Overloaded => rejected += 1,
                    other => {
                        return Err(format!(
                            "request {} failed with {}",
                            resp.req_id,
                            other.label()
                        ))
                    }
                }
            }
            Ok((hist, ok, rejected))
        });
        let sampler = s.spawn(|| {
            let mut samples = Vec::new();
            loop {
                let finished = done.load(Ordering::Relaxed);
                samples.push(DepthSample {
                    at_ms: start.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
                    depths: server.queue_depths(),
                    completed: server
                        .stats_snapshot()
                        .shards
                        .iter()
                        .map(|s| s.completed)
                        .collect(),
                });
                if finished {
                    return samples;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        // This thread is the sender: wait for each scheduled offset, then
        // fire. Flushing per request keeps the schedule honest (no
        // batching of "past due" sends into one syscall burst).
        let mut send_err = None;
        for (i, request) in requests.iter().enumerate() {
            let target = Duration::from_nanos(offsets[i]);
            loop {
                let now = start.elapsed();
                if now >= target {
                    break;
                }
                std::thread::sleep(target - now);
            }
            {
                let mut times = send_times.lock().expect("send-time lock");
                times.push(Instant::now());
            }
            let sent = tx.send(request).and_then(|_| tx.flush());
            if let Err(e) = sent {
                send_err = Some(format!("send {i}: {e}"));
                break;
            }
            result.sent += 1;
        }

        let recv_out = match send_err {
            None => receiver.join().expect("receiver thread panicked"),
            Some(e) => Err(e),
        };
        done.store(true, Ordering::Relaxed);
        let samples = sampler.join().expect("sampler thread panicked");
        (recv_out, samples)
    });

    let (hist, ok, rejected) = recv_out?;
    result.wall_secs = start.elapsed().as_secs_f64();
    result.latency_ns = hist;
    result.ok = ok;
    result.rejected = rejected;
    result.samples = samples;
    Ok(result)
}

/// Runs A–F in one compaction mode, returning the mode's JSON object.
fn run_mode(mode_name: &str, udc: bool, args: &NetBenchArgs) -> Result<String, String> {
    let mut workload_objs = Vec::new();
    for spec in WorkloadSpec::ycsb_all(args.common.ops) {
        let spec = spec
            .with_codec(args.common.codec())
            .with_seed(args.common.seed);

        let mut config = ServerConfig {
            shards: args.shards,
            queue_capacity: args.queue_capacity,
            options: paper_scaled_options(),
            ..ServerConfig::default()
        };
        if udc {
            config = config.udc();
        }
        let server = LdcServer::start(config).map_err(|e| format!("start server: {e}"))?;

        let closed = run_closed_loop(&server, &spec)
            .map_err(|e| format!("{mode_name} {}: {e}", spec.name))?;
        if closed.ops == 0 || closed.per_shard_completed.iter().all(|&c| c == 0) {
            return Err(format!(
                "{mode_name} {}: zero closed-loop throughput",
                spec.name
            ));
        }

        let open_json = if args.closed_only {
            None
        } else {
            let open = run_open_loop(&server, &spec, args.rate_per_sec)
                .map_err(|e| format!("{mode_name} {} open loop: {e}", spec.name))?;
            if open.ok == 0 {
                return Err(format!(
                    "{mode_name} {}: zero open-loop throughput",
                    spec.name
                ));
            }
            println!(
                "{mode_name} {:<7} open-loop: {} sent, {} ok, {} rejected, p99 {:.0}us",
                spec.name,
                open.sent,
                open.ok,
                open.rejected,
                open.latency_ns.percentile(99.0) as f64 / 1e3,
            );
            Some(open.json())
        };

        let stats = server.stats_snapshot();
        if stats.protocol_errors != 0 {
            return Err(format!(
                "{mode_name} {}: {} protocol errors",
                spec.name, stats.protocol_errors
            ));
        }
        println!(
            "{mode_name} {:<7} closed-loop: {} ops, {} virtual service ns",
            spec.name, closed.ops, closed.service_total_ns,
        );
        server.shutdown();

        let mut fields = vec![
            format!("\"workload\":\"{}\"", spec.name),
            format!("\"closed_loop\":{}", closed.json()),
        ];
        if let Some(open) = open_json {
            fields.push(format!("\"open_loop\":{open}"));
        }
        workload_objs.push(format!("{{{}}}", fields.join(",")));
    }
    Ok(format!(
        "{{\"mode\":\"{mode_name}\",\"workloads\":[{}]}}",
        workload_objs.join(",")
    ))
}

/// Entry point for the `ycsb-net` subcommand.
pub fn run_ycsb_net(args: &NetBenchArgs) -> Result<(), String> {
    let udc = run_mode("UDC", true, args)?;
    let ldc = run_mode("LDC", false, args)?;
    let json = format!(
        concat!(
            "{{\"bench\":\"ycsb-net\",\"ops\":{},\"seed\":{},\"value_bytes\":{},",
            "\"shards\":{},\"queue_capacity\":{},\"closed_only\":{},",
            "\"modes\":[{},{}]}}\n"
        ),
        args.common.ops,
        args.common.seed,
        args.common.value_bytes,
        args.shards,
        args.queue_capacity,
        args.closed_only,
        udc,
        ldc,
    );
    std::fs::write(&args.out, &json).map_err(|e| format!("writing {}: {e}", args.out))?;
    println!("wrote {}", args.out);
    Ok(())
}
