//! `ldc-client`: wire protocol and client library for the `ldc-net`
//! service layer.
//!
//! Two halves:
//!
//! * [`proto`] — the shared wire format. Length-prefixed binary frames
//!   carrying a request id, opcode, and payload; a [`proto::Status`]
//!   taxonomy that maps the engine's transient/permanent error split
//!   (plus admission-control rejections) onto the wire; and decoders
//!   that turn torn frames, oversized length prefixes, and unknown
//!   opcodes into clean [`proto::ProtoError`]s — never panics.
//!   `ldc-server` consumes this module for its side of the connection.
//! * [`Client`] / [`NetSender`] / [`NetReceiver`] — a synchronous
//!   request/response client, a pipelined batch mode that tolerates
//!   out-of-order completion across shards, and a split sender/receiver
//!   pair for open-loop load generation.
//!
//! Layering: this crate sits beside `ldc-workload` — it may use
//! `ldc-obs` but never the engine crates, and never `ldc-server`
//! (servers embed clients' protocol, not the reverse).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
pub mod proto;

pub use client::{Client, NetError, NetMeta, NetReceiver, NetSender};
