//! The four rule families. Each rule exposes a stable `RULE` id (used in
//! diagnostics and in `// ldc-lint: allow(<rule>)` suppressions) and a
//! pure check function over lexed [`crate::lexer::SourceView`]s.

pub mod determinism;
pub mod layering;
pub mod lock_order;
pub mod must_use;
pub mod panic_safety;
pub mod taint;
