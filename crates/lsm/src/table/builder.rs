//! SSTable construction.

use crate::block::BlockBuilder;
use crate::crc32c;
use crate::filter::BloomFilter;
use crate::table::{encode_footer, BlockHandle};
use crate::types::{compare_internal_keys, user_key};

/// A fully built table image, ready to be written as one file.
#[derive(Debug, Clone)]
pub struct FinishedTable {
    /// Serialized file contents.
    pub bytes: Vec<u8>,
    /// Smallest internal key in the table.
    pub smallest: Vec<u8>,
    /// Largest internal key in the table.
    pub largest: Vec<u8>,
    /// Number of entries.
    pub entries: u64,
}

/// Streams sorted internal entries into an SSTable image.
///
/// The builder accumulates the file in memory (tables are bounded by the
/// target file size, 2 MiB by default) and the caller persists it with one
/// `write_file`, which matches how the simulated device charges time.
pub struct TableBuilder {
    block_bytes: usize,
    bits_per_key: usize,
    data: Vec<u8>,
    block: BlockBuilder,
    index: BlockBuilder,
    filter_keys: Vec<Vec<u8>>,
    smallest: Option<Vec<u8>>,
    largest: Vec<u8>,
    entries: u64,
    last_key: Vec<u8>,
}

impl TableBuilder {
    /// Creates a builder emitting ~`block_bytes` data blocks with
    /// `restart_interval` prefix-compression restarts and a Bloom filter at
    /// `bits_per_key`.
    pub fn new(block_bytes: usize, restart_interval: usize, bits_per_key: usize) -> Self {
        Self {
            block_bytes: block_bytes.max(64),
            bits_per_key,
            data: Vec::new(),
            block: BlockBuilder::new(restart_interval),
            index: BlockBuilder::new(1),
            filter_keys: Vec::new(),
            smallest: None,
            largest: Vec::new(),
            entries: 0,
            last_key: Vec::new(),
        }
    }

    /// Appends an entry; internal keys must arrive in strictly increasing
    /// order.
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) {
        debug_assert!(
            self.entries == 0 || compare_internal_keys(&self.last_key, ikey).is_lt(),
            "table keys must be strictly increasing"
        );
        if self.smallest.is_none() {
            self.smallest = Some(ikey.to_vec());
        }
        self.largest.clear();
        self.largest.extend_from_slice(ikey);
        self.last_key.clear();
        self.last_key.extend_from_slice(ikey);
        // Filter on user keys; skip consecutive duplicates (multiple
        // versions of one key share a filter probe).
        let ukey = user_key(ikey);
        if self.filter_keys.last().map(Vec::as_slice) != Some(ukey) {
            self.filter_keys.push(ukey.to_vec());
        }
        self.block.add(ikey, value);
        self.entries += 1;
        if self.block.size_estimate() >= self.block_bytes {
            self.flush_data_block();
        }
    }

    /// Bytes the file occupies so far (data blocks already flushed plus the
    /// in-progress block); used to cut tables at the target file size.
    pub fn estimated_file_bytes(&self) -> usize {
        self.data.len() + self.block.size_estimate()
    }

    /// Number of entries added so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Whether nothing was added.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Seals the table. Panics if empty (callers must not create empty
    /// tables).
    pub fn finish(mut self) -> FinishedTable {
        assert!(self.entries > 0, "refusing to build an empty table");
        if !self.block.is_empty() {
            self.flush_data_block();
        }
        // Filter block.
        let filter = BloomFilter::build(&self.filter_keys, self.bits_per_key);
        let filter_handle = self.write_raw_block(filter.as_bytes().to_vec());
        // Index block.
        let index_bytes = self.index.finish();
        let index_handle = self.write_raw_block(index_bytes);
        // Footer.
        let footer = encode_footer(filter_handle, index_handle);
        self.data.extend_from_slice(&footer);
        FinishedTable {
            bytes: self.data,
            smallest: self.smallest.expect("nonempty table"),
            largest: self.largest,
            entries: self.entries,
        }
    }

    fn flush_data_block(&mut self) {
        debug_assert!(!self.block.is_empty());
        let contents = self.block.finish();
        let handle = self.write_raw_block(contents);
        let mut encoded = Vec::with_capacity(20);
        handle.encode_to(&mut encoded);
        // Index key: the last key of the block (a simple, correct separator).
        self.index.add(&self.last_key, &encoded);
    }

    /// Appends `contents` plus the type+crc trailer, returning its handle.
    fn write_raw_block(&mut self, contents: Vec<u8>) -> BlockHandle {
        let handle = BlockHandle {
            offset: self.data.len() as u64,
            size: contents.len() as u64,
        };
        let crc = crc32c::mask(crc32c::extend(crc32c::crc32c(&contents), &[0u8]));
        self.data.extend_from_slice(&contents);
        self.data.push(0); // compression type: none
        self.data.extend_from_slice(&crc.to_le_bytes());
        handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{decode_footer, FOOTER_SIZE};
    use crate::types::{encode_internal_key, ValueType};

    fn ik(key: &[u8], seq: u64) -> Vec<u8> {
        encode_internal_key(key, seq, ValueType::Value)
    }

    #[test]
    fn builds_a_wellformed_file() {
        let mut b = TableBuilder::new(256, 4, 10);
        for i in 0..100 {
            b.add(&ik(format!("k{i:04}").as_bytes(), 1), b"value");
        }
        assert_eq!(b.entries(), 100);
        let t = b.finish();
        assert_eq!(t.entries, 100);
        assert_eq!(user_key(&t.smallest), b"k0000");
        assert_eq!(user_key(&t.largest), b"k0099");
        // Footer parses.
        let footer = &t.bytes[t.bytes.len() - FOOTER_SIZE..];
        let (filter, index) = decode_footer(footer).unwrap();
        assert!(filter.size > 0);
        assert!(index.size > 0);
        assert!(index.offset > filter.offset);
    }

    #[test]
    fn small_blocks_produce_many_index_entries() {
        let mut small = TableBuilder::new(128, 4, 10);
        let mut large = TableBuilder::new(1 << 20, 4, 10);
        for i in 0..200 {
            let k = ik(format!("key{i:05}").as_bytes(), 1);
            small.add(&k, &[0u8; 32]);
            large.add(&k, &[0u8; 32]);
        }
        let small = small.finish();
        let large = large.finish();
        // More blocks -> more index entries + trailers -> bigger file.
        assert!(small.bytes.len() > large.bytes.len());
    }

    #[test]
    fn estimated_size_tracks_growth() {
        let mut b = TableBuilder::new(1 << 20, 16, 10);
        let before = b.estimated_file_bytes();
        b.add(&ik(b"k", 1), &vec![0u8; 1000]);
        assert!(b.estimated_file_bytes() >= before + 1000);
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn finishing_empty_table_panics() {
        TableBuilder::new(256, 4, 10).finish();
    }
}
