//! The simulated device front-end.
//!
//! [`SsdDevice`] ties together the virtual clock, the FTL, and the traffic
//! counters. Every transfer advances the shared clock by
//! `setup latency + bytes / bandwidth`; page programs additionally charge the
//! garbage-collection relocation work they trigger, which is how sustained
//! write pressure degrades effective write bandwidth — the behaviour the
//! paper's SSD-oriented argument depends on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ldc_obs::{Event, EventKind, NoopSink, SharedSink};
use parking_lot::Mutex;

use crate::clock::{Nanos, TimeCategory, TimeLedger, VirtualClock};
use crate::config::SsdConfig;
use crate::ftl::{Ftl, FtlStats};
use crate::stats::{IoClass, IoStats, IoStatsSnapshot};

/// A point-in-time view of everything the device knows, used by experiment
/// harnesses to report a run.
#[derive(Debug, Clone)]
pub struct DeviceSnapshot {
    /// Virtual time at the snapshot, nanoseconds.
    pub now: Nanos,
    /// Per-class traffic counters.
    pub io: IoStatsSnapshot,
    /// FTL counters (host/NAND pages, erases).
    pub ftl: FtlStats,
    /// Mean erase count across blocks.
    pub mean_erase_count: f64,
    /// Maximum erase count across blocks.
    pub max_erase_count: u64,
    /// Fraction of rated endurance consumed (mean erase / endurance).
    pub wear_fraction: f64,
}

/// Simulated SSD shared by the storage backend and the engine.
///
/// The device is cheap to share (`Arc<SsdDevice>`); all interior state is
/// behind atomics or a mutex.
pub struct SsdDevice {
    cfg: SsdConfig,
    clock: VirtualClock,
    ledger: Arc<TimeLedger>,
    ftl: Mutex<Ftl>,
    io: IoStats,
    sink: Mutex<SharedSink>,
    // Mirrors `sink.enabled()` so the GC hot path can skip the sink mutex
    // entirely when tracing is off.
    sink_on: AtomicBool,
    // Accumulated GC relocation time ever charged to the clock. Request
    // tracing reads before/after deltas of this to blame foreground
    // latency absorbed by garbage collection.
    gc_nanos: AtomicU64,
}

impl std::fmt::Debug for SsdDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdDevice")
            .field("cfg", &self.cfg)
            .field("clock", &self.clock)
            .field("ledger", &self.ledger)
            .field("ftl", &self.ftl)
            .field("io", &self.io)
            .finish_non_exhaustive()
    }
}

impl SsdDevice {
    /// Builds a device from `cfg`, panicking on invalid configuration (use
    /// [`SsdConfig::validate`] to check first if the config is external).
    pub fn new(cfg: SsdConfig) -> Arc<Self> {
        cfg.validate().expect("invalid SsdConfig");
        let ftl = Ftl::new(&cfg);
        Arc::new(Self {
            cfg,
            clock: VirtualClock::new(),
            ledger: Arc::new(TimeLedger::new()),
            ftl: Mutex::new(ftl),
            io: IoStats::new(),
            sink: Mutex::new(Arc::new(NoopSink)),
            sink_on: AtomicBool::new(false),
            gc_nanos: AtomicU64::new(0),
        })
    }

    /// Routes garbage-collection events to `sink`. With the default
    /// [`NoopSink`] the GC path never builds an [`Event`].
    pub fn set_event_sink(&self, sink: SharedSink) {
        self.sink_on.store(sink.enabled(), Ordering::Release);
        *self.sink.lock() = sink;
    }

    /// Device with the default (enterprise PCIe) profile.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SsdConfig::default())
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The Table-I time ledger. The engine records phase times here; the
    /// device itself only records [`TimeCategory::FileSystem`] overhead.
    pub fn ledger(&self) -> &TimeLedger {
        &self.ledger
    }

    /// Per-class traffic counters.
    pub fn io_stats(&self) -> IoStatsSnapshot {
        self.io.snapshot()
    }

    /// FTL counters.
    pub fn ftl_stats(&self) -> FtlStats {
        self.ftl.lock().stats()
    }

    /// Charges the time for reading `bytes` and counts it under `class`.
    /// Returns the nanoseconds charged (device time plus the modelled
    /// kernel syscall overhead, which is booked to the file-system
    /// category).
    pub fn charge_read(&self, bytes: u64, class: IoClass) -> Nanos {
        self.io.record_read(class, bytes);
        let t = self.transfer_time(bytes, self.cfg.read_bandwidth, self.cfg.read_latency_ns);
        self.clock.advance(t);
        t + self.charge_syscall()
    }

    /// Like [`SsdDevice::charge_read`] but for the continuation of a
    /// sequential stream (table scans, compaction input): the device/OS
    /// readahead hides most of the setup latency.
    pub fn charge_read_sequential(&self, bytes: u64, class: IoClass) -> Nanos {
        self.io.record_read(class, bytes);
        let t = self.transfer_time(bytes, self.cfg.read_bandwidth, self.cfg.seq_read_latency_ns);
        self.clock.advance(t);
        t + self.charge_syscall()
    }

    /// Charges the time for writing `bytes` and counts it under `class`.
    /// Returns the nanoseconds charged. (FTL page accounting happens
    /// separately via [`SsdDevice::program_pages`].)
    pub fn charge_write(&self, bytes: u64, class: IoClass) -> Nanos {
        self.io.record_write(class, bytes);
        let t = self.transfer_time(bytes, self.cfg.write_bandwidth, self.cfg.write_latency_ns);
        self.clock.advance(t);
        t + self.charge_syscall()
    }

    fn charge_syscall(&self) -> Nanos {
        let t = self.cfg.syscall_overhead_ns;
        if t > 0 {
            self.clock.advance(t);
            self.ledger.record(TimeCategory::FileSystem, t);
        }
        t
    }

    /// Programs logical pages into the FTL, charging only the *extra* time
    /// garbage collection spends relocating live pages (the host transfer
    /// time was already charged by [`SsdDevice::charge_write`]).
    /// Returns the nanoseconds charged.
    pub fn program_pages(&self, lpns: &[u64]) -> Nanos {
        let mut relocated = 0u64;
        let mut erased = 0u64;
        {
            let mut ftl = self.ftl.lock();
            for &lpn in lpns {
                let outcome = ftl.write_page(lpn);
                relocated += outcome.relocated_pages;
                erased += outcome.erased_blocks;
            }
        }
        if relocated == 0 {
            return 0;
        }
        // Relocation is a read + a program per page; charge at write
        // bandwidth, which dominates.
        let bytes = relocated * self.cfg.page_bytes;
        let t = bytes * 1_000_000_000 / self.cfg.write_bandwidth;
        let start = self.clock.now();
        self.clock.advance(t);
        self.gc_nanos.fetch_add(t, Ordering::Relaxed);
        if self.sink_on.load(Ordering::Acquire) {
            // `input_files`/`output_files` double as relocated-pages /
            // erased-blocks counts for GC events.
            self.sink.lock().record(
                Event::span(EventKind::SsdGc, start, start + t)
                    .files(
                        relocated.min(u64::from(u32::MAX)) as u32,
                        erased.min(u64::from(u32::MAX)) as u32,
                    )
                    .bytes(bytes, 0),
            );
        }
        t
    }

    /// Drops FTL mappings for deleted file pages (TRIM); free.
    pub fn trim_pages(&self, lpns: &[u64]) {
        let mut ftl = self.ftl.lock();
        for &lpn in lpns {
            ftl.trim_page(lpn);
        }
    }

    /// Charges one file-system metadata operation (create/sync/delete/rename)
    /// and books it under [`TimeCategory::FileSystem`].
    pub fn fs_op(&self) -> Nanos {
        let t = self.cfg.fs_op_latency_ns;
        self.clock.advance(t);
        self.ledger.record(TimeCategory::FileSystem, t);
        t
    }

    /// Number of logical pages the device exposes.
    pub fn logical_pages(&self) -> u64 {
        self.cfg.logical_pages()
    }

    /// Total GC relocation nanoseconds ever charged to the clock. Monotone;
    /// callers diff two readings to know how much garbage-collection work a
    /// phase of theirs absorbed (the tracing layer's `SsdGc` blame).
    pub fn gc_busy_nanos(&self) -> Nanos {
        self.gc_nanos.load(Ordering::Relaxed)
    }

    /// Full observability snapshot.
    pub fn snapshot(&self) -> DeviceSnapshot {
        let ftl = self.ftl.lock();
        let mean = ftl.mean_erase_count();
        let max = ftl.max_erase_count();
        DeviceSnapshot {
            now: self.clock.now(),
            io: self.io.snapshot(),
            ftl: ftl.stats(),
            mean_erase_count: mean,
            max_erase_count: max,
            wear_fraction: mean / self.cfg.endurance_cycles as f64,
        }
    }

    fn transfer_time(&self, bytes: u64, bandwidth: u64, latency_ns: u64) -> Nanos {
        latency_ns + bytes.saturating_mul(1_000_000_000) / bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Arc<SsdDevice> {
        SsdDevice::new(SsdConfig::tiny_for_tests())
    }

    #[test]
    fn reads_are_faster_than_writes() {
        let dev = device();
        let bytes = 1 << 20;
        let t_read = dev.charge_read(bytes, IoClass::UserRead);
        let t_write = dev.charge_write(bytes, IoClass::FlushWrite);
        assert!(
            t_write > 3 * t_read,
            "expected pronounced asymmetry: read={t_read} write={t_write}"
        );
        assert_eq!(dev.clock().now(), t_read + t_write);
    }

    #[test]
    fn traffic_is_classified() {
        let dev = device();
        dev.charge_write(123, IoClass::CompactionWrite);
        dev.charge_read(456, IoClass::CompactionRead);
        let io = dev.io_stats();
        assert_eq!(io.compaction_write_bytes(), 123);
        assert_eq!(io.compaction_read_bytes(), 456);
    }

    #[test]
    fn fs_ops_are_charged_to_the_filesystem_category() {
        let dev = device();
        let before = dev.ledger().get(TimeCategory::FileSystem);
        dev.fs_op();
        dev.fs_op();
        let after = dev.ledger().get(TimeCategory::FileSystem);
        assert_eq!(after - before, 2 * dev.config().fs_op_latency_ns);
    }

    #[test]
    fn programming_pages_feeds_the_ftl() {
        let dev = device();
        let lpns: Vec<u64> = (0..10).collect();
        dev.program_pages(&lpns);
        assert_eq!(dev.ftl_stats().host_pages_written, 10);
        dev.trim_pages(&lpns);
        assert_eq!(dev.ftl_stats().pages_trimmed, 10);
    }

    #[test]
    fn gc_relocation_charges_time() {
        let dev = device();
        let logical = dev.logical_pages();
        // Fill the device, then overwrite a hot region until GC must move
        // cold data; the relocation must consume virtual time.
        let all: Vec<u64> = (0..logical).collect();
        dev.program_pages(&all);
        let before = dev.clock().now();
        let mut charged = 0;
        // Strided overwrites leave blocks partially valid, forcing GC to
        // relocate live pages (and charge time for it).
        for round in 0..50u64 {
            let hot: Vec<u64> = (0..logical / 8)
                .map(|i| (i * 8 + round % 8) % logical)
                .collect();
            charged += dev.program_pages(&hot);
        }
        assert!(charged > 0, "sustained overwrites should trigger GC time");
        assert!(dev.clock().now() > before);
        let snap = dev.snapshot();
        assert!(snap.ftl.erases > 0);
        assert!(snap.wear_fraction > 0.0);
        assert!(snap.max_erase_count as f64 >= snap.mean_erase_count);
    }

    #[test]
    fn gc_emits_events_when_sink_enabled() {
        let dev = device();
        let sink = Arc::new(ldc_obs::RingBufferSink::new(1024));
        dev.set_event_sink(sink.clone());
        let logical = dev.logical_pages();
        let all: Vec<u64> = (0..logical).collect();
        dev.program_pages(&all);
        for round in 0..50u64 {
            let hot: Vec<u64> = (0..logical / 8)
                .map(|i| (i * 8 + round % 8) % logical)
                .collect();
            dev.program_pages(&hot);
        }
        let events = sink.events();
        assert!(!events.is_empty(), "GC under churn must emit events");
        assert!(events.iter().all(|e| e.kind == EventKind::SsdGc));
        let gc = events
            .iter()
            .find(|e| e.input_files > 0)
            .expect("relocations recorded");
        assert!(gc.duration_nanos() > 0);
        assert_eq!(
            gc.input_bytes,
            u64::from(gc.input_files) * dev.config().page_bytes
        );
    }

    #[test]
    fn snapshot_reports_consistent_time() {
        let dev = device();
        dev.charge_write(1000, IoClass::WalWrite);
        let snap = dev.snapshot();
        assert_eq!(snap.now, dev.clock().now());
        assert_eq!(snap.io.write_bytes_for(IoClass::WalWrite), 1000);
    }
}
