//! Offline drop-in subset of the `criterion` crate.
//!
//! Implements the API surface `benches/micro.rs` uses: benchmark groups,
//! `bench_function`, `iter`/`iter_batched`, throughput annotation, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a
//! simple calibrated wall-clock loop (median of samples) rather than
//! criterion's full statistical machinery — adequate for spotting
//! order-of-magnitude regressions without network access.

#![forbid(unsafe_code)]
// The one legitimate wall-clock user in the workspace: benchmarks measure
// host time by definition. The determinism lints (clippy.toml and
// ldc-lint) exempt the shims for the same reason.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: batch many iterations per setup.
    SmallInput,
    /// Large per-iteration state: one setup per iteration.
    LargeInput,
}

/// Units the measured time is reported against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 50,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timing samples to take (min 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, label: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&full, &bencher.samples, self.throughput);
        self
    }

    /// Ends the group (report lines are already printed; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Per-iteration nanosecond samples → median report line.
fn report(name: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!(
                "  {:>9.1} MiB/s",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} time: [{} {} {}]{rate}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, auto-calibrating iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that takes ~1ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` over fresh state from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = match size {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 1,
        };
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion {
            filter: Some("zzz".into()),
        };
        let mut c = c;
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("skipped", |_b| ran = true);
        assert!(!ran);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("µs"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
    }
}
