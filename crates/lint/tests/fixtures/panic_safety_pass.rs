// Fixture: the Result-returning equivalents — nothing may be reported.
fn read_record(buf: &[u8]) -> Result<u32, String> {
    let header = *buf.first().ok_or("empty record")?;
    if header != 1 {
        return Err(format!("bad header {header}"));
    }
    decode(buf).ok_or_else(|| "truncated record".to_string())
}

fn decode(buf: &[u8]) -> Option<u32> {
    buf.get(1..5)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
}

fn checked_hot_path(buf: &[u8]) -> u8 {
    buf[0] // ldc-lint: allow(panic_safety) — caller checked is_empty() on the hot path
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        super::read_record(&[1, 0, 0, 0, 0]).unwrap();
    }
}
