//! Data blocks: prefix-compressed, restart-pointed key/value runs.
//!
//! Format matches LevelDB. Entries are `varint(shared) varint(non_shared)
//! varint(value_len) key_delta value`; every `restart_interval`-th key is
//! stored whole and its offset recorded in a trailer of fixed32 restart
//! offsets followed by their count. Restarts give binary-searchable seeks.

use std::cmp::Ordering;

use bytes::Bytes;

use crate::encoding::{get_fixed32, get_varint32, put_fixed32, put_varint32};
use crate::error::{corruption, Result};
use crate::types::compare_internal_keys;

/// Builds one block. Keys must be appended in sorted order.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    counter: usize,
    restart_interval: usize,
    last_key: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    /// Creates a builder storing a whole key every `restart_interval`
    /// entries.
    pub fn new(restart_interval: usize) -> Self {
        Self {
            buf: Vec::new(),
            restarts: vec![0],
            counter: 0,
            restart_interval: restart_interval.max(1),
            last_key: Vec::new(),
            entries: 0,
        }
    }

    /// Appends an entry. `key` must sort after every previously added key.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.entries == 0 || compare_internal_keys(&self.last_key, key) == Ordering::Less,
            "block keys must be added in strictly increasing order"
        );
        let shared = if self.counter < self.restart_interval {
            common_prefix_len(&self.last_key, key)
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.counter = 0;
            0
        };
        let non_shared = key.len() - shared;
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, non_shared as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.counter += 1;
        self.entries += 1;
    }

    /// Bytes the finished block will occupy (approximately, pre-trailer).
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Whether nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Serializes the block and resets the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        for &r in &self.restarts {
            put_fixed32(&mut out, r);
        }
        put_fixed32(&mut out, self.restarts.len() as u32);
        self.restarts.clear();
        self.restarts.push(0);
        self.counter = 0;
        self.last_key.clear();
        self.entries = 0;
        out
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Whether `offset` (within `entries`) starts a decodable restart entry:
/// three varints with `shared == 0` and the whole key in bounds.
fn valid_restart_entry(entries: &[u8], mut offset: usize) -> bool {
    let header = |off: &mut usize| -> Option<u32> {
        let (v, n) = get_varint32(&entries[*off..])?;
        *off += n;
        Some(v)
    };
    let Some(shared) = header(&mut offset) else {
        return false;
    };
    let Some(non_shared) = header(&mut offset) else {
        return false;
    };
    if header(&mut offset).is_none() {
        return false;
    }
    shared == 0 && offset + non_shared as usize <= entries.len()
}

/// An immutable, parsed block.
#[derive(Debug, Clone)]
pub struct Block {
    data: Bytes,
    restarts_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Validates the trailer and wraps `data`.
    pub fn new(data: Bytes) -> Result<Self> {
        if data.len() < 4 {
            return Err(corruption("block too small for restart count"));
        }
        let num_restarts = get_fixed32(&data, data.len() - 4) as usize;
        let trailer = num_restarts
            .checked_mul(4)
            .and_then(|n| n.checked_add(4))
            .ok_or_else(|| corruption("restart count overflow"))?;
        if trailer > data.len() {
            return Err(corruption("block restart array out of bounds"));
        }
        let restarts_offset = data.len() - trailer;
        // Blocks arrive checksum-verified, but validate every restart offset
        // anyway so the seek path's restart decoding is infallible: each
        // restart must point at a parseable whole-key entry (shared == 0)
        // inside the entry area. The only exception is the initial restart
        // of an empty block, which points at offset 0 of an empty area.
        let entries = &data[..restarts_offset];
        for i in 0..num_restarts {
            let offset = get_fixed32(&data, restarts_offset + 4 * i) as usize;
            if offset == 0 && entries.is_empty() {
                continue;
            }
            if offset >= restarts_offset || !valid_restart_entry(entries, offset) {
                return Err(corruption("block restart points at invalid entry"));
            }
        }
        Ok(Self {
            restarts_offset,
            data,
            num_restarts,
        })
    }

    /// Size of the raw block, for cache accounting.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn restart_point(&self, i: usize) -> usize {
        get_fixed32(&self.data, self.restarts_offset + 4 * i) as usize
    }

    /// Creates an unpositioned iterator.
    pub fn iter(&self) -> BlockIter {
        BlockIter {
            block: self.clone(),
            offset: 0,
            key: Vec::new(),
            value_range: (0, 0),
            valid: false,
        }
    }
}

/// Cursor over a [`Block`].
pub struct BlockIter {
    block: Block,
    /// Offset of the *next* entry to decode.
    offset: usize,
    key: Vec<u8>,
    value_range: (usize, usize),
    valid: bool,
}

impl BlockIter {
    /// Whether positioned at an entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// Current internal key.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.block.data[self.value_range.0..self.value_range.1]
    }

    /// Current value as a zero-copy slice of the block's backing buffer.
    /// The returned [`Bytes`] pins the decoded block alive, so callers can
    /// hand the value up the stack without memcpying it out of the cache.
    pub fn value_bytes(&self) -> Bytes {
        debug_assert!(self.valid);
        self.block
            .data
            .slice(self.value_range.0..self.value_range.1)
    }

    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        self.offset = 0;
        self.key.clear();
        self.valid = false;
        self.parse_next();
    }

    /// Positions at the first entry with key >= `target`.
    pub fn seek(&mut self, target: &[u8]) {
        // Binary search restarts for the last restart whose key < target.
        let (mut lo, mut hi) = (0usize, self.block.num_restarts.saturating_sub(1));
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let key = self.restart_key(mid);
            if compare_internal_keys(&key, target) == Ordering::Less {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        if self.block.num_restarts == 0 {
            self.valid = false;
            return;
        }
        self.offset = self.block.restart_point(lo);
        self.key.clear();
        self.valid = false;
        loop {
            if !self.parse_next() {
                return;
            }
            if compare_internal_keys(&self.key, target) != Ordering::Less {
                return;
            }
        }
    }

    /// Advances; becomes invalid at the end.
    pub fn next(&mut self) {
        debug_assert!(self.valid);
        self.parse_next();
    }

    fn restart_key(&self, i: usize) -> Vec<u8> {
        let mut offset = self.block.restart_point(i);
        let data = &self.block.data[..self.block.restarts_offset];
        // Infallible: every restart entry was validated by `Block::new`,
        // so a failure here is an engine invariant violation, not bad input.
        let (_, n) = get_varint32(&data[offset..]).expect("restart validated at Block::new");
        offset += n;
        let (non_shared, n) =
            get_varint32(&data[offset..]).expect("restart validated at Block::new");
        offset += n;
        let (_, n) = get_varint32(&data[offset..]).expect("restart validated at Block::new");
        offset += n;
        data[offset..offset + non_shared as usize].to_vec()
    }

    fn parse_next(&mut self) -> bool {
        let data_end = self.block.restarts_offset;
        if self.offset >= data_end {
            self.valid = false;
            return false;
        }
        let data = &self.block.data[..data_end];
        let mut off = self.offset;
        let (shared, n) = match get_varint32(&data[off..]) {
            Some(v) => v,
            None => {
                self.valid = false;
                return false;
            }
        };
        off += n;
        let (non_shared, n) = match get_varint32(&data[off..]) {
            Some(v) => v,
            None => {
                self.valid = false;
                return false;
            }
        };
        off += n;
        let (value_len, n) = match get_varint32(&data[off..]) {
            Some(v) => v,
            None => {
                self.valid = false;
                return false;
            }
        };
        off += n;
        let key_end = off + non_shared as usize;
        let value_end = key_end + value_len as usize;
        if value_end > data_end || shared as usize > self.key.len() {
            self.valid = false;
            return false;
        }
        self.key.truncate(shared as usize);
        self.key.extend_from_slice(&data[off..key_end]);
        self.value_range = (key_end, value_end);
        self.offset = value_end;
        self.valid = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{encode_internal_key, user_key, ValueType};

    fn ik(key: &[u8], seq: u64) -> Vec<u8> {
        encode_internal_key(key, seq, ValueType::Value)
    }

    fn build(entries: &[(Vec<u8>, Vec<u8>)], restart_interval: usize) -> Block {
        let mut b = BlockBuilder::new(restart_interval);
        for (k, v) in entries {
            b.add(k, v);
        }
        Block::new(Bytes::from(b.finish())).unwrap()
    }

    fn sample_entries(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    ik(format!("key{i:05}").as_bytes(), 1),
                    format!("value{i}").into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn empty_block_iterates_nothing() {
        let block = build(&[], 16);
        let mut it = block.iter();
        it.seek_to_first();
        assert!(!it.valid());
        it.seek(&ik(b"anything", 1));
        assert!(!it.valid());
    }

    #[test]
    fn full_scan_returns_everything_in_order() {
        for interval in [1, 2, 16] {
            let entries = sample_entries(100);
            let block = build(&entries, interval);
            let mut it = block.iter();
            it.seek_to_first();
            for (k, v) in &entries {
                assert!(it.valid());
                assert_eq!(it.key(), k.as_slice());
                assert_eq!(it.value(), v.as_slice());
                it.next();
            }
            assert!(!it.valid());
        }
    }

    #[test]
    fn seek_lands_on_first_at_or_after() {
        let entries = sample_entries(100);
        let block = build(&entries, 4);
        let mut it = block.iter();
        // Exact hit.
        it.seek(&ik(b"key00042", 1));
        assert_eq!(user_key(it.key()), b"key00042");
        // Between keys: key00042x -> key00043.
        it.seek(&ik(b"key00042x", 1));
        assert_eq!(user_key(it.key()), b"key00043");
        // Before everything.
        it.seek(&ik(b"a", 1));
        assert_eq!(user_key(it.key()), b"key00000");
        // After everything.
        it.seek(&ik(b"z", 1));
        assert!(!it.valid());
    }

    #[test]
    fn seek_respects_sequence_ordering() {
        // Same user key at different sequences: newest (highest seq) first.
        let entries = vec![
            (ik(b"k", 9), b"new".to_vec()),
            (ik(b"k", 3), b"old".to_vec()),
        ];
        let block = build(&entries, 16);
        let mut it = block.iter();
        it.seek(&ik(b"k", 100)); // snapshot above both
        assert_eq!(it.value(), b"new");
        it.seek(&ik(b"k", 5)); // snapshot between
        assert_eq!(it.value(), b"old");
    }

    #[test]
    fn prefix_compression_shrinks_blocks() {
        let entries = sample_entries(1000);
        let compressed = build(&entries, 16);
        let uncompressed = build(&entries, 1);
        assert!(compressed.size() < uncompressed.size());
    }

    #[test]
    fn corrupt_trailer_is_rejected() {
        assert!(Block::new(Bytes::from_static(&[1, 2])).is_err());
        // Restart count claiming more restarts than the block can hold.
        let mut data = vec![0u8; 8];
        data.extend_from_slice(&1000u32.to_le_bytes());
        assert!(Block::new(Bytes::from(data)).is_err());
    }

    #[test]
    fn corrupt_restart_offsets_are_rejected() {
        let entries = sample_entries(20);
        let mut b = BlockBuilder::new(4);
        for (k, v) in &entries {
            b.add(k, v);
        }
        let good = b.finish();
        let restarts_offset = good.len() - 4 - {
            let n = u32::from_le_bytes(good[good.len() - 4..].try_into().unwrap()) as usize;
            n * 4
        };
        // Point the second restart past the entry area.
        let mut bad = good.clone();
        bad[restarts_offset + 4..restarts_offset + 8]
            .copy_from_slice(&(restarts_offset as u32).to_le_bytes());
        assert!(Block::new(Bytes::from(bad)).is_err());
        // Point it mid-entry where the header cannot parse a whole key.
        let mut bad = good.clone();
        bad[restarts_offset + 4..restarts_offset + 8]
            .copy_from_slice(&(restarts_offset as u32 - 1).to_le_bytes());
        assert!(Block::new(Bytes::from(bad)).is_err());
        // The untouched block still parses and seeks.
        let block = Block::new(Bytes::from(good)).unwrap();
        let mut it = block.iter();
        it.seek(&entries[7].0);
        assert_eq!(it.key(), entries[7].0.as_slice());
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new(4);
        b.add(&ik(b"a", 1), b"1");
        let first = b.finish();
        assert!(b.is_empty());
        b.add(&ik(b"a", 1), b"1");
        let second = b.finish();
        assert_eq!(first, second);
    }
}
