//! Minimal argument parsing shared by the experiment binaries.
//!
//! Every figure binary accepts:
//!
//! * `--ops N` — measured operations (default: a laptop-friendly scale).
//! * `--scale F` — multiply the default op count by `F`.
//! * `--seed S` — workload RNG seed.
//! * `--value-bytes B` — value size (default 1024, the paper's setting).
//! * `--csv` — machine-readable output instead of markdown tables.
//!
//! Paper-scale runs are `--ops 10000000` (and patience).

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Measured operations per run.
    pub ops: u64,
    /// Workload seed.
    pub seed: u64,
    /// Value payload size.
    pub value_bytes: usize,
    /// Emit CSV instead of a markdown table.
    pub csv: bool,
}

impl CommonArgs {
    /// Parses `std::env::args`, using `default_ops` as the base op count.
    pub fn parse(default_ops: u64) -> Self {
        Self::from_iter(default_ops, std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_iter(default_ops: u64, args: impl IntoIterator<Item = String>) -> Self {
        let mut out = CommonArgs {
            ops: default_ops,
            seed: 0x5eed,
            value_bytes: 1024,
            csv: false,
        };
        let mut scale = 1.0f64;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut grab = |name: &str| -> String {
                iter.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
            };
            match arg.as_str() {
                "--ops" => out.ops = grab("--ops").parse().expect("--ops: integer"),
                "--scale" => scale = grab("--scale").parse().expect("--scale: float"),
                "--seed" => out.seed = grab("--seed").parse().expect("--seed: integer"),
                "--value-bytes" => {
                    out.value_bytes = grab("--value-bytes")
                        .parse()
                        .expect("--value-bytes: integer")
                }
                "--csv" => out.csv = true,
                "--help" | "-h" => {
                    eprintln!("flags: --ops N  --scale F  --seed S  --value-bytes B  --csv");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        out.ops = ((out.ops as f64 * scale).round() as u64).max(1);
        out
    }

    /// The workload key codec implied by these args (16-byte keys).
    pub fn codec(&self) -> ldc_workload::KeyCodec {
        ldc_workload::KeyCodec::new(16, self.value_bytes)
    }
}

/// Prints a markdown table (or CSV when `csv` is set).
pub fn print_table(csv: bool, title: &str, headers: &[&str], rows: &[Vec<String>]) {
    if csv {
        println!("# {title}");
        println!("{}", headers.join(","));
        for row in rows {
            println!("{}", row.join(","));
        }
        return;
    }
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats bytes as mebibytes with two decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> CommonArgs {
        CommonArgs::from_iter(1000, list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = args(&[]);
        assert_eq!(a.ops, 1000);
        assert_eq!(a.value_bytes, 1024);
        assert!(!a.csv);
    }

    #[test]
    fn flags_override() {
        let a = args(&[
            "--ops",
            "5000",
            "--seed",
            "7",
            "--csv",
            "--value-bytes",
            "64",
        ]);
        assert_eq!(a.ops, 5000);
        assert_eq!(a.seed, 7);
        assert!(a.csv);
        assert_eq!(a.value_bytes, 64);
    }

    #[test]
    fn scale_multiplies_ops() {
        let a = args(&["--scale", "2.5"]);
        assert_eq!(a.ops, 2500);
        let b = args(&["--ops", "100", "--scale", "0.001"]);
        assert_eq!(b.ops, 1); // floors at 1
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        args(&["--bogus"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mib(2 * 1024 * 1024), "2.00");
        assert_eq!(pct(0.1234), "12.3%");
    }
}
