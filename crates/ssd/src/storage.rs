//! File-level storage abstraction over the simulated device.
//!
//! The LSM engine is written against [`StorageBackend`], a minimal
//! object-store-style API (whole-file writes for SSTables, appends for the
//! WAL and manifest, ranged reads for blocks). [`MemStorage`] is the
//! reference implementation: file contents live in memory while **all**
//! traffic — byte transfers, page programs, TRIMs, metadata operations — is
//! charged to the shared [`SsdDevice`], so experiments observe realistic
//! device time and wear without touching the host file system.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::device::SsdDevice;
use crate::error::{SsdError, SsdResult};
use crate::stats::IoClass;

/// Identifies an open file in backends that hand out handles. Currently a
/// thin newtype over the file name; kept for API stability.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FileHandle(pub String);

/// The storage API the engine uses.
///
/// Semantics:
/// * [`write_file`](StorageBackend::write_file) atomically creates or
///   replaces a sealed file (the SSTable path),
/// * [`append`](StorageBackend::append) extends a log-style file, creating
///   it on first use (the WAL/manifest path),
/// * [`rename`](StorageBackend::rename) replaces the destination if present
///   (the `CURRENT`-pointer path).
pub trait StorageBackend: Send + Sync {
    /// Creates or replaces `name` with `data` and seals it.
    fn write_file(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()>;
    /// Appends `data` to `name`, creating the file if absent.
    fn append(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()>;
    /// Reads `len` bytes at `offset`.
    fn read(&self, name: &str, offset: u64, len: u64, class: IoClass) -> SsdResult<Bytes>;
    /// Reads `len` bytes at `offset` as the continuation of a sequential
    /// stream (scans, compaction inputs); backends may charge the cheaper
    /// readahead latency. Defaults to a plain [`StorageBackend::read`].
    fn read_sequential(
        &self,
        name: &str,
        offset: u64,
        len: u64,
        class: IoClass,
    ) -> SsdResult<Bytes> {
        self.read(name, offset, len, class)
    }
    /// Reads the whole file.
    fn read_all(&self, name: &str, class: IoClass) -> SsdResult<Bytes> {
        let size = self.size(name)?;
        self.read(name, 0, size, class)
    }
    /// Current size in bytes.
    fn size(&self, name: &str) -> SsdResult<u64>;
    /// Whether the file exists.
    fn exists(&self, name: &str) -> bool;
    /// Deletes the file, trimming its pages on the device.
    fn delete(&self, name: &str) -> SsdResult<()>;
    /// Renames `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &str, to: &str) -> SsdResult<()>;
    /// Durably flushes the file (charges a metadata op and the partial tail
    /// page, mirroring an `fsync`).
    fn sync(&self, name: &str) -> SsdResult<()>;
    /// Bytes of `name` guaranteed to survive a power cut: everything up to
    /// the last `sync` (sealed files — [`StorageBackend::write_file`] /
    /// [`StorageBackend::rename`] outputs — are durable in full). Backends
    /// that cannot distinguish (e.g. the host file system) report the full
    /// size. Fault-injection harnesses use this to model lost un-synced
    /// tails.
    fn synced_len(&self, name: &str) -> SsdResult<u64> {
        self.size(name)
    }
    /// Shrinks `name` to `len` bytes (no-op if already shorter). Used by
    /// crash simulation to discard un-synced tails; not part of the
    /// engine's own write path.
    fn truncate(&self, name: &str, len: u64) -> SsdResult<()> {
        let _ = (name, len);
        Err(SsdError::InvalidArgument(
            "backend does not support truncate".to_string(),
        ))
    }
    /// Makes `to` an independent sealed copy of `from`'s current contents
    /// (checkpoint path). Backends with cheap links (a host file system)
    /// may hard-link instead of copying; either way `to` must survive a
    /// later delete or rewrite of `from`. The default reads `from` in full
    /// and writes it back out, so every backend gets a gated,
    /// device-charged implementation for free. Fails if `to` exists.
    fn link_file(&self, from: &str, to: &str, class: IoClass) -> SsdResult<()> {
        if self.exists(to) {
            return Err(SsdError::InvalidArgument(format!(
                "link_file: destination {to:?} already exists"
            )));
        }
        let data = self.read_all(from, class)?;
        self.write_file(to, &data, class)
    }
    /// Sorted list of file names starting with `prefix` — the flat
    /// namespace's stand-in for a directory listing (checkpoints and
    /// backups group their files under a name prefix).
    fn list_dir(&self, prefix: &str) -> Vec<String> {
        self.list()
            .into_iter()
            .filter(|name| name.starts_with(prefix))
            .collect()
    }
    /// Sorted list of all file names.
    fn list(&self) -> Vec<String>;
    /// The device this backend charges.
    fn device(&self) -> Arc<SsdDevice>;
    /// Sum of all live file sizes (the Fig 15 space metric).
    fn total_bytes(&self) -> u64 {
        self.list()
            .iter()
            .filter_map(|name| self.size(name).ok())
            .sum()
    }
}

#[derive(Debug, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Logical pages backing the fully flushed prefix of `data`.
    pages: Vec<u64>,
    /// Logical page backing a flushed partial tail, if any.
    tail_lpn: Option<u64>,
    /// Prefix of `data` guaranteed durable: advanced by `sync` (and by
    /// `write_file`, whose outputs are sealed). A simulated power cut may
    /// discard anything beyond it.
    synced_len: u64,
}

#[derive(Debug)]
struct PageAllocator {
    next: u64,
    limit: u64,
    free: Vec<u64>,
}

impl PageAllocator {
    fn alloc(&mut self) -> SsdResult<u64> {
        if let Some(lpn) = self.free.pop() {
            return Ok(lpn);
        }
        if self.next < self.limit {
            let lpn = self.next;
            self.next += 1;
            Ok(lpn)
        } else {
            Err(SsdError::DeviceFull)
        }
    }

    fn release(&mut self, lpns: impl IntoIterator<Item = u64>) {
        self.free.extend(lpns);
    }
}

/// In-memory storage backend charging all traffic to a simulated SSD.
pub struct MemStorage {
    device: Arc<SsdDevice>,
    files: RwLock<HashMap<String, MemFile>>,
    alloc: Mutex<PageAllocator>,
}

impl std::fmt::Debug for MemStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Lock-free on purpose: Debug must be callable mid-operation.
        f.debug_struct("MemStorage").finish_non_exhaustive()
    }
}

impl MemStorage {
    /// Creates a backend over `device`.
    pub fn new(device: Arc<SsdDevice>) -> Arc<Self> {
        let limit = device.logical_pages();
        Arc::new(Self {
            device,
            files: RwLock::new(HashMap::new()),
            alloc: Mutex::new(PageAllocator {
                next: 0,
                limit,
                free: Vec::new(),
            }),
        })
    }

    /// Convenience: backend over a default-profile device.
    pub fn with_default_device() -> Arc<Self> {
        Self::new(SsdDevice::with_defaults())
    }

    /// Sum of all file sizes — the "consumed storage space" metric of the
    /// paper's Fig 15.
    pub fn total_file_bytes(&self) -> u64 {
        self.files
            .read()
            .values()
            .map(|f| f.data.len() as u64)
            .sum()
    }

    fn page_bytes(&self) -> u64 {
        self.device.config().page_bytes
    }

    /// Flushes complete pages of `file` into the FTL; with `seal` also
    /// flushes a partial tail page. Returns lpns programmed this call.
    fn flush_pages(&self, file: &mut MemFile, seal: bool) -> SsdResult<Vec<u64>> {
        let page = self.page_bytes();
        let complete = file.data.len() as u64 / page;
        let mut programmed = Vec::new();
        while (file.pages.len() as u64) < complete {
            // A previously flushed partial tail becomes this complete page.
            let lpn = match file.tail_lpn.take() {
                Some(lpn) => lpn,
                None => self.alloc.lock().alloc()?,
            };
            file.pages.push(lpn);
            programmed.push(lpn);
        }
        if seal && !(file.data.len() as u64).is_multiple_of(page) {
            let lpn = match file.tail_lpn {
                Some(lpn) => lpn,
                None => {
                    let lpn = self.alloc.lock().alloc()?;
                    file.tail_lpn = Some(lpn);
                    lpn
                }
            };
            programmed.push(lpn);
        }
        Ok(programmed)
    }

    fn read_impl(
        &self,
        name: &str,
        offset: u64,
        len: u64,
        class: IoClass,
        sequential: bool,
    ) -> SsdResult<Bytes> {
        let files = self.files.read();
        let file = files
            .get(name)
            .ok_or_else(|| SsdError::NotFound(name.to_string()))?;
        let size = file.data.len() as u64;
        if offset.checked_add(len).is_none_or(|end| end > size) {
            return Err(SsdError::OutOfRange {
                file: name.to_string(),
                offset,
                len,
                size,
            });
        }
        if sequential {
            self.device.charge_read_sequential(len, class);
        } else {
            self.device.charge_read(len, class);
        }
        Ok(Bytes::copy_from_slice(
            &file.data[offset as usize..(offset + len) as usize],
        ))
    }

    fn release_file(&self, file: MemFile) {
        let mut lpns = file.pages;
        if let Some(tail) = file.tail_lpn {
            lpns.push(tail);
        }
        self.device.trim_pages(&lpns);
        self.alloc.lock().release(lpns);
    }
}

impl StorageBackend for MemStorage {
    fn write_file(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
        let mut files = self.files.write();
        if let Some(old) = files.remove(name) {
            self.release_file(old);
        }
        self.device.fs_op();
        let mut file = MemFile {
            data: data.to_vec(),
            pages: Vec::new(),
            tail_lpn: None,
            // Sealed files are written atomically and durably (the engine
            // only links them into a version after the write succeeds).
            synced_len: data.len() as u64,
        };
        self.device.charge_write(data.len() as u64, class);
        match self.flush_pages(&mut file, true) {
            Ok(programmed) => {
                self.device.program_pages(&programmed);
                files.insert(name.to_string(), file);
                Ok(())
            }
            Err(e) => {
                // Return any pages allocated before the failure.
                self.release_file(file);
                Err(e)
            }
        }
    }

    fn append(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
        let mut files = self.files.write();
        if !files.contains_key(name) {
            self.device.fs_op();
            files.insert(name.to_string(), MemFile::default());
        }
        let file = files.get_mut(name).expect("just inserted");
        file.data.extend_from_slice(data);
        self.device.charge_write(data.len() as u64, class);
        let programmed = self.flush_pages(file, false)?;
        self.device.program_pages(&programmed);
        Ok(())
    }

    fn read(&self, name: &str, offset: u64, len: u64, class: IoClass) -> SsdResult<Bytes> {
        self.read_impl(name, offset, len, class, false)
    }

    fn read_sequential(
        &self,
        name: &str,
        offset: u64,
        len: u64,
        class: IoClass,
    ) -> SsdResult<Bytes> {
        self.read_impl(name, offset, len, class, true)
    }

    fn size(&self, name: &str) -> SsdResult<u64> {
        self.files
            .read()
            .get(name)
            .map(|f| f.data.len() as u64)
            .ok_or_else(|| SsdError::NotFound(name.to_string()))
    }

    fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    fn delete(&self, name: &str) -> SsdResult<()> {
        let mut files = self.files.write();
        let file = files
            .remove(name)
            .ok_or_else(|| SsdError::NotFound(name.to_string()))?;
        self.device.fs_op();
        self.release_file(file);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> SsdResult<()> {
        let mut files = self.files.write();
        let file = files
            .remove(from)
            .ok_or_else(|| SsdError::NotFound(from.to_string()))?;
        if let Some(old) = files.insert(to.to_string(), file) {
            self.release_file(old);
        }
        self.device.fs_op();
        Ok(())
    }

    fn sync(&self, name: &str) -> SsdResult<()> {
        let mut files = self.files.write();
        let file = files
            .get_mut(name)
            .ok_or_else(|| SsdError::NotFound(name.to_string()))?;
        self.device.fs_op();
        let programmed = self.flush_pages(file, true)?;
        self.device.program_pages(&programmed);
        file.synced_len = file.data.len() as u64;
        Ok(())
    }

    fn synced_len(&self, name: &str) -> SsdResult<u64> {
        self.files
            .read()
            .get(name)
            .map(|f| f.synced_len)
            .ok_or_else(|| SsdError::NotFound(name.to_string()))
    }

    fn truncate(&self, name: &str, len: u64) -> SsdResult<()> {
        let mut files = self.files.write();
        let file = files
            .get_mut(name)
            .ok_or_else(|| SsdError::NotFound(name.to_string()))?;
        if len >= file.data.len() as u64 {
            return Ok(());
        }
        file.data.truncate(len as usize);
        file.synced_len = file.synced_len.min(len);
        // Release pages past the new end; a mid-page cut also invalidates
        // the flushed partial tail (its content changed).
        let page = self.page_bytes();
        let keep = (len / page) as usize;
        let mut released: Vec<u64> = file.pages.split_off(keep.min(file.pages.len()));
        if let Some(tail) = file.tail_lpn.take() {
            released.push(tail);
        }
        self.device.fs_op();
        if !released.is_empty() {
            self.device.trim_pages(&released);
            self.alloc.lock().release(released);
        }
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn device(&self) -> Arc<SsdDevice> {
        Arc::clone(&self.device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;

    fn storage() -> Arc<MemStorage> {
        MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()))
    }

    #[test]
    fn write_and_read_roundtrip() {
        let s = storage();
        s.write_file("a.sst", b"hello world", IoClass::FlushWrite)
            .unwrap();
        assert!(s.exists("a.sst"));
        assert_eq!(s.size("a.sst").unwrap(), 11);
        assert_eq!(
            s.read("a.sst", 6, 5, IoClass::UserRead).unwrap().as_ref(),
            b"world"
        );
        assert_eq!(
            s.read_all("a.sst", IoClass::UserRead).unwrap().as_ref(),
            b"hello world"
        );
    }

    #[test]
    fn reads_out_of_range_fail() {
        let s = storage();
        s.write_file("a", b"0123456789", IoClass::Other).unwrap();
        assert!(matches!(
            s.read("a", 8, 5, IoClass::Other),
            Err(SsdError::OutOfRange { .. })
        ));
        assert!(matches!(
            s.read("missing", 0, 1, IoClass::Other),
            Err(SsdError::NotFound(_))
        ));
    }

    #[test]
    fn append_grows_files_and_flushes_pages() {
        let s = storage();
        let page = s.device().config().page_bytes as usize;
        // Three appends crossing a page boundary.
        s.append("wal", &vec![1u8; page / 2], IoClass::WalWrite)
            .unwrap();
        s.append("wal", &vec![2u8; page / 2], IoClass::WalWrite)
            .unwrap();
        s.append("wal", &[3u8; 10], IoClass::WalWrite).unwrap();
        assert_eq!(s.size("wal").unwrap(), page as u64 + 10);
        // One complete page flushed; partial tail not yet.
        assert_eq!(s.device().ftl_stats().host_pages_written, 1);
        s.sync("wal").unwrap();
        assert_eq!(s.device().ftl_stats().host_pages_written, 2);
    }

    #[test]
    fn overwrite_releases_old_pages() {
        let s = storage();
        let page = s.device().config().page_bytes as usize;
        s.write_file("f", &vec![0u8; page * 4], IoClass::FlushWrite)
            .unwrap();
        let trimmed_before = s.device().ftl_stats().pages_trimmed;
        s.write_file("f", &vec![1u8; page], IoClass::FlushWrite)
            .unwrap();
        assert_eq!(s.device().ftl_stats().pages_trimmed, trimmed_before + 4);
        assert_eq!(s.size("f").unwrap(), page as u64);
    }

    #[test]
    fn delete_trims_and_reuses_space() {
        let s = storage();
        let page = s.device().config().page_bytes as usize;
        s.write_file("f", &vec![0u8; page * 8], IoClass::FlushWrite)
            .unwrap();
        s.delete("f").unwrap();
        assert!(!s.exists("f"));
        assert!(s.delete("f").is_err());
        assert_eq!(s.total_file_bytes(), 0);
        // Freed pages must be reusable.
        s.write_file("g", &vec![0u8; page * 8], IoClass::FlushWrite)
            .unwrap();
        assert_eq!(s.size("g").unwrap(), (page * 8) as u64);
    }

    #[test]
    fn rename_replaces_destination() {
        let s = storage();
        s.write_file("a", b"aaa", IoClass::Other).unwrap();
        s.write_file("b", b"bbb", IoClass::Other).unwrap();
        s.rename("a", "b").unwrap();
        assert!(!s.exists("a"));
        assert_eq!(s.read_all("b", IoClass::Other).unwrap().as_ref(), b"aaa");
        assert!(s.rename("missing", "x").is_err());
    }

    #[test]
    fn list_is_sorted() {
        let s = storage();
        for name in ["c", "a", "b"] {
            s.write_file(name, b"x", IoClass::Other).unwrap();
        }
        assert_eq!(s.list(), vec!["a", "b", "c"]);
    }

    #[test]
    fn device_fills_up() {
        let s = storage();
        let cap = s.device().config().capacity_bytes;
        // Writing more than the logical capacity must eventually fail.
        let chunk = vec![0u8; (cap / 4) as usize];
        let mut wrote_err = false;
        for i in 0..8 {
            if s.write_file(&format!("f{i}"), &chunk, IoClass::Other)
                .is_err()
            {
                wrote_err = true;
                break;
            }
        }
        assert!(wrote_err, "device never reported full");
    }

    #[test]
    fn synced_len_tracks_durability() {
        let s = storage();
        // Sealed files are durable in full.
        s.write_file("a.sst", &[7u8; 300], IoClass::FlushWrite)
            .unwrap();
        assert_eq!(s.synced_len("a.sst").unwrap(), 300);
        // Appends are volatile until synced.
        s.append("wal", &[1u8; 100], IoClass::WalWrite).unwrap();
        assert_eq!(s.synced_len("wal").unwrap(), 0);
        s.sync("wal").unwrap();
        assert_eq!(s.synced_len("wal").unwrap(), 100);
        s.append("wal", &[2u8; 50], IoClass::WalWrite).unwrap();
        assert_eq!(s.synced_len("wal").unwrap(), 100);
        assert_eq!(s.size("wal").unwrap(), 150);
        assert!(matches!(
            s.synced_len("missing"),
            Err(SsdError::NotFound(_))
        ));
    }

    #[test]
    fn truncate_discards_tail_and_pages() {
        let s = storage();
        let page = s.device().config().page_bytes as usize;
        s.append("wal", &vec![1u8; page * 3 + 10], IoClass::WalWrite)
            .unwrap();
        s.sync("wal").unwrap();
        s.append("wal", &vec![2u8; page], IoClass::WalWrite)
            .unwrap();
        // Cut back to mid-second-page.
        let cut = (page + page / 2) as u64;
        s.truncate("wal", cut).unwrap();
        assert_eq!(s.size("wal").unwrap(), cut);
        assert_eq!(s.synced_len("wal").unwrap(), cut);
        let data = s.read_all("wal", IoClass::Other).unwrap();
        assert!(data.iter().all(|&b| b == 1));
        // Truncate past EOF is a no-op; missing file errors.
        s.truncate("wal", 1 << 30).unwrap();
        assert_eq!(s.size("wal").unwrap(), cut);
        assert!(s.truncate("missing", 0).is_err());
        // The file keeps working after the cut.
        s.append("wal", &[3u8; 20], IoClass::WalWrite).unwrap();
        s.sync("wal").unwrap();
        assert_eq!(s.size("wal").unwrap(), cut + 20);
        assert_eq!(s.synced_len("wal").unwrap(), cut + 20);
    }

    #[test]
    fn link_file_copies_and_detaches() {
        let s = storage();
        s.write_file("000007.sst", b"table bytes", IoClass::FlushWrite)
            .unwrap();
        s.link_file("000007.sst", "ckpt-a@000007.sst", IoClass::Other)
            .unwrap();
        // The link is an independent sealed copy: deleting the source
        // leaves it readable, and it is durable in full.
        s.delete("000007.sst").unwrap();
        assert_eq!(
            s.read_all("ckpt-a@000007.sst", IoClass::Other)
                .unwrap()
                .as_ref(),
            b"table bytes"
        );
        assert_eq!(s.synced_len("ckpt-a@000007.sst").unwrap(), 11);
        // Existing destinations are refused; missing sources error.
        s.write_file("x", b"x", IoClass::Other).unwrap();
        assert!(s
            .link_file("x", "ckpt-a@000007.sst", IoClass::Other)
            .is_err());
        assert!(s.link_file("missing", "y", IoClass::Other).is_err());
    }

    #[test]
    fn list_dir_filters_by_prefix() {
        let s = storage();
        for name in [
            "ckpt-a@CURRENT",
            "ckpt-a@000001.sst",
            "ckpt-b@CURRENT",
            "000001.sst",
        ] {
            s.write_file(name, b"x", IoClass::Other).unwrap();
        }
        assert_eq!(
            s.list_dir("ckpt-a@"),
            vec!["ckpt-a@000001.sst", "ckpt-a@CURRENT"]
        );
        assert_eq!(s.list_dir("ckpt-b@"), vec!["ckpt-b@CURRENT"]);
        assert!(s.list_dir("ckpt-z@").is_empty());
    }

    #[test]
    fn total_file_bytes_tracks_live_data() {
        let s = storage();
        s.write_file("a", &vec![0u8; 1000], IoClass::Other).unwrap();
        s.append("b", &vec![0u8; 500], IoClass::Other).unwrap();
        assert_eq!(s.total_file_bytes(), 1500);
        s.delete("a").unwrap();
        assert_eq!(s.total_file_bytes(), 500);
    }
}
