// determinism_taint fixture — every sink class receives a host-derived
// value. Each call line below must produce exactly one finding.

fn poison() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}

fn wal_flow(w: &mut LogWriter) {
    let stamp = poison();
    let buf = stamp.to_le_bytes();
    LogWriter::add_record(w, &buf);
}

fn sstable_flow(b: &mut TableBuilder) {
    let stamp = poison();
    let val = stamp.to_le_bytes();
    TableBuilder::add(b, b"key", &val);
}

fn manifest_flow(vs: &mut VersionSet) {
    let seq = poison();
    VersionSet::log_and_apply(vs, seq);
}

fn clock_flow(c: &VirtualClock) {
    let delta = poison();
    c.advance(delta);
}

fn wire_flow() {
    let stamp = poison();
    encode_request(stamp, 0);
}

fn bench_flow(r: &ClosedResult) {
    let seed = poison();
    ClosedResult::json(r, seed);
}
