//! Offline drop-in subset of the `rand` crate.
//!
//! Provides the API surface the workspace uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! (`gen`, `gen_range`, `gen_bool`, `gen_ratio`). The generator is
//! xoshiro256++ seeded via splitmix64 — deterministic and statistically
//! solid for workload generation, which is all this workspace needs.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types constructible from a uniform random bit stream (the subset of
/// `rand`'s `Standard` distribution the workspace samples).
pub trait FromRandom {
    /// Builds a value from the generator.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits mapped onto [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift rejection (Lemire).
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = x.wrapping_mul(span);
                    if lo >= span || lo >= span.wrapping_neg() % span {
                        return self.start + hi as $t;
                    }
                }
            }
        }
    )*};
}

impl_uint_range!(u64, u32, u16, u8, usize);

/// Random number generator interface (merged `RngCore` + `Rng` subset).
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly from its standard distribution.
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(numerator <= denominator, "gen_ratio: ratio > 1");
        numerator > 0 && self.gen_range(0u32..denominator) < numerator
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_and_ratio_respect_probability() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_ratio(0, 4));
        assert!(r.gen_ratio(4, 4));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
