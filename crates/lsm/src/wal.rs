//! Write-ahead log, LevelDB record format.
//!
//! The log is a sequence of 32 KiB blocks. Each record carries a masked
//! CRC32C, a 16-bit length, and a type byte (`FULL`, or `FIRST`/`MIDDLE`/
//! `LAST` for records spanning blocks). A block's unusable tail (< 7 bytes)
//! is zero-padded. The same format backs both the WAL and the manifest.

use std::sync::Arc;

use ldc_ssd::{IoClass, StorageBackend};

use crate::crc32c;
use crate::error::{corruption, CorruptionInfo, Error, Result};

/// Log block size.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Record header: crc(4) + length(2) + type(1).
pub const HEADER_SIZE: usize = 7;

const FULL: u8 = 1;
const FIRST: u8 = 2;
const MIDDLE: u8 = 3;
const LAST: u8 = 4;

/// Appends length-prefixed, checksummed records to a log file.
pub struct LogWriter {
    storage: Arc<dyn StorageBackend>,
    name: String,
    class: IoClass,
    block_offset: usize,
}

impl LogWriter {
    /// Creates a writer for `name` (created on first append). `class` tags
    /// the traffic (WAL vs manifest).
    pub fn new(storage: Arc<dyn StorageBackend>, name: impl Into<String>, class: IoClass) -> Self {
        Self {
            storage,
            name: name.into(),
            class,
            block_offset: 0,
        }
    }

    /// File this writer appends to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one record (atomically recoverable as a unit).
    pub fn add_record(&mut self, payload: &[u8]) -> Result<()> {
        let mut left = payload;
        let mut begin = true;
        // A zero-length record still emits one FULL header.
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                if leftover > 0 {
                    let zeros = vec![0u8; leftover];
                    self.storage.append(&self.name, &zeros, self.class)?;
                }
                self.block_offset = 0;
            }
            let avail = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = left.len().min(avail);
            let end = fragment_len == left.len();
            let record_type = match (begin, end) {
                (true, true) => FULL,
                (true, false) => FIRST,
                (false, true) => LAST,
                (false, false) => MIDDLE,
            };
            self.emit(record_type, &left[..fragment_len])?;
            left = &left[fragment_len..];
            begin = false;
            if end {
                break;
            }
        }
        Ok(())
    }

    /// Durably flushes buffered pages (an `fsync`).
    pub fn sync(&self) -> Result<()> {
        self.storage.sync(&self.name)?;
        Ok(())
    }

    fn emit(&mut self, record_type: u8, data: &[u8]) -> Result<()> {
        let mut buf = Vec::with_capacity(HEADER_SIZE + data.len());
        let crc = crc32c::mask(crc32c::extend(crc32c::crc32c(&[record_type]), data));
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&(data.len() as u16).to_le_bytes());
        buf.push(record_type);
        buf.extend_from_slice(data);
        self.storage.append(&self.name, &buf, self.class)?;
        self.block_offset += buf.len();
        debug_assert!(self.block_offset <= BLOCK_SIZE);
        if self.block_offset == BLOCK_SIZE {
            self.block_offset = 0;
        }
        Ok(())
    }
}

/// Reads records back, tolerating a truncated tail (crash recovery).
pub struct LogReader {
    data: Vec<u8>,
    /// File the bytes came from (empty for in-memory readers); names the
    /// log in corruption reports.
    name: String,
    offset: usize,
    /// Offset just past the last complete logical record returned.
    last_complete_end: usize,
    /// Set when the log ended in a partially-written record rather than a
    /// clean boundary.
    torn: bool,
}

impl LogReader {
    /// Opens `name` and buffers its contents for replay.
    pub fn open(storage: &dyn StorageBackend, name: &str) -> Result<Self> {
        let data = storage.read_all(name, IoClass::Other)?;
        let mut reader = Self::from_bytes(data.to_vec());
        reader.name = name.to_string();
        Ok(reader)
    }

    /// Builds a reader over raw bytes (testing).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self {
            data,
            name: String::new(),
            offset: 0,
            last_complete_end: 0,
            torn: false,
        }
    }

    /// Bytes of torn tail discarded so far: everything past the last
    /// complete record when the log ended mid-record, zero on a clean end.
    /// Meaningful once `read_record` has returned `Ok(None)`.
    pub fn truncated_tail_bytes(&self) -> u64 {
        if self.torn {
            (self.data.len() - self.last_complete_end) as u64
        } else {
            0
        }
    }

    /// Offset of the clean log prefix — the point a recovery should
    /// truncate the file back to when a torn tail was found.
    pub fn clean_prefix(&self) -> u64 {
        if self.torn {
            self.last_complete_end as u64
        } else {
            self.data.len() as u64
        }
    }

    /// Returns the next record, `Ok(None)` at a clean end of log, or an
    /// error for mid-log corruption. A torn final record (crash during
    /// append) is treated as end-of-log, matching LevelDB recovery.
    pub fn read_record(&mut self) -> Result<Option<Vec<u8>>> {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            let fragment = match self.read_physical_record()? {
                Some(f) => f,
                None => {
                    if assembled.is_some() {
                        // Torn multi-fragment record at the tail: the FIRST/
                        // MIDDLE fragments read so far are discarded too.
                        self.torn = true;
                    }
                    return Ok(None);
                }
            };
            match fragment.record_type {
                FULL => {
                    if assembled.is_some() {
                        return Err(corruption("FULL record inside fragmented record"));
                    }
                    self.last_complete_end = self.offset;
                    return Ok(Some(fragment.data));
                }
                FIRST => {
                    if assembled.is_some() {
                        return Err(corruption("FIRST record inside fragmented record"));
                    }
                    assembled = Some(fragment.data);
                }
                MIDDLE => match assembled.as_mut() {
                    Some(buf) => buf.extend_from_slice(&fragment.data),
                    None => return Err(corruption("MIDDLE record without FIRST")),
                },
                LAST => match assembled.take() {
                    Some(mut buf) => {
                        buf.extend_from_slice(&fragment.data);
                        self.last_complete_end = self.offset;
                        return Ok(Some(buf));
                    }
                    None => return Err(corruption("LAST record without FIRST")),
                },
                t => return Err(corruption(format!("unknown record type {t}"))),
            }
        }
    }

    /// Replays every record through `f`.
    pub fn for_each(&mut self, mut f: impl FnMut(&[u8]) -> Result<()>) -> Result<()> {
        while let Some(record) = self.read_record()? {
            f(&record)?;
        }
        Ok(())
    }

    fn read_physical_record(&mut self) -> Result<Option<PhysicalRecord>> {
        loop {
            let block_remaining = BLOCK_SIZE - (self.offset % BLOCK_SIZE);
            if block_remaining < HEADER_SIZE {
                // Padding zone; skip to next block.
                self.offset += block_remaining;
                continue;
            }
            if self.offset + HEADER_SIZE > self.data.len() {
                // A partial header is a torn write; ending exactly on a
                // record boundary is a clean end.
                if self.offset < self.data.len() {
                    self.torn = true;
                }
                return Ok(None);
            }
            let Some(header) = self.data.get(self.offset..self.offset + HEADER_SIZE) else {
                // Unreachable: the length check above guarantees the range.
                self.torn = true;
                return Ok(None);
            };
            let (crc_bytes, rest) = header.split_at(4);
            let (len_bytes, type_byte) = rest.split_at(2);
            let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap_or_default());
            let len = u16::from_le_bytes(len_bytes.try_into().unwrap_or_default()) as usize;
            let record_type = type_byte.first().copied().unwrap_or_default();
            if record_type == 0 && len == 0 && stored_crc == 0 {
                // Zero padding written by a block switch; move to next block.
                self.offset += block_remaining;
                if self.offset >= self.data.len() {
                    return Ok(None);
                }
                continue;
            }
            let data_start = self.offset + HEADER_SIZE;
            let data_end = data_start + len;
            if data_end > self.data.len() {
                self.torn = true; // torn record at tail
                return Ok(None);
            }
            let Some(data) = self.data.get(data_start..data_end) else {
                // Unreachable: data_end was checked against len above.
                self.torn = true;
                return Ok(None);
            };
            let actual = crc32c::extend(crc32c::crc32c(&[record_type]), data);
            if crc32c::unmask(stored_crc) != actual {
                // A bad checksum on the very last record is indistinguishable
                // from a torn sector write: treat it as end-of-log so a crash
                // mid-append never blocks recovery. Anywhere earlier it is
                // real corruption.
                if data_end == self.data.len() {
                    self.torn = true;
                    return Ok(None);
                }
                return Err(Error::Corruption(CorruptionInfo {
                    file: self.name.clone(),
                    offset: Some(self.offset as u64),
                    detail: "log record crc mismatch".to_string(),
                }));
            }
            let record = PhysicalRecord {
                record_type,
                data: data.to_vec(),
            };
            self.offset = data_end;
            return Ok(Some(record));
        }
    }
}

struct PhysicalRecord {
    record_type: u8,
    data: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_ssd::{MemStorage, SsdConfig, SsdDevice};

    fn storage() -> Arc<MemStorage> {
        MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()))
    }

    fn roundtrip(records: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let s = storage();
        let mut w = LogWriter::new(s.clone(), "test.log", IoClass::WalWrite);
        for r in records {
            w.add_record(r).unwrap();
        }
        w.sync().unwrap();
        let mut reader = LogReader::open(s.as_ref(), "test.log").unwrap();
        let mut out = Vec::new();
        while let Some(r) = reader.read_record().unwrap() {
            out.push(r);
        }
        out
    }

    #[test]
    fn small_records_roundtrip() {
        let records = vec![
            b"one".to_vec(),
            b"two".to_vec(),
            Vec::new(),
            b"four".to_vec(),
        ];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn large_record_spans_blocks() {
        let big = vec![0xabu8; BLOCK_SIZE * 3 + 123];
        let records = vec![b"before".to_vec(), big.clone(), b"after".to_vec()];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn records_filling_block_boundary() {
        // Craft records so a header lands exactly at the block edge.
        let first = vec![1u8; BLOCK_SIZE - HEADER_SIZE - HEADER_SIZE - 3];
        let records = vec![first, b"abc".to_vec(), b"def".to_vec()];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn torn_tail_is_end_of_log() {
        let s = storage();
        let mut w = LogWriter::new(s.clone(), "test.log", IoClass::WalWrite);
        w.add_record(b"complete").unwrap();
        w.add_record(&vec![7u8; 1000]).unwrap();
        w.sync().unwrap();
        let bytes = s.read_all("test.log", IoClass::Other).unwrap().to_vec();
        // Chop the second record in half.
        let truncated = bytes[..bytes.len() - 500].to_vec();
        let torn_len = truncated.len();
        let mut reader = LogReader::from_bytes(truncated);
        assert_eq!(reader.read_record().unwrap().unwrap(), b"complete");
        assert_eq!(reader.read_record().unwrap(), None);
        // The torn record's bytes are accounted and the clean prefix ends
        // after "complete"'s record.
        let clean = (HEADER_SIZE + b"complete".len()) as u64;
        assert_eq!(reader.clean_prefix(), clean);
        assert_eq!(reader.truncated_tail_bytes(), torn_len as u64 - clean);
    }

    #[test]
    fn torn_header_is_end_of_log() {
        let s = storage();
        let mut w = LogWriter::new(s.clone(), "test.log", IoClass::WalWrite);
        w.add_record(b"complete").unwrap();
        w.add_record(b"doomed").unwrap();
        w.sync().unwrap();
        let bytes = s.read_all("test.log", IoClass::Other).unwrap().to_vec();
        // Cut inside the second record's 7-byte header.
        let cut = HEADER_SIZE + b"complete".len() + 3;
        let mut reader = LogReader::from_bytes(bytes[..cut].to_vec());
        assert_eq!(reader.read_record().unwrap().unwrap(), b"complete");
        assert_eq!(reader.read_record().unwrap(), None);
        assert_eq!(reader.truncated_tail_bytes(), 3);
        assert_eq!(reader.clean_prefix(), cut as u64 - 3);
    }

    #[test]
    fn torn_fragmented_record_is_end_of_log() {
        let s = storage();
        let mut w = LogWriter::new(s.clone(), "test.log", IoClass::WalWrite);
        w.add_record(b"complete").unwrap();
        w.add_record(&vec![9u8; BLOCK_SIZE * 2]).unwrap(); // FIRST..LAST
        w.sync().unwrap();
        let bytes = s.read_all("test.log", IoClass::Other).unwrap().to_vec();
        // Keep the FIRST fragment (fills block 0) but tear inside a later one.
        let mut reader = LogReader::from_bytes(bytes[..BLOCK_SIZE + 100].to_vec());
        assert_eq!(reader.read_record().unwrap().unwrap(), b"complete");
        assert_eq!(reader.read_record().unwrap(), None);
        assert!(reader.truncated_tail_bytes() > 0);
        assert_eq!(
            reader.clean_prefix(),
            (HEADER_SIZE + b"complete".len()) as u64
        );
    }

    #[test]
    fn clean_end_reports_no_tear() {
        let s = storage();
        let mut w = LogWriter::new(s.clone(), "test.log", IoClass::WalWrite);
        w.add_record(b"one").unwrap();
        w.add_record(b"two").unwrap();
        w.sync().unwrap();
        let bytes = s.read_all("test.log", IoClass::Other).unwrap().to_vec();
        let len = bytes.len() as u64;
        let mut reader = LogReader::from_bytes(bytes);
        while reader.read_record().unwrap().is_some() {}
        assert_eq!(reader.truncated_tail_bytes(), 0);
        assert_eq!(reader.clean_prefix(), len);
    }

    #[test]
    fn corrupt_crc_mid_log_is_detected() {
        let s = storage();
        let mut w = LogWriter::new(s.clone(), "test.log", IoClass::WalWrite);
        w.add_record(b"payload-payload").unwrap();
        w.add_record(b"a-later-record-so-the-flip-is-mid-log")
            .unwrap();
        w.sync().unwrap();
        let mut bytes = s.read_all("test.log", IoClass::Other).unwrap().to_vec();
        // Flip a payload byte of the FIRST record without touching headers.
        bytes[HEADER_SIZE + 2] ^= 0xff;
        let mut reader = LogReader::from_bytes(bytes);
        assert!(matches!(reader.read_record(), Err(Error::Corruption(_))));
    }

    #[test]
    fn corrupt_crc_on_final_record_reads_as_torn_tail() {
        // A flipped byte in the very last record is indistinguishable from
        // a torn sector write: recovery treats it as end-of-log and reports
        // the discarded bytes instead of failing the open.
        let s = storage();
        let mut w = LogWriter::new(s.clone(), "test.log", IoClass::WalWrite);
        w.add_record(b"good").unwrap();
        w.add_record(b"flipped").unwrap();
        w.sync().unwrap();
        let mut bytes = s.read_all("test.log", IoClass::Other).unwrap().to_vec();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        let mut reader = LogReader::from_bytes(bytes);
        assert_eq!(reader.read_record().unwrap().unwrap(), b"good");
        assert_eq!(reader.read_record().unwrap(), None);
        assert_eq!(
            reader.truncated_tail_bytes(),
            (HEADER_SIZE + b"flipped".len()) as u64
        );
    }

    #[test]
    fn for_each_visits_all() {
        let s = storage();
        let mut w = LogWriter::new(s.clone(), "log", IoClass::WalWrite);
        for i in 0..10u8 {
            w.add_record(&[i]).unwrap();
        }
        let mut reader = LogReader::open(s.as_ref(), "log").unwrap();
        let mut sum = 0u32;
        reader
            .for_each(|r| {
                sum += u32::from(r[0]);
                Ok(())
            })
            .unwrap();
        assert_eq!(sum, 45);
    }

    #[test]
    fn empty_log_reads_cleanly() {
        let mut reader = LogReader::from_bytes(Vec::new());
        assert_eq!(reader.read_record().unwrap(), None);
    }
}
