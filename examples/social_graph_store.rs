//! Social-graph workload: the paper's motivating scenario (§I cites
//! Facebook's move of social-graph storage onto LSM engines).
//!
//! Models a feed service: hot users post frequently (zipfian writes),
//! followers read timelines with short range scans, and the operator cares
//! about tail latency. Runs the same traffic against the UDC baseline and
//! LDC and prints the comparison an SRE would look at.
//!
//! ```text
//! cargo run --release --example social_graph_store
//! ```

use ldc::workload::{Distribution, Histogram, Sampler};
use ldc::{LdcDb, Options};

const USERS: u64 = 20_000;
const OPS: u64 = 120_000;

struct Outcome {
    label: &'static str,
    post_latency: Histogram,
    timeline_latency: Histogram,
    virtual_secs: f64,
    compaction_mib: f64,
}

fn run(udc: bool) -> Result<Outcome, Box<dyn std::error::Error>> {
    let mut builder = LdcDb::builder().options(Options {
        memtable_bytes: 512 << 10,
        sstable_bytes: 512 << 10,
        l1_capacity_bytes: 2 << 20,
        block_cache_bytes: 64 << 20,
        ..Options::default()
    });
    if udc {
        builder = builder.udc_baseline();
    }
    let db = builder.build()?;
    let clock = db.device().clock().clone();

    // Key layout: post:<user>:<seq> -> payload; timeline reads scan a
    // user's prefix.
    let mut who_posts = Sampler::new(Distribution::Zipfian { theta: 1.0 }, 7);
    let mut who_reads = Sampler::new(Distribution::Zipfian { theta: 1.0 }, 8);
    let mut post_counts = vec![0u32; USERS as usize];

    let mut post_latency = Histogram::new();
    let mut timeline_latency = Histogram::new();
    let t_start = clock.now();

    for i in 0..OPS {
        if i % 10 < 7 {
            // A post: ~1 KiB payload.
            let user = who_posts.sample(USERS);
            let seq = post_counts[user as usize];
            post_counts[user as usize] += 1;
            let key = format!("post:{user:08}:{seq:08}");
            let body = format!("status update {i} {}", "x".repeat(1000));
            let t0 = clock.now();
            db.put(key.as_bytes(), body.as_bytes())?;
            post_latency.record(clock.now() - t0);
        } else {
            // A timeline read: latest-ish 20 posts of a followed user.
            let user = who_reads.sample(USERS);
            let prefix = format!("post:{user:08}:");
            let t0 = clock.now();
            let _page = db.scan(prefix.as_bytes(), 20)?;
            timeline_latency.record(clock.now() - t0);
        }
    }
    let io = db.device().io_stats();
    Ok(Outcome {
        label: if udc { "UDC baseline" } else { "LDC" },
        post_latency,
        timeline_latency,
        virtual_secs: (clock.now() - t_start) as f64 / 1e9,
        compaction_mib: (io.compaction_read_bytes() + io.compaction_write_bytes()) as f64
            / 1048576.0,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("social feed: {OPS} ops, 70% posts / 30% timeline scans, zipfian users\n");
    for udc in [true, false] {
        let o = run(udc)?;
        println!("== {} ==", o.label);
        println!(
            "  posts    : p50 {:>7.1} us   p99 {:>7.1} us   p99.9 {:>8.1} us   max {:>9.1} us",
            o.post_latency.percentile(50.0) as f64 / 1e3,
            o.post_latency.percentile(99.0) as f64 / 1e3,
            o.post_latency.percentile(99.9) as f64 / 1e3,
            o.post_latency.max() as f64 / 1e3,
        );
        println!(
            "  timelines: p50 {:>7.1} us   p99 {:>7.1} us   p99.9 {:>8.1} us   max {:>9.1} us",
            o.timeline_latency.percentile(50.0) as f64 / 1e3,
            o.timeline_latency.percentile(99.0) as f64 / 1e3,
            o.timeline_latency.percentile(99.9) as f64 / 1e3,
            o.timeline_latency.max() as f64 / 1e3,
        );
        println!(
            "  totals   : {:.2} virtual s ({:.0} ops/s), compaction I/O {:.1} MiB\n",
            o.virtual_secs,
            OPS as f64 / o.virtual_secs,
            o.compaction_mib
        );
    }
    println!(
        "Expectation (the paper's headline): LDC's worst-case post latency \
         is orders of magnitude smaller, with less compaction I/O overall."
    );
    Ok(())
}
