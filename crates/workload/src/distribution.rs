//! Key-choice distributions (YCSB-compatible).
//!
//! The paper's evaluation uses the uniform distribution by default (§IV-A)
//! and Zipf distributions with constants 1–5 for Fig 11. YCSB's scrambled
//! zipfian and latest/hotspot choosers are included for the example
//! applications.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Chooses item indices in `[0, n)`.
#[derive(Debug, Clone)]
pub enum Distribution {
    /// Every item equally likely.
    Uniform,
    /// Zipf with exponent `theta`; item 0 is the most popular. The rank
    /// order is scrambled by hashing downstream (see `KeyCodec`), matching
    /// YCSB's scrambled zipfian.
    Zipfian {
        /// Skew exponent (YCSB default 0.99; the paper sweeps 1..5).
        theta: f64,
    },
    /// Skew toward recently inserted items.
    Latest,
    /// A hot set of `hot_fraction` of the items receives
    /// `hot_op_fraction` of the accesses.
    HotSpot {
        /// Fraction of the key space that is hot (e.g. 0.2).
        hot_fraction: f64,
        /// Fraction of operations hitting the hot set (e.g. 0.8).
        hot_op_fraction: f64,
    },
}

/// Stateful sampler for a [`Distribution`].
#[derive(Debug)]
pub struct Sampler {
    distribution: Distribution,
    rng: SmallRng,
    /// Cached zipfian CDF: `cdf[k]` = P(rank <= k), rebuilt when `n` or the
    /// exponent changes. O(log n) per sample after an O(n) build.
    zipf_cdf: Vec<f64>,
    zipf_for: (u64, u64), // (n, theta.to_bits())
}

impl Sampler {
    /// Creates a sampler; `seed` makes runs reproducible.
    pub fn new(distribution: Distribution, seed: u64) -> Self {
        Self {
            distribution,
            rng: SmallRng::seed_from_u64(seed),
            zipf_cdf: Vec::new(),
            zipf_for: (0, 0),
        }
    }

    /// Samples an index in `[0, n)`. `n` must be nonzero.
    pub fn sample(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        match self.distribution.clone() {
            Distribution::Uniform => self.rng.gen_range(0..n),
            Distribution::Zipfian { theta } => self.sample_zipf(n, theta),
            Distribution::Latest => {
                // Zipf over recency: rank 0 = newest item.
                let rank = self.sample_zipf(n, 0.99);
                n - 1 - rank
            }
            Distribution::HotSpot {
                hot_fraction,
                hot_op_fraction,
            } => {
                let hot_n = ((n as f64 * hot_fraction).ceil() as u64).clamp(1, n);
                if self.rng.gen_bool(hot_op_fraction.clamp(0.0, 1.0)) {
                    self.rng.gen_range(0..hot_n)
                } else if hot_n < n {
                    self.rng.gen_range(hot_n..n)
                } else {
                    self.rng.gen_range(0..n)
                }
            }
        }
    }

    /// Inverse-CDF zipfian sampling over a cached cumulative table.
    fn sample_zipf(&mut self, n: u64, theta: f64) -> u64 {
        let tag = (n, theta.to_bits());
        // Tolerate small growth of `n` (the Latest chooser re-samples as
        // items are inserted) without rebuilding the table every call.
        let (cached_n, cached_theta) = self.zipf_for;
        let close_enough = cached_theta == theta.to_bits()
            && cached_n > 0
            && n >= cached_n
            && n - cached_n <= cached_n / 64;
        if self.zipf_for != tag && !close_enough {
            let mut cdf = Vec::with_capacity(n as usize);
            let mut acc = 0.0;
            for k in 1..=n {
                acc += 1.0 / (k as f64).powf(theta);
                cdf.push(acc);
            }
            let total = acc;
            for v in &mut cdf {
                *v /= total;
            }
            self.zipf_cdf = cdf;
            self.zipf_for = tag;
        }
        let u: f64 = self.rng.gen();
        self.zipf_cdf
            .partition_point(|&c| c < u)
            .min(n as usize - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_the_space() {
        let mut s = Sampler::new(Distribution::Uniform, 42);
        let n = 100;
        let mut seen = vec![false; n as usize];
        for _ in 0..10_000 {
            seen[s.sample(n) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "uniform missed some items");
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let mut s = Sampler::new(Distribution::Uniform, 7);
        let n = 10;
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[s.sample(n) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let mut s = Sampler::new(Distribution::Zipfian { theta: 1.0 }, 42);
        let n = 1000;
        let mut head = 0;
        let total = 20_000;
        for _ in 0..total {
            if s.sample(n) < 10 {
                head += 1;
            }
        }
        // With theta=1, the top-1% of ranks gets ~39% of accesses.
        assert!(
            head as f64 / total as f64 > 0.3,
            "zipf head too light: {head}/{total}"
        );
    }

    #[test]
    fn larger_theta_is_more_concentrated() {
        let head_fraction = |theta: f64| {
            let mut s = Sampler::new(Distribution::Zipfian { theta }, 42);
            let total = 10_000;
            let mut head = 0;
            for _ in 0..total {
                if s.sample(1000) < 10 {
                    head += 1;
                }
            }
            head as f64 / total as f64
        };
        let h1 = head_fraction(1.0);
        let h2 = head_fraction(2.0);
        let h5 = head_fraction(5.0);
        assert!(h2 > h1);
        assert!(
            h5 > 0.99,
            "theta=5 should be almost fully concentrated: {h5}"
        );
    }

    #[test]
    fn latest_prefers_recent() {
        let mut s = Sampler::new(Distribution::Latest, 42);
        let n = 1000;
        let total = 10_000;
        let mut recent = 0;
        for _ in 0..total {
            if s.sample(n) >= n - 10 {
                recent += 1;
            }
        }
        assert!(recent as f64 / total as f64 > 0.3);
    }

    #[test]
    fn hotspot_honors_fractions() {
        let mut s = Sampler::new(
            Distribution::HotSpot {
                hot_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
            42,
        );
        let n = 1000;
        let total = 50_000;
        let mut hot = 0;
        for _ in 0..total {
            if s.sample(n) < 200 {
                hot += 1;
            }
        }
        let ratio = hot as f64 / total as f64;
        assert!((0.75..0.85).contains(&ratio), "hot ratio {ratio}");
    }

    #[test]
    fn samplers_are_deterministic() {
        let mut a = Sampler::new(Distribution::Zipfian { theta: 1.0 }, 9);
        let mut b = Sampler::new(Distribution::Zipfian { theta: 1.0 }, 9);
        for _ in 0..100 {
            assert_eq!(a.sample(500), b.sample(500));
        }
    }

    #[test]
    fn single_item_space() {
        for d in [
            Distribution::Uniform,
            Distribution::Zipfian { theta: 1.0 },
            Distribution::Latest,
            Distribution::HotSpot {
                hot_fraction: 0.5,
                hot_op_fraction: 0.5,
            },
        ] {
            let mut s = Sampler::new(d, 1);
            assert_eq!(s.sample(1), 0);
        }
    }
}
