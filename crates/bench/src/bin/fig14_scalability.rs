//! Fig 14 — scalability with request count, UDC vs LDC.
//!
//! Paper: from 5 M to 30 M requests LDC sustains 39–65% higher throughput
//! and saves 43.3–46.7% of compaction I/O — the advantage does not erode
//! as the store grows.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(20_000);
    let multipliers = [1u64, 2, 3, 4, 5, 6];
    let mut rows = Vec::new();
    for &m in &multipliers {
        let ops = args.ops * m;
        let spec = WorkloadSpec::read_write_balanced(ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        let (udc, ldc) = run_both(&paper_scaled_options(), &SsdConfig::default(), &spec);
        let io_saving =
            1.0 - ldc.compaction_io_bytes() as f64 / udc.compaction_io_bytes().max(1) as f64;
        rows.push(vec![
            ops.to_string(),
            format!("{:.0}", udc.throughput()),
            format!("{:.0}", ldc.throughput()),
            format!(
                "{:+.1}%",
                100.0 * (ldc.throughput() / udc.throughput() - 1.0)
            ),
            format!("{:.1}%", io_saving * 100.0),
        ]);
    }
    print_table(
        args.csv,
        "Fig 14: scalability with request count (RWB)",
        &[
            "requests",
            "UDC ops/s",
            "LDC ops/s",
            "LDC gain",
            "compaction I/O saved",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: +39%..+65% throughput and 43.3%..46.7% I/O \
         savings across 5M-30M requests. Expectation: the gain holds \
         steady (or grows) with scale."
    );
}
