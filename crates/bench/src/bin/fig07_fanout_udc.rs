//! Fig 7 — "Tuning fan-out cannot reduce amplification and promote
//! throughput" (for the traditional UDC).
//!
//! The paper sweeps the fan-out from 3 to 100 under UDC alone to motivate
//! LDC: small fan-outs shrink each round but deepen the tree (more rounds);
//! large fan-outs flatten the tree but inflate each round. Either way the
//! product — total compaction I/O — stays high.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(30_000);
    // The paper sweeps 3..100 on a 10+ GB store; at laptop scale, levels
    // beyond the data size never fill, so fan-outs above ~25 degenerate to
    // the same tree. We sweep where the parameter actually binds and use a
    // finer geometry so at least three levels are full.
    let fanouts = [3u64, 5, 10, 15, 25];
    let mut rows = Vec::new();
    for &k in &fanouts {
        let spec = WorkloadSpec::read_write_balanced(args.ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        let mut config = StoreConfig::new(System::Udc);
        config.options.fan_out = k;
        config.options.memtable_bytes = 256 << 10;
        config.options.sstable_bytes = 256 << 10;
        config.options.l1_capacity_bytes = 1 << 20;
        let result = run_experiment(&config, &spec);
        // WAL bytes in the measured window approximate the ingested user
        // payload, so total-writes / wal-writes is the window's write
        // amplification.
        let ingested = result.io.write_bytes_for(IoClass::WalWrite).max(1);
        rows.push(vec![
            k.to_string(),
            format!("{:.0}", result.throughput()),
            mib(result.compaction_io_bytes()),
            format!("{:.2}", result.io.lsm_write_amplification(ingested)),
        ]);
    }
    print_table(
        args.csv,
        &format!("Fig 7: UDC fan-out sweep (RWB, {} ops)", args.ops),
        &[
            "fan-out",
            "throughput (ops/s)",
            "compaction I/O (MiB)",
            "write amplification",
        ],
        &rows,
    );
    println!(
        "\nExpectation: no fan-out setting gives UDC both low amplification \
         and high throughput — the motivation for changing the mechanism \
         instead of the parameter."
    );
}
