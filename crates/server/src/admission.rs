//! Bounded per-shard admission queues with deterministic backpressure.
//!
//! Each shard worker lane drains one bounded queue. Admission is
//! `try_send`: when the queue is full the request is *rejected
//! immediately* with an `Overloaded` status and a retry-after hint —
//! the server never blocks a connection reader on a saturated shard and
//! never buffers unboundedly. Rejection is deterministic in queue state
//! (full ⇒ reject), which keeps overload tests and closed-loop reruns
//! reproducible.
//!
//! Counters live in [`ShardState`] (lock-free atomics) and surface both
//! through the wire `Stats` op and the server's `MetricsRegistry`.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use ldc_client::proto::ShardStat;

/// Lock-free admission counters for one shard lane.
#[derive(Debug)]
pub struct ShardState {
    capacity: u32,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    depth: AtomicU32,
    depth_high_water: AtomicU32,
}

impl ShardState {
    fn new(capacity: u32) -> Self {
        Self {
            capacity,
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            depth: AtomicU32::new(0),
            depth_high_water: AtomicU32::new(0),
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> u32 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Snapshot for the wire `Stats` reply.
    pub fn stat(&self) -> ShardStat {
        ShardStat {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            depth: self.depth.load(Ordering::Relaxed),
            capacity: self.capacity,
            depth_high_water: self.depth_high_water.load(Ordering::Relaxed),
        }
    }

    fn on_admit(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    fn on_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Called by the worker when it picks a job off the queue.
    pub fn on_dequeue(&self) {
        // Saturating: maintenance jobs injected without admission
        // accounting must not underflow the gauge.
        let _ = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Called by the worker after a job is fully served.
    pub fn on_complete(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The sending side of one shard's bounded job queue.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    tx: SyncSender<T>,
    state: Arc<ShardState>,
}

// Derived Clone would require T: Clone; the queue itself is always
// clonable (it only clones the sender and the counter handle).
impl<T> Clone for AdmissionQueue<T> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

impl<T> AdmissionQueue<T> {
    /// A bounded queue of `capacity` (clamped to ≥ 1) plus the worker's
    /// receiving end.
    pub fn new(capacity: usize) -> (Self, Receiver<T>) {
        let capacity = capacity.max(1);
        let (tx, rx) = sync_channel(capacity);
        let queue = Self {
            tx,
            state: Arc::new(ShardState::new(capacity as u32)),
        };
        (queue, rx)
    }

    /// Shared counters.
    pub fn state(&self) -> &Arc<ShardState> {
        &self.state
    }

    /// Non-blocking admission. `Err(job)` hands the job back when the
    /// queue is full (or the worker is gone); the caller answers
    /// `Overloaded` with a retry hint.
    pub fn try_admit(&self, job: T) -> Result<(), T> {
        match self.tx.try_send(job) {
            Ok(()) => {
                self.state.on_admit();
                Ok(())
            }
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                self.state.on_reject();
                Err(job)
            }
        }
    }

    /// Blocking send that bypasses admission accounting — for
    /// maintenance jobs (shard pause) that must reach the worker even
    /// under saturation. Returns `false` if the worker is gone.
    pub fn force(&self, job: T) -> bool {
        self.tx.send(job).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_when_full_and_counts() {
        let (queue, rx) = AdmissionQueue::new(2);
        assert!(queue.try_admit(1).is_ok());
        assert!(queue.try_admit(2).is_ok());
        // Full: rejected, job handed back.
        assert_eq!(queue.try_admit(3), Err(3));
        assert_eq!(queue.try_admit(4), Err(4));
        let stat = queue.state().stat();
        assert_eq!(stat.accepted, 2);
        assert_eq!(stat.rejected, 2);
        assert_eq!(stat.depth, 2);
        assert_eq!(stat.capacity, 2);
        assert_eq!(stat.depth_high_water, 2);

        // Draining restores capacity deterministically.
        assert_eq!(rx.recv().unwrap(), 1);
        queue.state().on_dequeue();
        queue.state().on_complete();
        assert!(queue.try_admit(5).is_ok());
        let stat = queue.state().stat();
        assert_eq!(stat.accepted, 3);
        assert_eq!(stat.completed, 1);
        assert_eq!(stat.depth, 2);
    }

    #[test]
    fn disconnected_worker_counts_as_rejection() {
        let (queue, rx) = AdmissionQueue::new(1);
        drop(rx);
        assert_eq!(queue.try_admit(9), Err(9));
        assert_eq!(queue.state().stat().rejected, 1);
        assert!(!queue.force(10));
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let (queue, _rx) = AdmissionQueue::new(0);
        assert!(queue.try_admit(1).is_ok());
        assert_eq!(queue.try_admit(2), Err(2));
        assert_eq!(queue.state().stat().capacity, 1);
    }

    #[test]
    fn dequeue_never_underflows() {
        let (queue, _rx) = AdmissionQueue::<u32>::new(4);
        queue.state().on_dequeue();
        assert_eq!(queue.state().depth(), 0);
    }
}
