//! End-to-end observability: events from every layer arrive at one sink,
//! the metrics registry tracks levels and latencies, and the stats report
//! reads like LevelDB's `leveldb.stats` property.

use std::sync::Arc;

use ldc_core::{LdcDb, LdcDbBuilder};
use ldc_lsm::Options;
use ldc_obs::{Event, EventKind, OpType, RingBufferSink};

fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
    let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (
        format!("key{h:016x}").into_bytes(),
        format!("value-{i:08}-{}", "x".repeat(64)).into_bytes(),
    )
}

fn traced_builder(sink: &Arc<RingBufferSink>) -> LdcDbBuilder {
    LdcDb::builder()
        .options(Options::small_for_tests())
        .event_sink(sink.clone())
}

#[test]
fn compaction_lifecycle_is_traced() {
    let sink = Arc::new(RingBufferSink::new(100_000));
    let db = traced_builder(&sink).build().unwrap();
    for i in 0..6000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    db.drain_background();
    let events = sink.events();
    let count = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count();

    let stats = db.stats();
    assert_eq!(count(EventKind::Flush) as u64, stats.flushes);
    assert_eq!(count(EventKind::LdcLink) as u64, stats.links);
    assert_eq!(count(EventKind::LdcMerge) as u64, stats.ldc_merges);
    assert_eq!(count(EventKind::TrivialMove) as u64, stats.trivial_moves);
    assert_eq!(count(EventKind::Slowdown) as u64, stats.slowdowns);
    assert!(
        stats.flushes > 0 && stats.ldc_merges > 0,
        "workload too small: {stats:?}"
    );

    for e in &events {
        assert!(e.end_nanos >= e.start_nanos, "inverted span: {e:?}");
    }
    let flush = events.iter().find(|e| e.kind == EventKind::Flush).unwrap();
    assert_eq!(flush.output_level, Some(0));
    assert!(flush.output_files == 1 && flush.output_bytes > 0);
    assert!(flush.write_nanos > 0 && flush.write_nanos <= flush.duration_nanos());

    let merge = events
        .iter()
        .find(|e| e.kind == EventKind::LdcMerge)
        .unwrap();
    assert_eq!(merge.level, merge.output_level, "LDC merges stay in place");
    assert!(
        merge.input_files >= 2,
        "merge must consume file + slices: {merge:?}"
    );
    assert!(merge.output_bytes > 0 && merge.input_bytes > 0);
    assert_eq!(
        merge.duration_nanos(),
        merge.read_nanos + merge.merge_nanos + merge.write_nanos,
        "phases must partition the span: {merge:?}"
    );

    let link = events
        .iter()
        .find(|e| e.kind == EventKind::LdcLink)
        .unwrap();
    assert_eq!(link.output_level, link.level.map(|l| l + 1));
    assert_eq!(link.output_bytes, 0, "links move no data");
}

#[test]
fn events_survive_a_jsonl_roundtrip() {
    let sink = Arc::new(RingBufferSink::new(100_000));
    let db = traced_builder(&sink).build().unwrap();
    for i in 0..3000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    let events = sink.events();
    assert!(!events.is_empty());
    let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
    let decoded = ldc_obs::parse_jsonl(&jsonl).expect("self-produced JSONL must parse");
    assert_eq!(decoded, events);
}

#[test]
fn metrics_registry_tracks_levels_and_latencies() {
    let sink = Arc::new(RingBufferSink::new(16));
    let db = traced_builder(&sink).build().unwrap();
    for i in 0..4000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    for i in (0..4000u64).step_by(97) {
        let (k, _) = kv(i);
        db.get(&k).unwrap();
    }
    db.scan(b"", 50).unwrap();
    db.delete(b"gone").unwrap();

    let metrics = db.metrics();
    let stats = db.stats();
    assert_eq!(metrics.op_count(OpType::Get), stats.gets);
    assert_eq!(metrics.op_count(OpType::Scan), stats.scans);
    assert_eq!(metrics.op_count(OpType::Delete), 1);
    assert!(metrics.op_count(OpType::Put) >= 4000);
    assert!(
        metrics.latency(OpType::Get).percentile(99.0)
            >= metrics.latency(OpType::Get).percentile(50.0)
    );
    assert!(metrics.latency(OpType::Put).mean() > 0.0);

    let gauges = metrics.level_gauges();
    assert_eq!(gauges.len(), db.engine_ref().options().max_levels);
    let version = db.engine_ref().version();
    for (level, g) in gauges.iter().enumerate() {
        assert_eq!(
            g.files,
            version.level_files(level) as u64,
            "level {level} files"
        );
        assert_eq!(g.bytes, version.level_bytes(level), "level {level} bytes");
    }
    assert!(gauges.iter().any(|g| g.files > 0), "no level has files");
}

#[test]
fn stats_report_reads_like_leveldb() {
    let sink = Arc::new(RingBufferSink::new(16));
    let db = traced_builder(&sink).build().unwrap();
    for i in 0..4000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
        if i % 101 == 0 {
            let (k, _) = kv(i / 2);
            db.get(&k).unwrap();
        }
    }
    let report = db.stats_report();
    for needle in [
        "Level  Files  Size(MB)  Score",
        "Frozen:",
        "Compactions:",
        "Write gates:",
        "Block cache:",
        "Bloom:",
        "Op       Count",
        "get",
        "put",
        "SSD:",
        "Virtual time:",
    ] {
        assert!(
            report.contains(needle),
            "report missing {needle:?}:\n{report}"
        );
    }
    // The report is stable against a quiet engine too.
    let quiet = LdcDb::builder().build().unwrap().stats_report();
    assert!(quiet.contains("Virtual time:"));
}

#[test]
fn adaptive_threshold_changes_are_traced() {
    let sink = Arc::new(RingBufferSink::new(4096));
    let db = LdcDb::builder()
        .options(Options::small_for_tests())
        .adaptive_threshold()
        .event_sink(sink.clone())
        .build()
        .unwrap();
    // An all-write workload must pull T_s upward, one step per window.
    for i in 0..30_000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    let adapts: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| e.kind == EventKind::ThresholdAdapt)
        .collect();
    assert!(!adapts.is_empty(), "no ThresholdAdapt events");
    for e in &adapts {
        assert_ne!(e.input_bytes, e.output_bytes, "no-op adapt event: {e:?}");
        assert!(e.output_bytes >= 1);
    }
    // Steps are one unit per window.
    for e in &adapts {
        let delta = e.output_bytes.abs_diff(e.input_bytes);
        assert_eq!(delta, 1, "adaptation must move one step: {e:?}");
    }
}

#[test]
fn noop_sink_records_nothing_but_metrics_still_work() {
    let db = LdcDb::builder()
        .options(Options::small_for_tests())
        .build()
        .unwrap();
    for i in 0..2000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    // No sink attached: events are never built, but the registry and the
    // report keep working.
    assert!(db.metrics().op_count(OpType::Put) >= 2000);
    assert!(db.stats_report().contains("Compactions:"));
    let cache = db.block_cache_counters();
    assert!(cache.hit_rate() >= 0.0 && cache.hit_rate() <= 1.0);
}
