//! Tier-1 gate: `cargo test` fails if the workspace violates any
//! `ldc-lint` invariant (determinism, panic-safety ratchet, lock order,
//! layering). Same check as `cargo run -p ldc-lint -- --workspace`.

use std::path::Path;

#[test]
fn workspace_passes_ldc_lint() {
    let root = ldc_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let report = ldc_lint::lint_workspace(&root, false).expect("lint run");
    let errors: Vec<String> = report.errors().map(|d| d.render()).collect();
    assert!(
        errors.is_empty(),
        "ldc-lint found {} violation(s):\n{}\n\n(see crates/lint/src/rules/ for \
         the invariants; intentional exceptions need \
         `// ldc-lint: allow(<rule>) — <reason>`)",
        errors.len(),
        errors.join("\n")
    );
}
