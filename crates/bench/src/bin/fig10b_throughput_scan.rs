//! Fig 10(b) — total throughput on range-query mixes, UDC vs LDC.
//!
//! Paper: LDC beats UDC by 86.2% (SCN-WH), 81.1% (SCN-RWB), 49.1% (SCN-RH);
//! 72.3% on average. Scans cover ~100 key-value pairs each, so ops/s is
//! lower than Fig 10(a) by construction.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(20_000);
    let specs = [
        WorkloadSpec::scan_write_heavy(args.ops),
        WorkloadSpec::scan_read_write_balanced(args.ops),
        WorkloadSpec::scan_read_heavy(args.ops),
    ];
    let paper = [86.2, 81.1, 49.1];
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for (spec, paper_gain) in specs.into_iter().zip(paper) {
        let spec = spec.with_codec(args.codec()).with_seed(args.seed);
        let (udc, ldc) = run_both(&paper_scaled_options(), &SsdConfig::default(), &spec);
        let gain = 100.0 * (ldc.throughput() / udc.throughput() - 1.0);
        gains.push(gain);
        rows.push(vec![
            spec.name.clone(),
            format!("{:.0}", udc.throughput()),
            format!("{:.0}", ldc.throughput()),
            format!("{gain:+.1}%"),
            format!("{paper_gain:+.1}%"),
        ]);
    }
    print_table(
        args.csv,
        &format!(
            "Fig 10b: throughput with range queries (ops/s), {} ops per workload",
            args.ops
        ),
        &["workload", "UDC", "LDC", "LDC gain", "paper gain"],
        &rows,
    );
    println!(
        "\nAverage LDC gain: {:+.1}% (paper: +72.3%).",
        gains.iter().sum::<f64>() / gains.len() as f64
    );
}
