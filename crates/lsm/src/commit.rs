//! Leader/follower group commit for the write path.
//!
//! Concurrent writers enqueue their batches into one queue. The first
//! writer to find no leader active becomes the **leader**: it drains
//! *every* queued batch (the deterministic "drain-all-queued" joining
//! rule), commits them as one WAL append + one sync, and distributes the
//! per-batch results. The other writers — **followers** — sleep on a
//! condvar until their result is posted.
//!
//! Determinism: a single-threaded caller always commits a group of
//! exactly one batch (its own), so the WAL byte stream and every virtual
//! clock charge are identical to a non-grouped write path. Grouping only
//! occurs when real threads overlap, where the engine promises
//! correctness, not timing reproducibility.
//!
//! This module uses [`ldc_obs::lockcheck`]'s rank-witnessed `Mutex` +
//! `Condvar` (id `lsm/commit::state` in `crates/lint/lock_order.toml`).
//! The lockcheck types never poison: the queue state is a plain value
//! and every transition is a single atomic critical section, so a
//! panicking writer leaves it consistent.

use std::collections::HashMap;

use ldc_obs::lockcheck::{Condvar, Mutex, MutexGuard};

use crate::batch::WriteBatch;
use crate::error::Result;

/// A writer's position in the commit queue.
pub(crate) type Ticket = u64;

/// Outcome of waiting on the queue.
pub(crate) enum Role {
    /// A leader committed this writer's batch; here is its result.
    Done(Result<()>),
    /// This writer was elected leader and now owns every queued batch
    /// (its own included). It must commit them and call
    /// [`CommitQueue::finish`].
    Leader(Vec<(Ticket, WriteBatch)>),
}

#[derive(Default)]
struct QueueState {
    next_ticket: Ticket,
    /// Batches awaiting a leader, in enqueue order.
    queue: Vec<(Ticket, WriteBatch)>,
    /// Whether a leader is currently committing a group.
    leader_active: bool,
    /// Results posted for followers, keyed by ticket.
    results: HashMap<Ticket, Result<()>>,
}

/// The write-group queue; see the module docs.
pub(crate) struct CommitQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl CommitQueue {
    pub(crate) fn new() -> Self {
        CommitQueue {
            state: Mutex::new("lsm/commit::state", QueueState::default()),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock()
    }

    /// Enqueues `batch` and returns the ticket identifying its result.
    pub(crate) fn enqueue(&self, batch: WriteBatch) -> Ticket {
        let mut st = self.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push((ticket, batch));
        ticket
    }

    /// Blocks until `ticket`'s result is posted or this caller is elected
    /// leader.
    ///
    /// Invariant: a batch leaves the queue only when a leader drains it,
    /// and that leader posts the batch's result *before* clearing the
    /// leader flag (one critical section in [`CommitQueue::finish`]). So a
    /// waiter that observes "no result, no leader" still has its batch in
    /// the queue and can safely lead.
    pub(crate) fn wait(&self, ticket: Ticket) -> Role {
        let mut st = self.lock();
        loop {
            if let Some(result) = st.results.remove(&ticket) {
                return Role::Done(result);
            }
            if !st.leader_active {
                st.leader_active = true;
                let group = std::mem::take(&mut st.queue);
                debug_assert!(group.iter().any(|(t, _)| *t == ticket));
                return Role::Leader(group);
            }
            st = st.wait(&self.ready);
        }
    }

    /// Posts the group's results, steps down as leader, and wakes every
    /// waiter (followers collect results; one of the rest is elected the
    /// next leader). Returns the leader's own result (ticket `own`).
    pub(crate) fn finish(&self, own: Ticket, results: Vec<(Ticket, Result<()>)>) -> Result<()> {
        let mut own_result = Ok(());
        {
            let mut st = self.lock();
            for (ticket, result) in results {
                if ticket == own {
                    own_result = result;
                } else {
                    st.results.insert(ticket, result);
                }
            }
            st.leader_active = false;
        }
        self.ready.notify_all();
        own_result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(key: &[u8]) -> WriteBatch {
        let mut b = WriteBatch::new();
        b.put(key, b"v");
        b
    }

    #[test]
    fn single_writer_leads_its_own_batch() {
        let q = CommitQueue::new();
        let t = q.enqueue(batch(b"a"));
        match q.wait(t) {
            Role::Leader(group) => {
                assert_eq!(group.len(), 1);
                assert_eq!(group[0].0, t);
                assert!(q.finish(t, vec![(t, Ok(()))]).is_ok());
            }
            Role::Done(_) => panic!("first writer must lead"),
        }
        // The queue is reusable after the leader steps down.
        let t2 = q.enqueue(batch(b"b"));
        assert!(matches!(q.wait(t2), Role::Leader(_)));
    }

    #[test]
    fn leader_drains_all_queued_batches() {
        let q = CommitQueue::new();
        let t1 = q.enqueue(batch(b"a"));
        let t2 = q.enqueue(batch(b"b"));
        let t3 = q.enqueue(batch(b"c"));
        match q.wait(t1) {
            Role::Leader(group) => {
                let tickets: Vec<Ticket> = group.iter().map(|(t, _)| *t).collect();
                assert_eq!(tickets, vec![t1, t2, t3]);
                q.finish(t1, tickets.iter().map(|t| (*t, Ok(()))).collect::<Vec<_>>())
                    .unwrap();
            }
            Role::Done(_) => panic!("must lead"),
        }
        // Followers find their results without leading.
        assert!(matches!(q.wait(t2), Role::Done(Ok(()))));
        assert!(matches!(q.wait(t3), Role::Done(Ok(()))));
    }

    #[test]
    fn concurrent_writers_all_commit() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let q = Arc::new(CommitQueue::new());
        let committed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let q = Arc::clone(&q);
                let committed = Arc::clone(&committed);
                s.spawn(move || {
                    let t = q.enqueue(batch(&i.to_be_bytes()));
                    match q.wait(t) {
                        Role::Done(r) => r.unwrap(),
                        Role::Leader(group) => {
                            committed.fetch_add(group.len() as u64, Ordering::SeqCst);
                            let results = group.iter().map(|(t, _)| (*t, Ok(()))).collect();
                            q.finish(t, results).unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(committed.load(Ordering::SeqCst), 8);
    }
}
