// Fixture (checked as crates/client/src/client.rs): the client must not
// know the server exists — the wire protocol lives client-side so the
// dependency arrow points server -> client, never back.
use ldc_server::ServerConfig; // flagged

fn connect_locally() -> u16 {
    ldc_server::LdcServer::start(ServerConfig::default()) // flagged: qualified path
        .map(|s| s.local_addr().port())
        .unwrap_or(0)
}
