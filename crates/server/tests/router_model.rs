//! Model equivalence: an N-shard store behind `ShardRouter` must be
//! observationally identical to one unsharded `LdcDb` oracle — same
//! gets, same merged scans, same multi-get batches — for any operation
//! sequence. Runs the routing/merging machinery directly (no TCP) so a
//! failure localizes to the router, not the transport.

use ldc_core::lsm::Options;
use ldc_core::LdcDb;
use ldc_server::{merge_scan_parts, ShardRouter};

struct Sharded {
    router: ShardRouter,
    shards: Vec<LdcDb>,
}

impl Sharded {
    fn new(n: usize) -> Self {
        Self {
            router: ShardRouter::new(n),
            shards: LdcDb::builder()
                .options(Options::small_for_tests())
                .build_shards(n)
                .unwrap(),
        }
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.shards[self.router.shard_of(key)]
            .put(key, value)
            .unwrap();
    }

    fn delete(&self, key: &[u8]) {
        self.shards[self.router.shard_of(key)].delete(key).unwrap();
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shards[self.router.shard_of(key)].get(key).unwrap()
    }

    fn scan(&self, start: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let parts = self
            .shards
            .iter()
            .map(|db| db.scan(start, limit).unwrap())
            .collect();
        merge_scan_parts(parts, limit)
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        let groups = self.router.group_keys(keys);
        let mut out = vec![None; keys.len()];
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let refs: Vec<&[u8]> = group.iter().map(|(_, k)| k.as_slice()).collect();
            let values = self.shards[shard].multi_get(&refs).unwrap();
            for ((idx, _), value) in group.into_iter().zip(values) {
                out[idx] = value;
            }
        }
        out
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Drives the same deterministic mixed op sequence through a 5-shard
/// routed store and a single-store oracle, cross-checking every read.
#[test]
fn sharded_store_matches_single_shard_oracle() {
    const OPS: usize = 4000;
    const KEY_SPACE: u64 = 400;
    let sharded = Sharded::new(5);
    let oracle = LdcDb::builder()
        .options(Options::small_for_tests())
        .build()
        .unwrap();

    let mut rng = 0x1dc_5eedu64;
    let key = |i: u64| format!("mkey{:016x}", i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).into_bytes();
    for step in 0..OPS {
        let r = xorshift(&mut rng);
        let k = key(r % KEY_SPACE);
        match r % 100 {
            // 45% puts.
            0..=44 => {
                let v = format!("v{step:06}-{}", "x".repeat((r % 48) as usize)).into_bytes();
                sharded.put(&k, &v);
                oracle.put(&k, &v).unwrap();
            }
            // 10% deletes.
            45..=54 => {
                sharded.delete(&k);
                oracle.delete(&k).unwrap();
            }
            // 25% point reads.
            55..=79 => {
                assert_eq!(sharded.get(&k), oracle.get(&k).unwrap(), "get {step}");
            }
            // 10% scans from a random prefix point.
            80..=89 => {
                let limit = 1 + (r % 40) as usize;
                let got = sharded.scan(&k, limit);
                let want = oracle.scan(&k, limit).unwrap();
                assert_eq!(got, want, "scan at step {step}");
                assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
            }
            // 10% multi-gets over a random key batch.
            _ => {
                let batch: Vec<Vec<u8>> = (0..(1 + r % 12))
                    .map(|j| key((r / 7 + j * 31) % KEY_SPACE))
                    .collect();
                let got = sharded.multi_get(&batch);
                let want: Vec<Option<Vec<u8>>> =
                    batch.iter().map(|k| oracle.get(k).unwrap()).collect();
                assert_eq!(got, want, "multi_get at step {step}");
            }
        }
    }

    // Full final sweep: every key and the complete merged scan agree.
    for i in 0..KEY_SPACE {
        let k = key(i);
        assert_eq!(sharded.get(&k), oracle.get(&k).unwrap());
    }
    let full_sharded = sharded.scan(b"", usize::MAX / 2);
    let full_oracle = oracle.scan(b"", usize::MAX / 2).unwrap();
    assert_eq!(full_sharded, full_oracle);
    assert!(!full_sharded.is_empty());
}

/// Shard count must not change observable contents: the same writes
/// through 1, 2, and 7 shards yield identical merged scans.
#[test]
fn shard_count_is_transparent() {
    let configs = [1usize, 2, 7];
    let stores: Vec<Sharded> = configs.iter().map(|&n| Sharded::new(n)).collect();
    for i in 0..300u64 {
        let k = format!("t{:012x}", i.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)).into_bytes();
        let v = format!("val{i}").into_bytes();
        for s in &stores {
            s.put(&k, &v);
        }
        if i % 3 == 0 {
            for s in &stores {
                s.delete(&k);
            }
        }
    }
    let base = stores[0].scan(b"", 1000);
    assert_eq!(base.len(), 200);
    for s in &stores[1..] {
        assert_eq!(s.scan(b"", 1000), base);
    }
}
